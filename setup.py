"""Compatibility shim: all metadata lives in pyproject.toml.

Keeps ``pip install -e .`` working on setups whose pip/setuptools predate
PEP 660 editable wheels (and offline environments without the ``wheel``
package, via ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
