"""Synthetic image-classification datasets.

The paper trains on CIFAR-10/100 and ImageNet.  Those datasets (and the
compute to train on them) are not available in this environment, so the
accuracy/density experiments run on procedurally generated datasets that are

* genuinely learnable by small CNNs (so "accuracy is preserved under
  pruning" is a meaningful statement), and
* image-shaped NCHW tensors passing through ReLU/MaxPool/BN layers, so the
  activation-gradient statistics that the pruning algorithm relies on
  (zero-mean, symmetric, mass concentrated near zero) arise the same way they
  do on natural images.

Two families are provided: *blob* datasets (each class is a Gaussian bump at
a class-specific location) and *stripe* datasets (each class is an oriented
sinusoidal texture).  ``make_cifar_like`` mixes both for a harder task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class Dataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    name:
        Human-readable dataset name used in reports.
    images:
        Array of shape ``(N, C, H, W)``.
    labels:
        Integer class labels of shape ``(N,)``.
    num_classes:
        Number of distinct classes.
    """

    name: str
    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} does not match {self.images.shape[0]} images"
            )
        if self.num_classes <= 1:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(C, H, W) of a single image."""
        return tuple(self.images.shape[1:])

    def split(self, train_fraction: float, rng: np.random.Generator | None = None) -> tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test) datasets."""
        check_probability(train_fraction, "train_fraction")
        rng = derive_rng(rng, seed=0)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise ValueError(
                f"train_fraction={train_fraction} leaves an empty split for {len(self)} samples"
            )
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            Dataset(f"{self.name}-train", self.images[train_idx], self.labels[train_idx], self.num_classes),
            Dataset(f"{self.name}-test", self.images[test_idx], self.labels[test_idx], self.num_classes),
        )

    def batches(
        self, batch_size: int, rng: np.random.Generator | None = None, shuffle: bool = True
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (images, labels) mini-batches."""
        check_positive_int(batch_size, "batch_size")
        order = np.arange(len(self))
        if shuffle:
            rng = derive_rng(rng, seed=0)
            order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]


def _normalize(images: np.ndarray) -> np.ndarray:
    """Standardise images to zero mean / unit variance per dataset."""
    mean = images.mean()
    std = images.std()
    if std < 1e-12:
        return images - mean
    return (images - mean) / std


def make_blob_dataset(
    num_samples: int = 512,
    num_classes: int = 4,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.35,
    rng: np.random.Generator | None = None,
    name: str = "synthetic-blobs",
) -> Dataset:
    """Each class is a Gaussian bump at a class-specific spatial location."""
    check_positive_int(num_samples, "num_samples")
    check_positive_int(num_classes, "num_classes")
    check_positive_int(image_size, "image_size")
    check_positive_int(channels, "channels")
    rng = derive_rng(rng, seed=0)

    ys, xs = np.meshgrid(np.arange(image_size), np.arange(image_size), indexing="ij")
    # Class centres evenly spread on a circle inside the image.
    angles = 2 * np.pi * np.arange(num_classes) / num_classes
    radius = image_size / 3.5
    centre = (image_size - 1) / 2.0
    centres = np.stack(
        [centre + radius * np.sin(angles), centre + radius * np.cos(angles)], axis=1
    )
    sigma = image_size / 6.0

    labels = rng.integers(0, num_classes, size=num_samples)
    images = np.empty((num_samples, channels, image_size, image_size), dtype=np.float64)
    for i, label in enumerate(labels):
        cy, cx = centres[label]
        jitter_y, jitter_x = rng.normal(0.0, 1.0, size=2)
        bump = np.exp(-(((ys - cy - jitter_y) ** 2) + ((xs - cx - jitter_x) ** 2)) / (2 * sigma**2))
        for c in range(channels):
            scale = 1.0 + 0.25 * c
            images[i, c] = scale * bump + noise * rng.normal(size=(image_size, image_size))
    return Dataset(name, _normalize(images), labels.astype(np.int64), num_classes)


def make_stripe_dataset(
    num_samples: int = 512,
    num_classes: int = 4,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.35,
    rng: np.random.Generator | None = None,
    name: str = "synthetic-stripes",
) -> Dataset:
    """Each class is an oriented sinusoidal texture (distinct angle per class)."""
    check_positive_int(num_samples, "num_samples")
    check_positive_int(num_classes, "num_classes")
    rng = derive_rng(rng, seed=0)

    ys, xs = np.meshgrid(np.arange(image_size), np.arange(image_size), indexing="ij")
    angles = np.pi * np.arange(num_classes) / num_classes
    frequency = 2.0 * np.pi / max(image_size / 3.0, 1.0)

    labels = rng.integers(0, num_classes, size=num_samples)
    images = np.empty((num_samples, channels, image_size, image_size), dtype=np.float64)
    for i, label in enumerate(labels):
        theta = angles[label] + rng.normal(0.0, 0.05)
        phase = rng.uniform(0.0, 2 * np.pi)
        pattern = np.sin(frequency * (np.cos(theta) * xs + np.sin(theta) * ys) + phase)
        for c in range(channels):
            images[i, c] = pattern + noise * rng.normal(size=(image_size, image_size))
    return Dataset(name, _normalize(images), labels.astype(np.int64), num_classes)


def make_cifar_like(
    num_samples: int = 1024,
    num_classes: int = 8,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.4,
    rng: np.random.Generator | None = None,
    name: str = "synthetic-cifar",
) -> Dataset:
    """A harder mixed task: half the classes are blobs, half are stripes.

    The default 16x16x3 geometry keeps numpy training fast while preserving
    multiple conv/pool stages; pass ``image_size=32`` for CIFAR-shaped runs.
    """
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    rng = derive_rng(rng, seed=0)
    blob_classes = max(num_classes // 2, 1)
    stripe_classes = num_classes - blob_classes

    blob_samples = num_samples * blob_classes // num_classes
    stripe_samples = num_samples - blob_samples

    blobs = make_blob_dataset(
        blob_samples, blob_classes, image_size, channels, noise, rng, name="blobs"
    )
    images = [blobs.images]
    labels = [blobs.labels]
    if stripe_classes > 0:
        stripes = make_stripe_dataset(
            stripe_samples, stripe_classes, image_size, channels, noise, rng, name="stripes"
        )
        images.append(stripes.images)
        labels.append(stripes.labels + blob_classes)

    all_images = np.concatenate(images, axis=0)
    all_labels = np.concatenate(labels, axis=0)
    order = rng.permutation(len(all_labels))
    return Dataset(name, all_images[order], all_labels[order], num_classes)
