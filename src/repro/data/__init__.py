"""Synthetic datasets standing in for CIFAR-10/100 and ImageNet."""

from repro.data.synthetic import (
    Dataset,
    make_blob_dataset,
    make_cifar_like,
    make_stripe_dataset,
)

__all__ = [
    "Dataset",
    "make_blob_dataset",
    "make_stripe_dataset",
    "make_cifar_like",
]
