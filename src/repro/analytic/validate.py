"""Cross-validation of the analytic tier against the simulator.

The ``analytic-validate`` experiment samples a seeded grid of (workload,
architecture, density) points, evaluates every point through *both* the
closed-form model (:mod:`repro.analytic.model`) and the instruction-stream
simulator, and reports the per-metric relative-error distribution against
enforceable bounds.

Error-bound policy
------------------
Both paths compute the same closed-form expected values; the only admissible
difference is floating-point summation order (numpy reductions vs Python-loop
accumulation).  The default bound is therefore **1e-9 relative error on
every metric** — not a modelling tolerance but a numerical-noise ceiling.
Any violation means the two implementations have diverged structurally and
must be treated as a bug, never widened away.  CI runs the smoke scale of
this experiment and fails on ``payload["ok"] == False``.

Relative error is ``|analytic - simulated| / max(|simulated|, eps)`` with
``eps = 1e-12`` guarding exact zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    Stage,
    register_experiment,
)
from repro.explore.engine import DesignPoint, evaluate_point
from repro.obs import metrics

#: Metrics compared point by point (EvaluationRecord field names).
VALIDATED_METRICS: tuple[str, ...] = (
    "latency_us",
    "energy_uj",
    "area_mm2",
    "baseline_latency_us",
    "baseline_energy_uj",
    "speedup",
    "energy_efficiency",
)

#: Per-metric relative-error bounds (see the module docstring: these are
#: float-noise ceilings, not modelling tolerances).
DEFAULT_ERROR_BOUNDS: dict[str, float] = {metric: 1e-9 for metric in VALIDATED_METRICS}

#: Workloads covering both paper families plus the grouped-convolution case.
DEFAULT_VALIDATE_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("ResNet-18", "CIFAR-10"),
    ("MobileNetV1", "CIFAR-10"),
)

_ZERO_EPS = 1e-12


def sample_validation_points(
    workloads: tuple[tuple[str, str], ...],
    samples: int,
    seed: int,
) -> list[DesignPoint]:
    """A seeded random grid stressing every architecture knob at once.

    Unlike the sweep spaces (a few canonical axis values), this draws every
    :class:`~repro.arch.config.ArchConfig` field the cost model depends on
    from a wide range, so a formula that ignores a knob cannot pass by
    coincidence.
    """
    rng = np.random.default_rng(seed)
    points: list[DesignPoint] = []
    for index in range(samples):
        model, dataset = workloads[index % len(workloads)]
        overrides = {
            "num_pes": 3 * int(rng.integers(8, 121)),
            "buffer_kib": int(rng.integers(64, 1025)),
            "pe_utilization": float(rng.uniform(0.5, 1.0)),
            "dram_words_per_cycle": float(rng.choice([4.0, 8.0, 16.0, 32.0])),
            "weight_reload_overhead": float(rng.uniform(0.0, 0.5)),
            "sync_cycles_per_layer": int(rng.integers(0, 257)),
            "batch_size": int(rng.choice([8, 16, 32, 64])),
        }
        points.append(
            DesignPoint(
                model=model,
                dataset=dataset,
                pruning_rate=float(rng.uniform(0.0, 0.98)),
                overrides=tuple(sorted(overrides.items())),
            )
        )
    return points


@dataclass(frozen=True)
class MetricErrors:
    """Relative-error distribution of one metric over the sampled grid."""

    metric: str
    max_rel_error: float
    mean_rel_error: float
    p95_rel_error: float
    bound: float

    @property
    def ok(self) -> bool:
        return self.max_rel_error <= self.bound

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "max_rel_error": self.max_rel_error,
            "mean_rel_error": self.mean_rel_error,
            "p95_rel_error": self.p95_rel_error,
            "bound": self.bound,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class ValidationResult:
    """Cross-validation outcome: per-metric errors plus the sampled grid size."""

    samples: int
    seed: int
    errors: tuple[MetricErrors, ...]

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.errors)

    @property
    def max_rel_error(self) -> float:
        return max((entry.max_rel_error for entry in self.errors), default=0.0)

    @property
    def violations(self) -> tuple[str, ...]:
        return tuple(entry.metric for entry in self.errors if not entry.ok)


def _compile_stage(ctx: PipelineContext) -> list[DesignPoint]:
    request = ctx.request
    workloads = request.workloads or DEFAULT_VALIDATE_WORKLOADS
    samples = request.param("samples")
    if samples is None:
        # quick scale: 24 points; smoke: 8; thorough: 32 — sized so the
        # simulated half (the slow one) stays in CI-friendly territory.
        samples = max(8, min(32, ctx.request.scale.num_samples // 20))
    return sample_validation_points(
        tuple(workloads), int(samples), int(request.param("seed", 0))
    )


def _simulate_stage(ctx: PipelineContext) -> dict[str, Any]:
    from repro.analytic.model import evaluate_points_analytic

    points = ctx["compile"]
    # The simulator walk is the expensive half — fan it out over the shared
    # runner; the analytic half is one vectorized call.
    simulated = ctx.runner.map(evaluate_point, points)
    analytic = evaluate_points_analytic(points)
    return {"simulated": simulated, "analytic": analytic}


def _report_stage(ctx: PipelineContext) -> ExperimentReport:
    request = ctx.request
    pair = ctx["simulate"]
    simulated, analytic = pair["simulated"], pair["analytic"]
    bounds = dict(DEFAULT_ERROR_BOUNDS)
    bounds.update(request.param("bounds", {}) or {})

    errors: list[MetricErrors] = []
    for metric in VALIDATED_METRICS:
        sim = np.asarray([getattr(record, metric) for record in simulated])
        ana = np.asarray([getattr(record, metric) for record in analytic])
        rel = np.abs(ana - sim) / np.maximum(np.abs(sim), _ZERO_EPS)
        errors.append(
            MetricErrors(
                metric=metric,
                max_rel_error=float(np.max(rel)) if rel.size else 0.0,
                mean_rel_error=float(np.mean(rel)) if rel.size else 0.0,
                p95_rel_error=float(np.percentile(rel, 95)) if rel.size else 0.0,
                bound=float(bounds[metric]),
            )
        )
    result = ValidationResult(
        samples=len(simulated),
        seed=int(request.param("seed", 0)),
        errors=tuple(errors),
    )
    metrics().gauge("analytic.validate.max_rel_error").set(result.max_rel_error)

    payload = {
        "samples": result.samples,
        "seed": result.seed,
        "ok": result.ok,
        "max_rel_error": result.max_rel_error,
        "violations": list(result.violations),
        "metrics": [entry.to_dict() for entry in result.errors],
        "bounds": {name: float(value) for name, value in bounds.items()},
    }
    lines = [
        f"analytic-validate: {result.samples} sampled points, seed {result.seed}",
        f"{'metric':>22} {'max rel':>12} {'mean rel':>12} {'p95 rel':>12} {'bound':>9} {'ok':>4}",
    ]
    for entry in result.errors:
        lines.append(
            f"{entry.metric:>22} {entry.max_rel_error:>12.3e} "
            f"{entry.mean_rel_error:>12.3e} {entry.p95_rel_error:>12.3e} "
            f"{entry.bound:>9.0e} {'yes' if entry.ok else 'NO':>4}"
        )
    lines.append(
        "PASS: analytic tier within bounds"
        if result.ok
        else f"FAIL: bound exceeded for {', '.join(result.violations)}"
    )
    return ExperimentReport(payload=payload, summary="\n".join(lines), native=result)


@register_experiment(
    "analytic-validate",
    description="cross-validate the analytic cost model against the simulator "
    "on a seeded random grid (per-metric relative-error bounds)",
    category="validation",
)
def build_analytic_validate_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "analytic-validate",
        [
            Stage("compile", _compile_stage, "sample the seeded validation grid"),
            Stage("simulate", _simulate_stage, "run both cost-model tiers"),
            Stage("report", _report_stage, "relative-error distribution table"),
        ],
    )


__all__ = [
    "DEFAULT_ERROR_BOUNDS",
    "DEFAULT_VALIDATE_WORKLOADS",
    "MetricErrors",
    "VALIDATED_METRICS",
    "ValidationResult",
    "build_analytic_validate_pipeline",
    "sample_validation_points",
]
