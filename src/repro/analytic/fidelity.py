"""The fidelity knob: which cost-model tier evaluates a request.

Every experiment that owns a ``simulate`` stage can run at one of three
tiers, ordered fastest to most detailed:

``analytic``
    The closed-form vectorized cost model (:mod:`repro.analytic.model`).
    Whole design grids evaluate in one batched numpy call — microseconds per
    point instead of a full instruction-stream walk.  Cross-validated against
    the simulator by the ``analytic-validate`` experiment.
``vectorized``
    The layer-level instruction-stream simulator with vectorized kernels —
    the default, and the tier every seed result was produced at.
``scalar``
    The same simulator forced onto the serial, in-process reference path
    (and the scalar PE backend where a PE-level component runs).  Numerically
    identical to ``vectorized``; kept as the slow trust anchor.

The knob lives on :class:`~repro.api.request.ExperimentRequest` — it changes
the provenance (and, within the error bounds, potentially the value) of the
result, so it is content-hash-affecting.  ``RunOptions`` knobs, by contrast,
must never change the result.  To keep every pre-existing request hash
stable, the field is only serialized when it differs from
:data:`DEFAULT_FIDELITY`.

This module is deliberately import-light (stdlib only): the request layer
imports it at module load.
"""

from __future__ import annotations

from enum import Enum
from typing import Any


class Fidelity(Enum):
    """Cost-model tier of one experiment run (fastest to most detailed)."""

    ANALYTIC = "analytic"
    VECTORIZED = "vectorized"
    SCALAR = "scalar"

    @classmethod
    def normalize(cls, value: Any) -> "Fidelity":
        """Coerce a ``Fidelity`` or its string name; reject anything else."""
        if isinstance(value, Fidelity):
            return value
        if isinstance(value, str):
            try:
                return cls(value.strip().lower())
            except ValueError:
                pass
        raise ValueError(
            f"unknown fidelity {value!r}; choose from "
            f"{', '.join(tier.value for tier in cls)}"
        )


#: The tier every request runs at unless asked otherwise — and the one tier
#: that is omitted from the serialized request, so legacy hashes are stable.
DEFAULT_FIDELITY = Fidelity.VECTORIZED

#: CLI flag choices, in documented order.
FIDELITY_CHOICES: tuple[str, ...] = tuple(tier.value for tier in Fidelity)


def fidelity_of(request: Any) -> Fidelity:
    """The fidelity tier of a request (default for objects without the field)."""
    return Fidelity.normalize(getattr(request, "fidelity", DEFAULT_FIDELITY))


__all__ = [
    "DEFAULT_FIDELITY",
    "FIDELITY_CHOICES",
    "Fidelity",
    "fidelity_of",
]
