"""Vectorized closed-form cost model — the ``analytic`` fidelity tier.

The layer-level simulator (:mod:`repro.arch.accelerator`) already computes
every quantity from closed-form expected-value counts; what makes it slow at
survey scale is walking the instruction stream point by point in Python.
This module re-states the exact same arithmetic as batched numpy expressions
over *(design point, layer)* arrays, so a whole design grid — millions of
(workload, architecture, density) points — evaluates in a handful of
vectorized calls.

The replication is deliberately formula-for-formula:

* per-step operand/traffic counts mirror :mod:`repro.dataflow.counts`
  (including the grouped-convolution fan-in/fan-out and the compressed-format
  word costs);
* the machine model mirrors ``AcceleratorSimulator.run_program``: per-batch
  weight-tile amortisation (:meth:`GlobalBuffer.weight_tiling_factor`), the
  GTW weight-gradient write-back divided by the batch size, double-buffered
  ``max(compute, dram)`` step latency, and the same energy accounting.

Because both paths are closed-form, the analytic tier agrees with the
simulator to floating-point summation order (relative error ~1e-12; see
``repro.analytic.validate`` for the enforced bounds).  Aggregates are summed
with numpy instead of Python-loop order, which is the only source of
disagreement.

Cache keys: analytic records are :class:`EvaluationRecord` objects whose
``key`` is the point's simulator key salted with ``fidelity=analytic``
(:func:`analytic_point_key`), so the two tiers can never collide in a
:class:`~repro.explore.cache.ResultCache` or an engine dedup pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Mapping, Sequence

import numpy as np

from repro.arch.area import AreaModel, estimate_area
from repro.arch.config import ArchConfig, dense_baseline_config, sparsetrain_config
from repro.arch.energy import (
    EnergyModel,
    EventCounts,
    default_energy_model,
    energy_from_events,
)
from repro.arch.results import SimulationResult, StepResult
from repro.dataflow.counts import LayerDensities, StepKind, compressed_words, skip_factor
from repro.explore.engine import (
    NATURAL_ACTIVATION_DENSITY,
    NATURAL_GRADIENT_DENSITY,
    DesignPoint,
    EvaluationRecord,
    _configs_for,
)
from repro.models.spec import ModelSpec
from repro.models.zoo import get_model_spec
from repro.obs import metrics
from repro.pruning.threshold import expected_density_after_pruning
from repro.sim.runner import WorkloadJob, WorkloadResult
from repro.arch.results import ComparisonResult

# Evaluate workload groups in bounded slabs so million-point sweeps stay in a
# few MB of (chunk, layers) scratch instead of materialising (N, layers).
CHUNK_POINTS = 32768


# ---------------------------------------------------------------------------
# Geometry: one ModelSpec as per-layer numpy arrays
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LayerGeometry:
    """Per-layer geometry of one model as ``(L,)`` arrays (batch axis free).

    Everything here is density-independent; the density- and
    architecture-dependent factors broadcast against these arrays with a
    leading point axis.
    """

    names: tuple[str, ...]
    kernel: np.ndarray
    in_width: np.ndarray
    in_height: np.ndarray
    padded_width: np.ndarray
    out_width: np.ndarray
    out_height: np.ndarray
    in_channels: np.ndarray
    out_channels: np.ndarray
    group_in_channels: np.ndarray
    group_out_channels: np.ndarray
    weight_count: np.ndarray
    input_size: np.ndarray
    output_size: np.ndarray
    has_relu_mask: np.ndarray  # float 0/1 — multiplies straight into formulas

    @property
    def num_layers(self) -> int:
        return len(self.names)

    @classmethod
    def from_spec(cls, spec: ModelSpec) -> "LayerGeometry":
        layers = spec.conv_layers

        def arr(values, dtype=np.float64):
            return np.asarray(values, dtype=dtype)

        return cls(
            names=tuple(layer.name for layer in layers),
            kernel=arr([l.kernel for l in layers]),
            in_width=arr([l.in_width for l in layers]),
            in_height=arr([l.in_height for l in layers]),
            padded_width=arr([l.in_width + 2 * l.padding for l in layers]),
            out_width=arr([l.out_width for l in layers]),
            out_height=arr([l.out_height for l in layers]),
            in_channels=arr([l.in_channels for l in layers]),
            out_channels=arr([l.out_channels for l in layers]),
            group_in_channels=arr([l.group_in_channels for l in layers]),
            group_out_channels=arr([l.group_out_channels for l in layers]),
            weight_count=arr([l.weight_count for l in layers]),
            input_size=arr([l.input_size for l in layers]),
            output_size=arr([l.output_size for l in layers]),
            has_relu_mask=arr([1.0 if l.has_relu_mask else 0.0 for l in layers]),
        )


@lru_cache(maxsize=None)
def workload_geometry(model: str, dataset: str) -> tuple[ModelSpec, LayerGeometry]:
    """Memoized ``(spec, geometry)`` for one registered workload."""
    spec = get_model_spec(model, dataset)
    return spec, LayerGeometry.from_spec(spec)


# ---------------------------------------------------------------------------
# Densities: (point, layer) operand-density arrays
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DensityGrid:
    """Operand densities as arrays broadcastable to ``(points, layers)``."""

    input: np.ndarray
    grad_output: np.ndarray
    mask: np.ndarray
    grad_input: np.ndarray
    output: np.ndarray

    @classmethod
    def dense(cls) -> "DensityGrid":
        one = np.float64(1.0)
        return cls(input=one, grad_output=one, mask=one, grad_input=one, output=one)

    @classmethod
    def from_layer_densities(
        cls, geometry: LayerGeometry, densities: Mapping[str, LayerDensities] | None
    ) -> "DensityGrid":
        """``(L,)`` grid from a per-layer density map (missing layers: dense).

        Mirrors the compiler's ``_densities_for`` fallback so a map that only
        covers some layers produces identical counts on both paths.
        """
        per_layer = [
            (densities or {}).get(name, LayerDensities.dense())
            for name in geometry.names
        ]
        return cls(
            input=np.asarray([d.input_density for d in per_layer]),
            grad_output=np.asarray([d.grad_output_density for d in per_layer]),
            mask=np.asarray([d.mask_density for d in per_layer]),
            grad_input=np.asarray([d.grad_input_density for d in per_layer]),
            output=np.asarray([d.output_density for d in per_layer]),
        )

    @classmethod
    def from_pruning_rates(
        cls,
        geometry: LayerGeometry,
        pruning_rates: np.ndarray,
        natural_grad_density: float = NATURAL_GRADIENT_DENSITY,
        activation_density: float = NATURAL_ACTIVATION_DENSITY,
    ) -> "DensityGrid":
        """``(N, L)`` grid replicating ``explore.engine.analytic_densities``.

        The scalar closed form :func:`expected_density_after_pruning` is
        applied once per *unique* rate (its validation and edge-case branches
        are scalar), so the result matches the engine's per-point map exactly.
        """
        rates = np.asarray(pruning_rates, dtype=np.float64).reshape(-1)
        grad = np.empty_like(rates)
        for rate in np.unique(rates):
            grad[rates == rate] = expected_density_after_pruning(
                float(rate), natural_grad_density
            )
        num_layers = geometry.num_layers
        input_density = np.full((rates.size, num_layers), activation_density)
        # The first convolution reads the raw (dense) image — the
        # ``dense_first_layer_input`` behaviour of ``uniform_densities``.
        input_density[:, 0] = 1.0
        return cls(
            input=input_density,
            grad_output=grad[:, None],
            mask=np.float64(activation_density),
            grad_input=np.minimum(1.0, grad * 2.0)[:, None],
            output=np.float64(activation_density),
        )


# ---------------------------------------------------------------------------
# Architecture and energy constants as (N, 1) column arrays
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArchGrid:
    """Per-point :class:`ArchConfig` fields as ``(N, 1)`` column arrays."""

    num_pes: np.ndarray
    pes_per_group: np.ndarray
    kernel_size: np.ndarray
    clock_ghz: np.ndarray
    buffer_kib: np.ndarray
    buffer_words: np.ndarray
    dram_words_per_cycle: np.ndarray
    pe_utilization: np.ndarray
    weight_reload_overhead: np.ndarray
    sync_cycles_per_layer: np.ndarray
    batch_size: np.ndarray

    @classmethod
    def from_configs(cls, configs: Sequence[ArchConfig]) -> "ArchGrid":
        def col(values) -> np.ndarray:
            return np.asarray(values, dtype=np.float64)[:, None]

        return cls(
            num_pes=col([c.num_pes for c in configs]),
            pes_per_group=col([c.pes_per_group for c in configs]),
            kernel_size=col([c.kernel_size for c in configs]),
            clock_ghz=col([c.clock_ghz for c in configs]),
            buffer_kib=col([c.buffer_kib for c in configs]),
            buffer_words=col([c.buffer_words for c in configs]),
            dram_words_per_cycle=col([c.dram_words_per_cycle for c in configs]),
            pe_utilization=col([c.pe_utilization for c in configs]),
            weight_reload_overhead=col([c.weight_reload_overhead for c in configs]),
            sync_cycles_per_layer=col([c.sync_cycles_per_layer for c in configs]),
            batch_size=col([c.batch_size for c in configs]),
        )


@dataclass(frozen=True)
class EnergyGrid:
    """Per-point :class:`EnergyModel` constants as ``(N, 1)`` column arrays."""

    mac_pj: np.ndarray
    reg_pj: np.ndarray
    sram_pj: np.ndarray
    dram_pj: np.ndarray
    leakage_pj_per_cycle: np.ndarray

    @classmethod
    def from_models(cls, models: Sequence[EnergyModel]) -> "EnergyGrid":
        def col(values) -> np.ndarray:
            return np.asarray(values, dtype=np.float64)[:, None]

        return cls(
            mac_pj=col([m.mac_pj for m in models]),
            reg_pj=col([m.reg_pj for m in models]),
            sram_pj=col([m.sram_pj for m in models]),
            dram_pj=col([m.dram_pj for m in models]),
            leakage_pj_per_cycle=col([m.leakage_pj_per_cycle for m in models]),
        )


# ---------------------------------------------------------------------------
# Step counts + machine model
# ---------------------------------------------------------------------------

def _forward_arrays(g: LayerGeometry, d: DensityGrid, sparse: bool) -> dict[str, Any]:
    """Vectorized :func:`repro.dataflow.counts.forward_counts`."""
    row_ops = g.out_channels * g.out_height * g.group_in_channels * g.kernel
    if sparse:
        processed_per_op = g.in_width * d.input
        input_read = row_ops * compressed_words(processed_per_op)
        output_write = compressed_words(g.output_size * d.output)
        dram_read = compressed_words(g.input_size * d.input)
    else:
        processed_per_op = g.padded_width
        input_read = row_ops * g.padded_width
        output_write = g.output_size
        dram_read = g.input_size
    processed = row_ops * processed_per_op
    macs = processed * g.kernel
    weight_loads = row_ops * g.kernel
    psum_write = g.out_channels * g.out_height * g.out_width
    return {
        "row_ops": row_ops,
        "processed": processed,
        "macs": macs,
        "weight_loads": weight_loads,
        "reg": 2.0 * macs + processed,
        "sram_read": input_read + weight_loads,
        "sram_write": psum_write + output_write,
        "dram_read": dram_read,
        "store": output_write,
    }


def _gta_arrays(g: LayerGeometry, d: DensityGrid, sparse: bool) -> dict[str, Any]:
    """Vectorized :func:`repro.dataflow.counts.gta_counts`."""
    row_ops = g.in_channels * g.in_height * g.group_out_channels * g.kernel
    if sparse:
        d_grad = d.grad_output
        # Mask skipping only exists behind a ReLU; ``has_relu_mask`` selects
        # the layer's mask density or 1.0 (the ``d_mask`` gate in gta_counts).
        d_mask = g.has_relu_mask * d.mask + (1.0 - g.has_relu_mask) * 1.0
        grad_row_nnz = g.out_width * d_grad
        grad_read = row_ops * compressed_words(grad_row_nnz)
        mask_read = g.has_relu_mask * row_ops * (g.in_width * d_mask) / 2.0
        grad_input_write = compressed_words(g.input_size * d.grad_input)
        dram_read = compressed_words(g.output_size * d_grad)
    else:
        d_grad = np.float64(1.0)
        d_mask = np.float64(1.0)
        grad_row_nnz = g.out_width * d_grad
        grad_read = row_ops * g.out_width
        mask_read = np.float64(0.0)
        grad_input_write = g.input_size
        dram_read = g.output_size
    processed = row_ops * (grad_row_nnz * skip_factor(d_mask, g.kernel))
    macs = row_ops * grad_row_nnz * g.kernel * d_mask
    weight_loads = row_ops * g.kernel
    psum_write = g.in_channels * g.in_height * g.in_width
    return {
        "row_ops": row_ops,
        "processed": processed,
        "macs": macs,
        "weight_loads": weight_loads,
        "reg": 2.0 * macs + processed,
        "sram_read": grad_read + mask_read + weight_loads,
        "sram_write": psum_write + grad_input_write,
        "dram_read": dram_read,
        "store": grad_input_write,
    }


def _gtw_arrays(g: LayerGeometry, d: DensityGrid, sparse: bool) -> dict[str, Any]:
    """Vectorized :func:`repro.dataflow.counts.gtw_counts`."""
    row_ops = g.out_channels * g.group_in_channels * g.kernel * g.out_height
    if sparse:
        d_in, d_grad = d.input, d.grad_output
        input_row_length = g.in_width
        input_read = row_ops * compressed_words(input_row_length * d_in)
        grad_read = row_ops * compressed_words(g.out_width * d_grad)
        dram_read = compressed_words(g.input_size * d_in) + compressed_words(
            g.output_size * d_grad
        )
    else:
        d_in = d_grad = np.float64(1.0)
        input_row_length = g.padded_width
        input_read = row_ops * g.padded_width
        grad_read = row_ops * g.out_width
        dram_read = g.input_size + g.output_size
    processed = row_ops * (input_row_length * d_in * skip_factor(d_grad, g.kernel))
    macs = row_ops * input_row_length * d_in * g.kernel * d_grad
    return {
        "row_ops": row_ops,
        "processed": processed,
        "macs": macs,
        # OSRC caches dO rows in Reg-1; no separate kernel-row loads.
        "weight_loads": np.float64(0.0),
        "reg": 2.0 * macs + processed,
        "sram_read": input_read + grad_read,
        "sram_write": g.weight_count,
        "dram_read": dram_read,
        "store": g.weight_count,
    }


def _weight_tiling(
    g: LayerGeometry, d: DensityGrid, arch: ArchGrid, sparse: bool
) -> np.ndarray:
    """Vectorized :meth:`GlobalBuffer.weight_tiling_factor` — ``(N, L)``."""
    if sparse:
        activation_words = (
            g.input_size * d.input * 1.5 + g.output_size * d.output * 1.5
        )
    else:
        activation_words = g.input_size + g.output_size
    weight_space = np.minimum(g.weight_count, arch.buffer_words / 2.0)
    available = arch.buffer_words - weight_space
    return np.where(
        activation_words <= available,
        1.0,
        np.ceil(activation_words / available),
    )


def _step_arrays(
    geometry: LayerGeometry,
    densities: DensityGrid,
    arch: ArchGrid,
    sparse: bool,
) -> dict[StepKind, dict[str, np.ndarray]]:
    """Per-(point, layer) step quantities, machine model applied.

    Returns, per training step, arrays broadcast to ``(N, L)`` for: counts
    (``processed``/``macs``/...), the DRAM weight-tile and store words, and
    the resulting ``compute``/``dram_cycles``/``cycles``/``dram_words``.
    """
    tiling = _weight_tiling(geometry, densities, arch, sparse)
    # Weights are fetched once per batch iteration (one LoadWeights before
    # the FORWARD and one before the GTA step); the GTW step reuses the
    # operands already streaming for its gradient rows.
    amortized_weights = geometry.weight_count * tiling / arch.batch_size
    steps = {
        StepKind.FORWARD: _forward_arrays(geometry, densities, sparse),
        StepKind.GTA: _gta_arrays(geometry, densities, sparse),
        StepKind.GTW: _gtw_arrays(geometry, densities, sparse),
    }
    weight_words = {
        StepKind.FORWARD: amortized_weights,
        StepKind.GTA: amortized_weights,
        StepKind.GTW: np.float64(0.0),
    }
    shape = np.broadcast_shapes(
        tiling.shape, (geometry.num_layers,), arch.num_pes.shape
    )
    operand_rate = arch.num_pes * arch.pe_utilization
    count_fields = (
        "row_ops",
        "processed",
        "macs",
        "weight_loads",
        "reg",
        "sram_read",
        "sram_write",
        "dram_read",
    )
    for kind, step in steps.items():
        for field in count_fields:
            step[field] = np.broadcast_to(
                np.asarray(step[field], dtype=np.float64), shape
            )
        store = step["store"]
        if kind is StepKind.GTW:
            # Weight gradients accumulate on chip over the whole batch and
            # are written back once per iteration.
            store = store / arch.batch_size
        compute = (
            step["processed"] / operand_rate
            + step["weight_loads"] * arch.weight_reload_overhead / arch.num_pes
            + arch.sync_cycles_per_layer
        )
        # ``run_program`` computes the read+weight transfer first and folds
        # the output store in afterwards — same two-term float expression.
        dram_cycles = (
            step["dram_read"] + weight_words[kind]
        ) / arch.dram_words_per_cycle + store / arch.dram_words_per_cycle
        step["weight_words"] = np.broadcast_to(
            np.asarray(weight_words[kind], dtype=np.float64), shape
        )
        step["store_words"] = np.broadcast_to(np.asarray(store, dtype=np.float64), shape)
        step["compute"] = np.broadcast_to(compute, shape)
        step["dram_cycles"] = np.broadcast_to(dram_cycles, shape)
        step["cycles"] = np.maximum(step["compute"], step["dram_cycles"])
        step["dram_words"] = np.broadcast_to(
            (step["dram_read"] + weight_words[kind]) + store, shape
        )
        step["sram_words"] = np.broadcast_to(
            step["sram_read"] + step["sram_write"], shape
        )
    return steps


# ---------------------------------------------------------------------------
# Batched metric schema (mirrors SimulationResult's aggregates)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AnalyticMetrics:
    """Per-point totals of one training iteration — all ``(N,)`` arrays.

    The fields mirror :class:`~repro.arch.results.SimulationResult`'s
    aggregates (``total_cycles``, ``latency_us``, ``energy_uj``,
    ``total_macs``, ``total_sram_words``, ``total_dram_words``) plus the
    underlying operand counts for deeper analyses.
    """

    cycles: np.ndarray
    latency_us: np.ndarray
    energy_uj: np.ndarray
    macs: np.ndarray
    row_ops: np.ndarray
    processed_operands: np.ndarray
    weight_loads: np.ndarray
    reg_accesses: np.ndarray
    sram_words: np.ndarray
    dram_words: np.ndarray

    @property
    def num_points(self) -> int:
        return int(np.asarray(self.cycles).size)


def estimate_batch(
    geometry: LayerGeometry,
    densities: DensityGrid,
    arch: ArchGrid,
    energy: EnergyGrid,
    sparse: bool = True,
) -> AnalyticMetrics:
    """Evaluate one workload over a batch of design points in one call.

    ``densities`` broadcasts to ``(N, L)`` against the ``(N, 1)`` columns of
    ``arch``/``energy``; the dense path (``sparse=False``) ignores the
    density grid entirely, exactly like compiling with ``sparse=False``.
    """
    steps = _step_arrays(geometry, densities, arch, sparse)

    def total(field: str) -> np.ndarray:
        return sum(np.sum(step[field], axis=-1) for step in steps.values())

    cycles = total("cycles")
    latency_us = cycles / (arch.clock_ghz[:, 0] * 1e3)
    macs = total("macs")
    reg = total("reg")
    sram = total("sram_words")
    dram = total("dram_words")
    energy_pj = (
        macs * energy.mac_pj[:, 0]
        + reg * energy.reg_pj[:, 0]
        + sram * energy.sram_pj[:, 0]
        + dram * energy.dram_pj[:, 0]
        + cycles * energy.leakage_pj_per_cycle[:, 0]
    )
    return AnalyticMetrics(
        cycles=cycles,
        latency_us=latency_us,
        energy_uj=energy_pj * 1e-6,
        macs=macs,
        row_ops=total("row_ops"),
        processed_operands=total("processed"),
        weight_loads=total("weight_loads"),
        reg_accesses=reg,
        sram_words=sram,
        dram_words=dram,
    )


@dataclass(frozen=True)
class AnalyticComparison:
    """SparseTrain vs dense baseline over a batch — ``(N,)`` arrays throughout."""

    sparse: AnalyticMetrics
    baseline: AnalyticMetrics
    speedup: np.ndarray
    energy_efficiency: np.ndarray
    area_mm2: np.ndarray


def area_mm2_batch(arch: ArchGrid, model: AreaModel | None = None) -> np.ndarray:
    """Vectorized :func:`repro.arch.area.estimate_area` totals — ``(N,)``."""
    model = model if model is not None else AreaModel()
    num_pes = arch.num_pes[:, 0]
    kernel = arch.kernel_size[:, 0]
    macs = num_pes * kernel
    # Reg-1 holds one kernel row, Reg-2 a 64-word partial-sum row per PE
    # (the _REG{1,2}_WORDS_PER_PE constants of the area module).
    register_words = num_pes * (1 * kernel + 64)
    num_groups = np.floor(arch.num_pes[:, 0] / arch.pes_per_group[:, 0])
    return (
        macs * model.mac_mm2
        + register_words * model.register_word_mm2
        + num_groups * model.ppu_mm2
        + model.controller_mm2
        + arch.buffer_kib[:, 0] * model.sram_mm2_per_kib
    )


def compare_batch(
    geometry: LayerGeometry,
    densities: DensityGrid,
    sparse_arch: ArchGrid,
    baseline_arch: ArchGrid,
    energy: EnergyGrid,
    area_model: AreaModel | None = None,
) -> AnalyticComparison:
    """Batched counterpart of :func:`repro.sim.runner.compare_workload`."""
    sparse = estimate_batch(geometry, densities, sparse_arch, energy, sparse=True)
    baseline = estimate_batch(
        geometry, DensityGrid.dense(), baseline_arch, energy, sparse=False
    )
    with np.errstate(divide="ignore"):
        speedup = baseline.cycles / sparse.cycles
        energy_efficiency = baseline.energy_uj / sparse.energy_uj
    return AnalyticComparison(
        sparse=sparse,
        baseline=baseline,
        speedup=speedup,
        energy_efficiency=energy_efficiency,
        area_mm2=area_mm2_batch(sparse_arch, area_model),
    )


# ---------------------------------------------------------------------------
# DesignPoint front end (the explore-engine integration)
# ---------------------------------------------------------------------------

def analytic_point_key(point: DesignPoint) -> str:
    """Dedup/band-mapping key of a point at the analytic tier.

    Salted with the fidelity tier so analytic records can never collide with
    simulator-tier cache entries.  Unlike ``DesignPoint.key`` — which expands
    the override tuples into full config dicts because it names *persisted*
    cache entries that must survive config-default changes — analytic keys
    live only for the duration of one process (analytic records are never
    written to the sweep cache), so a plain ``analytic:``-prefixed canonical
    string is sufficient — and keeps key derivation (JSON + SHA-256 on the
    simulator tier) off the million-point critical path.
    """
    return (
        f"analytic:{point.model}/{point.dataset}"
        f"@{point.pruning_rate!r}|{point.overrides!r}|{point.energy_overrides!r}"
    )


def evaluate_points_analytic(
    points: Sequence[DesignPoint],
    chunk_points: int = CHUNK_POINTS,
) -> list[EvaluationRecord]:
    """Closed-form evaluation of a design-point batch.

    The batched counterpart of running ``evaluate_point`` over the list:
    deduplicates by analytic key (first-seen order, the engine's contract),
    groups by workload, and evaluates each group in vectorized slabs of
    ``chunk_points``.  Records carry :func:`analytic_point_key` keys so they
    stay distinct from simulator-tier records.
    """
    unique: dict[str, DesignPoint] = {}
    for point in points:
        unique.setdefault(analytic_point_key(point), point)

    groups: dict[tuple[str, str], list[tuple[str, DesignPoint]]] = {}
    for key, point in unique.items():
        groups.setdefault((point.model, point.dataset), []).append((key, point))

    records: dict[str, EvaluationRecord] = {}
    for (model, dataset), entries in groups.items():
        _, geometry = workload_geometry(model, dataset)
        for start in range(0, len(entries), chunk_points):
            chunk = entries[start : start + chunk_points]
            chunk_points_list = [point for _, point in chunk]
            sparse_configs = [p.sparse_config() for p in chunk_points_list]
            rates = np.asarray([p.pruning_rate for p in chunk_points_list])
            comparison = compare_batch(
                geometry,
                DensityGrid.from_pruning_rates(geometry, rates),
                ArchGrid.from_configs(sparse_configs),
                ArchGrid.from_configs(
                    [p.baseline_config() for p in chunk_points_list]
                ),
                EnergyGrid.from_models([p.energy_model() for p in chunk_points_list]),
            )
            # One C-level pass per metric column beats 100k numpy scalar
            # extractions on the record-construction hot path; positional
            # construction (field order asserted by the parity tests)
            # sidesteps 14 keyword lookups per record.
            for (key, point), config, rate, lat, en, ar, blat, ben, sp, ee in zip(
                chunk,
                sparse_configs,
                rates.tolist(),
                comparison.sparse.latency_us.tolist(),
                comparison.sparse.energy_uj.tolist(),
                comparison.area_mm2.tolist(),
                comparison.baseline.latency_us.tolist(),
                comparison.baseline.energy_uj.tolist(),
                comparison.speedup.tolist(),
                comparison.energy_efficiency.tolist(),
            ):
                records[key] = EvaluationRecord(
                    key,
                    model,
                    dataset,
                    rate,
                    point.overrides,
                    config.num_pes,
                    config.buffer_kib,
                    lat,
                    en,
                    ar,
                    blat,
                    ben,
                    sp,
                    ee,
                )
    metrics().counter("analytic.points_evaluated").inc(len(unique))
    return [records[key] for key in unique]


@dataclass(frozen=True)
class AnalyticGridPlan:
    """A full sweep grid kept in axis form for columnar evaluation.

    Materializing one :class:`DesignPoint` per grid cell costs more than the
    closed-form model itself at 10^5+ points, so the sweep compile stage
    hands the analytic tier the axes and lets :func:`evaluate_grid_analytic`
    build its design-point columns with ``np.repeat``/``np.tile``.  Only
    valid when every axis is duplicate-free (then every grid cell is a
    distinct point and dedup is a no-op); callers fall back to
    :func:`evaluate_points_analytic` otherwise.
    """

    workloads: tuple[tuple[str, str], ...]
    pes: tuple[int, ...]
    buffers: tuple[int, ...]
    rates: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.workloads) * len(self.pes) * len(self.buffers) * len(self.rates)


def evaluate_grid_analytic(plan: AnalyticGridPlan) -> list[EvaluationRecord]:
    """Closed-form evaluation of a full grid, straight from its axes.

    Emits records in exactly the order ``points_for`` would enumerate the
    grid (workloads outer; ``num_pes`` x ``buffer_kib`` x ``pruning_rate``
    row-major inner) with keys identical to :func:`analytic_point_key` of
    the corresponding :class:`DesignPoint` — callers cannot tell the fast
    path from the point-list path except by wall-clock.
    """
    n_rates = len(plan.rates)
    n_buffers = len(plan.buffers)
    # ArchConfig validates num_pes (PE-count/group-size divisibility) and
    # buffer_kib independently, so validating each axis value once is
    # equivalent to validating every combo — 140 config builds instead of
    # 4000 on a 100x40 grid.
    for p in plan.pes:
        _configs_for((("num_pes", int(p)),))
    for b in plan.buffers:
        _configs_for((("buffer_kib", int(b)),))
    # Canonical sorted override order, one tuple per arch combo.
    arch_overrides = [
        (("buffer_kib", int(b)), ("num_pes", int(p)))
        for p in plan.pes
        for b in plan.buffers
    ]

    pes_arr = np.asarray(plan.pes, dtype=np.int64)
    buf_arr = np.asarray(plan.buffers, dtype=np.int64)
    rate_arr = np.asarray(plan.rates, dtype=np.float64)
    # Combo-level columns (one row per arch combo) and point-level columns
    # (combo-major, rate-minor — points_for's row-major enumeration order).
    num_pes_combo = np.repeat(pes_arr, n_buffers)
    buffer_combo = np.tile(buf_arr, len(plan.pes))
    num_pes_col = np.repeat(num_pes_combo, n_rates)
    buffer_col = np.repeat(buffer_combo, n_rates)
    rate_col = np.tile(rate_arr, len(arch_overrides))
    n_points = rate_col.shape[0]

    def arch_grid(base: ArchConfig, num_pes: np.ndarray, buffer_kib: np.ndarray) -> ArchGrid:
        def scalar(value: float) -> np.ndarray:
            return np.asarray([[float(value)]])

        return ArchGrid(
            num_pes=num_pes[:, None].astype(np.float64),
            pes_per_group=scalar(base.pes_per_group),
            kernel_size=scalar(base.kernel_size),
            clock_ghz=scalar(base.clock_ghz),
            buffer_kib=buffer_kib[:, None].astype(np.float64),
            # buffer_kib * 1024 // BYTES_PER_WORD, exact for integer KiB.
            buffer_words=buffer_kib[:, None].astype(np.float64) * 512.0,
            dram_words_per_cycle=scalar(base.dram_words_per_cycle),
            pe_utilization=scalar(base.pe_utilization),
            weight_reload_overhead=scalar(base.weight_reload_overhead),
            sync_cycles_per_layer=scalar(base.sync_cycles_per_layer),
            batch_size=scalar(base.batch_size),
        )

    sparse_base = sparsetrain_config()
    baseline_base = dense_baseline_config()
    energy = EnergyGrid.from_models([default_energy_model()])
    sparse_combo_grid = arch_grid(sparse_base, num_pes_combo, buffer_combo)
    baseline_combo_grid = arch_grid(baseline_base, num_pes_combo, buffer_combo)
    # Area and the dense baseline depend on the arch combo but not on the
    # pruning rate: evaluate them once per combo and expand — per-row numpy
    # arithmetic is position-independent, so the expanded values are bit-
    # identical to evaluating the full (combo, rate) cross product.
    area_combo = area_mm2_batch(sparse_combo_grid)
    rate_list = rate_col.tolist()
    num_pes_list = num_pes_col.tolist()
    buffer_list = buffer_col.tolist()
    # One overrides tuple and one repr per arch combo, expanded by reference;
    # key suffixes precomputed once so the per-record work is a single
    # C-level string concat instead of an f-string with two reprs.
    overrides_col = [ov for ov in arch_overrides for _ in range(n_rates)]
    ov_reprs = [repr(ov) for ov in arch_overrides]
    rate_reprs = [repr(rate) for rate in rate_arr.tolist()[:n_rates]]
    key_suffixes = [
        f"{rate_repr}|{ov_repr}|()"
        for ov_repr in ov_reprs
        for rate_repr in rate_reprs
    ]

    area_col = np.repeat(area_combo, n_rates)
    area_list = area_col.tolist()

    records: list[EvaluationRecord] = []
    for model, dataset in plan.workloads:
        _, geometry = workload_geometry(model, dataset)
        prefix = f"analytic:{model}/{dataset}@"
        baseline = estimate_batch(
            geometry, DensityGrid.dense(), baseline_combo_grid, energy, sparse=False
        )
        base_cycles_col = np.repeat(baseline.cycles, n_rates)
        base_energy_col = np.repeat(baseline.energy_uj, n_rates)
        base_lat_list = np.repeat(baseline.latency_us, n_rates).tolist()
        base_en_list = base_energy_col.tolist()
        for lo in range(0, n_points, CHUNK_POINTS):
            hi = min(lo + CHUNK_POINTS, n_points)
            sparse = estimate_batch(
                geometry,
                DensityGrid.from_pruning_rates(geometry, rate_col[lo:hi]),
                arch_grid(sparse_base, num_pes_col[lo:hi], buffer_col[lo:hi]),
                energy,
                sparse=True,
            )
            with np.errstate(divide="ignore"):
                speedup = base_cycles_col[lo:hi] / sparse.cycles
                energy_efficiency = base_energy_col[lo:hi] / sparse.energy_uj
            records.extend(
                EvaluationRecord(
                    prefix + suffix,
                    model,
                    dataset,
                    rate,
                    ov,
                    n_pes,
                    buf,
                    lat,
                    en,
                    ar,
                    blat,
                    ben,
                    sp,
                    ee,
                )
                for suffix, rate, ov, n_pes, buf, lat, en, ar, blat, ben, sp, ee in zip(
                    key_suffixes[lo:hi],
                    rate_list[lo:hi],
                    overrides_col[lo:hi],
                    num_pes_list[lo:hi],
                    buffer_list[lo:hi],
                    sparse.latency_us.tolist(),
                    sparse.energy_uj.tolist(),
                    area_list[lo:hi],
                    base_lat_list[lo:hi],
                    base_en_list[lo:hi],
                    speedup.tolist(),
                    energy_efficiency.tolist(),
                )
            )
    metrics().counter("analytic.points_evaluated").inc(len(records))
    return records


# ---------------------------------------------------------------------------
# WorkloadJob front end (the fig8/fig9 harness integration)
# ---------------------------------------------------------------------------

def analytic_simulation_result(
    spec: ModelSpec,
    densities: Mapping[str, LayerDensities] | None,
    config: ArchConfig,
    energy_model: EnergyModel | None = None,
    sparse: bool = True,
) -> SimulationResult:
    """One workload on one configuration, materialized as a SimulationResult.

    The single-point (``N=1``) analytic evaluation unpacked into per-(layer,
    step) :class:`StepResult` entries in program order (forward pass, then
    the backward pass layer-reversed with GTA before GTW), so every report
    that slices a simulated result — latency tables, Fig. 9 energy
    breakdowns, per-layer cycle attributions — works on the analytic tier
    unchanged.
    """
    energy_model = energy_model if energy_model is not None else default_energy_model()
    geometry = LayerGeometry.from_spec(spec)
    grid = (
        DensityGrid.from_layer_densities(geometry, densities)
        if sparse
        else DensityGrid.dense()
    )
    steps = _step_arrays(
        geometry, grid, ArchGrid.from_configs([config]), sparse
    )
    result = SimulationResult(
        config_name=config.name,
        model_name=spec.name,
        dataset=spec.dataset,
        sparse=sparse,
        clock_ghz=config.clock_ghz,
    )

    def append(kind: StepKind, layer_index: int) -> None:
        step = steps[kind]
        events = EventCounts(
            macs=float(step["macs"][0, layer_index]),
            reg_accesses=float(step["reg"][0, layer_index]),
            sram_words=float(step["sram_words"][0, layer_index]),
            dram_words=float(step["dram_words"][0, layer_index]),
            cycles=float(step["cycles"][0, layer_index]),
        )
        result.steps.append(
            StepResult(
                layer_name=geometry.names[layer_index],
                step=kind,
                compute_cycles=float(step["compute"][0, layer_index]),
                dram_cycles=float(step["dram_cycles"][0, layer_index]),
                cycles=events.cycles,
                events=events,
                energy=energy_from_events(events, energy_model),
            )
        )

    num_layers = geometry.num_layers
    for index in range(num_layers):
        append(StepKind.FORWARD, index)
    for index in reversed(range(num_layers)):
        append(StepKind.GTA, index)
        append(StepKind.GTW, index)
    return result


def compare_workload_analytic(
    spec: ModelSpec,
    densities: Mapping[str, LayerDensities],
    sparse_config: ArchConfig | None = None,
    baseline_config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
) -> WorkloadResult:
    """Analytic-tier counterpart of :func:`repro.sim.runner.compare_workload`."""
    sparse_config = sparse_config if sparse_config is not None else sparsetrain_config()
    baseline_config = (
        baseline_config if baseline_config is not None else dense_baseline_config()
    )
    comparison = ComparisonResult(
        workload=f"{spec.name}/{spec.dataset}",
        sparsetrain=analytic_simulation_result(
            spec, densities, sparse_config, energy_model, sparse=True
        ),
        baseline=analytic_simulation_result(
            spec, None, baseline_config, energy_model, sparse=False
        ),
    )
    return WorkloadResult(spec=spec, densities=dict(densities), comparison=comparison)


def run_workload_jobs_analytic(jobs: Sequence[WorkloadJob]) -> list[WorkloadResult]:
    """Evaluate fig8/fig9-style workload jobs at the analytic tier."""
    results = [
        compare_workload_analytic(
            job.spec,
            job.densities,
            sparse_config=job.sparse_config,
            baseline_config=job.baseline_config,
            energy_model=job.energy_model,
        )
        for job in jobs
    ]
    metrics().counter("analytic.points_evaluated").inc(len(results))
    return results


def evaluate_point_analytic(point: DesignPoint) -> EvaluationRecord:
    """Single-point convenience wrapper over :func:`evaluate_points_analytic`."""
    return evaluate_points_analytic([point])[0]


__all__ = [
    "AnalyticComparison",
    "AnalyticMetrics",
    "ArchGrid",
    "DensityGrid",
    "EnergyGrid",
    "LayerGeometry",
    "analytic_point_key",
    "analytic_simulation_result",
    "area_mm2_batch",
    "compare_batch",
    "compare_workload_analytic",
    "estimate_batch",
    "evaluate_point_analytic",
    "evaluate_points_analytic",
    "run_workload_jobs_analytic",
    "workload_geometry",
]
