"""repro.analytic — the closed-form cost-model tier.

Three pieces:

* :mod:`repro.analytic.fidelity` — the :class:`Fidelity` enum and helpers;
  imported eagerly because the request layer depends on it at module load.
* :mod:`repro.analytic.model` — vectorized closed-form estimators over
  batched design-point grids.
* :mod:`repro.analytic.validate` — the ``analytic-validate`` cross-validation
  experiment with enforceable per-metric error bounds.

``model`` and ``validate`` are exposed lazily: they import the explore and
api layers, and ``api.request`` imports this package for the fidelity enum —
eager imports here would close that cycle.
"""

from __future__ import annotations

from repro.analytic.fidelity import (
    DEFAULT_FIDELITY,
    FIDELITY_CHOICES,
    Fidelity,
    fidelity_of,
)

_LAZY_SUBMODULES = ("model", "validate")

__all__ = [
    "DEFAULT_FIDELITY",
    "FIDELITY_CHOICES",
    "Fidelity",
    "fidelity_of",
    "model",
    "validate",
]


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        module = importlib.import_module(f"repro.analytic.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
