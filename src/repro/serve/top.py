"""Rendering for ``repro top`` — the live fleet dashboard.

Pure functions from the service's ``/stats`` + ``/healthz`` snapshots to a
terminal frame: :func:`render_top` draws queue depths, per-interval
throughput rates (computed from the *previous* snapshot, so the numbers are
live rates rather than monotonic totals), per-stage latency quantiles, the
worker registry with heartbeat ages, fleet process states, and cache hit
rates.  The CLI loop owns the terminal (clearing, sleeping, Ctrl-C); this
module owns none of it, which keeps every frame unit-testable as a plain
string.

``job_rates`` is shared with ``repro stats --watch``: both surfaces derive
"what is happening now" the same way — counter deltas divided by the
interval that produced them.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

ANSI_CLEAR = "\x1b[2J\x1b[H"


def job_rates(
    stats: Mapping[str, Any],
    previous: Mapping[str, Any] | None,
    interval: float | None,
) -> dict[str, float]:
    """Per-second rates of the ``jobs`` counters between two snapshots.

    Returns ``{}`` when there is no previous snapshot (first frame) or no
    usable interval.  A counter that went *backwards* (service restart reset
    the registry) clamps to 0.0 instead of reporting a negative rate.
    """
    if not previous or not interval or interval <= 0:
        return {}
    current_jobs = stats.get("jobs") or {}
    previous_jobs = previous.get("jobs") or {}
    rates: dict[str, float] = {}
    for name, value in current_jobs.items():
        if not isinstance(value, (int, float)):
            continue
        delta = value - previous_jobs.get(name, 0)
        rates[name] = max(0.0, delta) / interval
    return rates


def format_rates(rates: Mapping[str, float]) -> str:
    """One ``name=N.NN/s`` line, empty-string when there are no rates."""
    if not rates:
        return ""
    return " ".join(f"{name}={rate:.2f}/s" for name, rate in rates.items())


def _age(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    return f"{seconds / 60:.1f}m"


def render_top(
    stats: Mapping[str, Any],
    health: Mapping[str, Any],
    previous: Mapping[str, Any] | None = None,
    interval: float | None = None,
    now: float | None = None,
) -> str:
    """One dashboard frame from the two telemetry snapshots."""
    now = time.time() if now is None else now
    lines = [
        f"repro top — service v{stats.get('version', '?')} "
        f"up {stats.get('uptime_s', 0):.0f}s — "
        f"{time.strftime('%H:%M:%S', time.localtime(now))}",
        "",
    ]

    queue = stats.get("queue") or {}
    lines.append(
        "queue   " + " ".join(f"{state}={n}" for state, n in queue.items())
    )
    jobs = stats.get("jobs") or {}
    lines.append(
        "totals  " + " ".join(f"{name}={value}" for name, value in jobs.items())
    )
    rates = job_rates(stats, previous, interval)
    lines.append(
        "rates   " + (format_rates(rates) or "(collecting — one interval needed)")
    )

    scheduler = stats.get("scheduler") or {}
    lines.append(
        f"sched   workers_alive={scheduler.get('workers_alive', '?')} "
        f"concurrency={scheduler.get('concurrency', '?')}"
    )

    workers = health.get("workers") or []
    if workers:
        lines.append("")
        lines.append(
            f"{'worker':<24} {'hb age':>7} {'done':>5} {'failed':>6}  current job"
        )
        for worker in workers:
            current = worker.get("current_job") or "-"
            lines.append(
                f"{str(worker.get('id', '?')):<24} "
                f"{_age(worker.get('heartbeat_age_s')):>7} "
                f"{worker.get('jobs_done', 0):>5} "
                f"{worker.get('jobs_failed', 0):>6}  {current[:12]}"
            )

    fleet = health.get("fleet")
    if fleet:
        states = " ".join(
            f"pid={proc.get('pid', '?')}:"
            f"{'up' if proc.get('alive') else 'down'}"
            + (f"({proc['restarts']} respawns)" if proc.get("restarts") else "")
            for proc in fleet.get("processes") or []
        )
        lines.append("")
        lines.append(
            f"fleet   {fleet.get('alive', '?')}/{fleet.get('size', '?')} alive  {states}"
        )

    stages = stats.get("stages") or {}
    if stages:
        lines.append("")
        lines.append(f"{'stage':<12} {'count':>6} {'p50':>10} {'p95':>10}")
        for stage, info in stages.items():
            p50, p95 = info.get("p50"), info.get("p95")
            lines.append(
                f"{stage:<12} {info.get('count', 0):>6} "
                f"{'n/a' if p50 is None else f'{p50:.3f}s':>10} "
                f"{'n/a' if p95 is None else f'{p95:.3f}s':>10}"
            )

    caches = stats.get("caches") or {}
    for cache, info in caches.items():
        rate = info.get("hit_rate")
        lines.append(
            f"cache   {cache}: hits={info.get('hits', 0)} "
            f"misses={info.get('misses', 0)} "
            f"hit_rate={'n/a' if rate is None else f'{rate:.0%}'}"
        )
    return "\n".join(lines)


__all__ = ["ANSI_CLEAR", "format_rates", "job_rates", "render_top"]
