"""SQLite-backed job store for the experiment service.

One row per *unique* :class:`~repro.api.ExperimentRequest` — jobs are keyed
by the request's content hash, which is exactly the dedup key: submitting an
identical request again never creates a second job, it *attaches* a new row
to the ``submissions`` table of the existing one.  The job row carries the
scheduling state machine::

    queued --> running --> done
       ^          |
       |          +------> failed     (after the retry budget is exhausted;
       |          |                    transient failures requeue with a
       |          +------> (requeued)  backoff gate in ``not_before``)
       +--- cancelled                 (queued jobs only)

plus the canonical request JSON, per-stage timings streamed in live while
the job runs (via the pipeline's ``on_stage`` callback), the serialized
:class:`~repro.api.ExperimentResult` once done, and an ``executions``
counter — the acceptance check "submitted twice, executed once" reads
``executions == 1`` and ``submissions == 2`` straight off the job row.

The store is safe for many threads of one process (a single connection
behind an ``RLock``; SQLite itself runs in WAL mode so readers in other
processes — ``repro status --db`` — never block the service).  Crash
recovery is :meth:`JobStore.recover`: jobs left ``running`` by a killed
process are requeued on the next open.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.request import ExperimentRequest, ExperimentResult
from repro.obs import metrics

# Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES: tuple[str, ...] = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES: frozenset[str] = frozenset({DONE, FAILED, CANCELLED})

# Bump on incompatible schema changes; checked against PRAGMA user_version.
_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id          TEXT PRIMARY KEY,          -- ExperimentRequest.content_hash
    experiment  TEXT NOT NULL,
    request     TEXT NOT NULL,             -- canonical request JSON
    state       TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    created_at  REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    not_before  REAL NOT NULL DEFAULT 0,   -- retry-backoff gate (epoch seconds)
    executions  INTEGER NOT NULL DEFAULT 0,
    max_retries INTEGER NOT NULL DEFAULT 0,
    retry_base  INTEGER NOT NULL DEFAULT 0,  -- executions when last requeued
                                             -- terminal: scopes the retry
                                             -- budget to this incarnation
    error       TEXT,
    result      TEXT,                      -- serialized ExperimentResult JSON
    timings     TEXT NOT NULL DEFAULT '{}' -- live per-stage seconds
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state, not_before, priority);
CREATE TABLE IF NOT EXISTS submissions (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id       TEXT NOT NULL REFERENCES jobs (id),
    submitted_at REAL NOT NULL,
    source       TEXT
);
CREATE INDEX IF NOT EXISTS idx_submissions_job ON submissions (job_id);
"""

_JOB_COLUMNS = (
    "id, experiment, request, state, priority, created_at, started_at, "
    "finished_at, not_before, executions, max_retries, retry_base, error, "
    "result, timings, "
    "(SELECT COUNT(*) FROM submissions s WHERE s.job_id = jobs.id) AS submissions"
)


class UnknownJobError(ValueError):
    """Lookup of a job id (or prefix) that matches no stored job."""


class AmbiguousJobError(ValueError):
    """A job-id prefix that matches more than one stored job."""


@dataclass(frozen=True)
class Job:
    """One stored job row, hydrated into a convenient immutable view."""

    id: str
    experiment: str
    request_json: str
    state: str
    priority: int
    created_at: float
    started_at: float | None
    finished_at: float | None
    not_before: float
    executions: int
    max_retries: int
    retry_base: int
    submissions: int
    error: str | None = None
    result_json: str | None = field(default=None, repr=False)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def short_id(self) -> str:
        return self.id[:12]

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def executions_this_incarnation(self) -> int:
        """Executions since the job was last (re)submitted from a terminal
        state — the count the retry budget is measured against."""
        return self.executions - self.retry_base

    def request(self) -> ExperimentRequest:
        return ExperimentRequest.from_json(self.request_json)

    def result(self) -> ExperimentResult | None:
        """The stored :class:`ExperimentResult`, or ``None`` before ``done``."""
        if self.result_json is None:
            return None
        return ExperimentResult.from_json(self.result_json)

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """JSON-native view — the HTTP API's and CLI's wire format."""
        payload: dict[str, Any] = {
            "id": self.id,
            "experiment": self.experiment,
            "state": self.state,
            "priority": self.priority,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "not_before": self.not_before,
            "executions": self.executions,
            "max_retries": self.max_retries,
            "retry_base": self.retry_base,
            "submissions": self.submissions,
            "error": self.error,
            "timings": dict(self.timings),
            "request": json.loads(self.request_json),
        }
        if include_result:
            payload["result"] = (
                json.loads(self.result_json) if self.result_json else None
            )
        return payload


def _job_from_row(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"],
        experiment=row["experiment"],
        request_json=row["request"],
        state=row["state"],
        priority=row["priority"],
        created_at=row["created_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        not_before=row["not_before"],
        executions=row["executions"],
        max_retries=row["max_retries"],
        retry_base=row["retry_base"],
        submissions=row["submissions"],
        error=row["error"],
        result_json=row["result"],
        timings=dict(json.loads(row["timings"] or "{}")),
    )


class JobStore:
    """Persistent job/result store over one SQLite database file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock, self._conn:
            self._conn.execute("PRAGMA journal_mode=WAL")
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, _SCHEMA_VERSION):
                raise ValueError(
                    f"job store {self.path} has schema version {version}, "
                    f"this build expects {_SCHEMA_VERSION}"
                )
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission (the dedup seam)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ExperimentRequest,
        priority: int = 0,
        max_retries: int = 0,
        source: str | None = None,
        now: float | None = None,
    ) -> tuple[Job, bool]:
        """Submit a request; returns ``(job, deduped)``.

        The job id is the request's content hash.  A request whose job is
        already ``queued``/``running``/``done`` only gains a submission row
        (``deduped=True`` — no new execution will happen).  A ``failed`` or
        ``cancelled`` job is *requeued* in place (``deduped=False`` — it will
        execute again), keeping its execution history.
        """
        now = time.time() if now is None else now
        job_id = request.content_hash
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO jobs (id, experiment, request, state, priority,"
                    " created_at, max_retries) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        request.experiment,
                        request.to_json(),
                        QUEUED,
                        priority,
                        now,
                        max_retries,
                    ),
                )
                deduped = False
            elif row["state"] in (QUEUED, RUNNING, DONE):
                # Attach to the in-flight or completed job.  A queued job can
                # still absorb a higher priority or a larger retry budget.
                self._conn.execute(
                    "UPDATE jobs SET priority=MAX(priority, ?),"
                    " max_retries=MAX(max_retries, ?) WHERE id=? AND state=?",
                    (priority, max_retries, job_id, QUEUED),
                )
                deduped = True
            else:  # failed / cancelled: requeue the same job
                # ``retry_base`` snapshots the execution count so the fresh
                # ``max_retries`` budget applies to this incarnation only,
                # not to the job's lifetime history.
                self._conn.execute(
                    "UPDATE jobs SET state=?, priority=?, max_retries=?,"
                    " retry_base=executions, not_before=0, error=NULL,"
                    " started_at=NULL, finished_at=NULL WHERE id=?",
                    (QUEUED, priority, max_retries, job_id),
                )
                deduped = False
            self._conn.execute(
                "INSERT INTO submissions (job_id, submitted_at, source)"
                " VALUES (?, ?, ?)",
                (job_id, now, source),
            )
        metrics().counter("jobs.submitted").inc()
        if deduped:
            metrics().counter("jobs.dedup_attached").inc()
        return self.get(job_id), deduped

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job with this exact id; raises :class:`UnknownJobError`."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return _job_from_row(row)

    def find(self, prefix: str) -> Job:
        """The unique job whose id starts with ``prefix`` (CLI convenience)."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id LIKE ? LIMIT 2",
                (prefix + "%",),
            ).fetchall()
        if not rows:
            raise UnknownJobError(f"no job matches {prefix!r}")
        if len(rows) > 1:
            raise AmbiguousJobError(
                f"job prefix {prefix!r} is ambiguous; use more characters"
            )
        return _job_from_row(rows[0])

    def list_jobs(
        self,
        state: str | None = None,
        experiment: str | None = None,
        limit: int = 200,
    ) -> list[Job]:
        """Jobs newest-first, optionally filtered by state and experiment."""
        if state is not None and state not in STATES:
            raise ValueError(
                f"unknown state {state!r}; states are {', '.join(STATES)}"
            )
        clauses, args = [], []
        if state is not None:
            clauses.append("state=?")
            args.append(state)
        if experiment is not None:
            clauses.append("experiment=?")
            args.append(experiment)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs {where}"
                " ORDER BY created_at DESC, id LIMIT ?",
                (*args, limit),
            ).fetchall()
        return [_job_from_row(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per state (every state present, zeros included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: row["n"] for row in rows})
        return counts

    # ------------------------------------------------------------------
    # Scheduling transitions
    # ------------------------------------------------------------------
    def claim_next(self, now: float | None = None) -> Job | None:
        """Atomically claim the next due job (priority desc, then FIFO)."""
        now = time.time() if now is None else now
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT id, created_at, not_before FROM jobs"
                " WHERE state=? AND not_before<=?"
                " ORDER BY priority DESC, created_at ASC, id ASC LIMIT 1",
                (QUEUED, now),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state=?, started_at=?, executions=executions+1"
                " WHERE id=?",
                (RUNNING, now, row["id"]),
            )
            # Dequeue-to-start latency: how long the job was *due* (past its
            # creation and any retry-backoff gate) before a worker took it.
            became_due = max(row["created_at"], row["not_before"])
            metrics().histogram("serve.queue_wait_seconds").observe(
                max(0.0, now - became_due)
            )
            metrics().counter("jobs.claimed").inc()
            return self.get(row["id"])

    def mark_done(
        self, job_id: str, result: ExperimentResult, now: float | None = None
    ) -> Job:
        """Persist a successful run: result JSON + final stage timings."""
        now = time.time() if now is None else now
        timings = json.dumps(dict(result.timings))
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET state=?, finished_at=?, result=?, error=NULL,"
                " timings=? WHERE id=?",
                (DONE, now, result.to_json(indent=None), timings, job_id),
            )
        metrics().counter("jobs.done").inc()
        return self.get(job_id)

    def mark_failed(
        self,
        job_id: str,
        error: str,
        retry_at: float | None = None,
        now: float | None = None,
    ) -> Job:
        """Record a failed execution.

        With ``retry_at`` the job goes back to ``queued`` gated behind the
        backoff timestamp; without it the job is terminally ``failed``.
        """
        now = time.time() if now is None else now
        with self._lock, self._conn:
            if retry_at is not None:
                self._conn.execute(
                    "UPDATE jobs SET state=?, not_before=?, error=?,"
                    " started_at=NULL WHERE id=?",
                    (QUEUED, retry_at, error, job_id),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET state=?, finished_at=?, error=? WHERE id=?",
                    (FAILED, now, error, job_id),
                )
        metrics().counter(
            "jobs.retried" if retry_at is not None else "jobs.failed"
        ).inc()
        return self.get(job_id)

    def cancel(self, job_id: str, now: float | None = None) -> tuple[Job, bool]:
        """Cancel a queued job; returns ``(job, cancelled)``.

        Only ``queued`` jobs can be cancelled — a ``running`` pipeline is not
        interrupted mid-stage (its result is moments away and may serve future
        deduped submissions), and terminal jobs are left as they are.
        """
        now = time.time() if now is None else now
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state=?, finished_at=? WHERE id=? AND state=?",
                (CANCELLED, now, job_id, QUEUED),
            )
            cancelled = cursor.rowcount > 0
        if cancelled:
            metrics().counter("jobs.cancelled").inc()
        return self.get(job_id), cancelled

    def record_stage(self, job_id: str, stage: str, seconds: float) -> None:
        """Stream one completed stage's timing into the job row (live)."""
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT timings FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            timings = dict(json.loads(row["timings"] or "{}"))
            timings[stage] = seconds
            self._conn.execute(
                "UPDATE jobs SET timings=? WHERE id=?",
                (json.dumps(timings), job_id),
            )

    def recover(self) -> int:
        """Requeue jobs left ``running`` by a crashed/killed process."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state=?, started_at=NULL, not_before=0"
                " WHERE state=?",
                (QUEUED, RUNNING),
            )
            return cursor.rowcount

    def submissions(self, job_id: str) -> list[dict[str, Any]]:
        """The submission records attached to one job, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, submitted_at, source FROM submissions"
                " WHERE job_id=? ORDER BY id",
                (job_id,),
            ).fetchall()
        if not rows:
            # Distinguish "no submissions" from "no such job".
            self.get(job_id)
        return [dict(row) for row in rows]


__all__ = [
    "AmbiguousJobError",
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "UnknownJobError",
]
