"""SQLite-backed job store for the experiment service.

One row per *unique* :class:`~repro.api.ExperimentRequest` — jobs are keyed
by the request's content hash, which is exactly the dedup key: submitting an
identical request again never creates a second job, it *attaches* a new row
to the ``submissions`` table of the existing one.  The job row carries the
scheduling state machine::

    queued --> running --> done
       ^          |
       |          +------> failed      (after the retry budget is exhausted;
       |          |                     transient failures requeue with a
       |          +------> (requeued)   backoff gate in ``not_before``;
       |          |                     an *expired lease* requeues too —
       |          |                     at most ``quarantine_after`` times)
       |          +------> quarantined (crash-loop bound: the lease expired
       |                                ``requeue_count`` >= cap times; only
       +--- cancelled                   an explicit ``requeue`` — the
                                        ``repro requeue <job>`` escape
                                        hatch — releases it)

plus the canonical request JSON, per-stage timings streamed in live while
the job runs (via the pipeline's ``on_stage`` callback), the serialized
:class:`~repro.api.ExperimentResult` once done, and an ``executions``
counter — the acceptance check "submitted twice, executed once" reads
``executions == 1`` and ``submissions == 2`` straight off the job row.

**Multi-process safety.**  The store coordinates many worker *processes*
sharing one WAL database, not just many threads of one process.  Every
write runs inside an explicit ``BEGIN IMMEDIATE`` transaction — the write
lock is taken up front, so the SELECT-then-UPDATE inside
:meth:`JobStore.claim_next` can never interleave with another process's
claim — backed by ``PRAGMA busy_timeout`` plus a bounded retry loop on
``SQLITE_BUSY``.  A claim is a *lease*: the claiming worker's id and a
``lease_expires_at`` deadline are stamped onto the row, the worker extends
the lease with :meth:`JobStore.heartbeat` while the job runs, and
:meth:`JobStore.reap_expired` requeues any ``running`` job whose lease
lapsed — a SIGKILL'd worker's jobs come back automatically, no operator
intervention and no all-or-nothing recovery pass.  Completion is
owner-guarded: ``mark_done``/``mark_failed`` with a ``worker_id`` only land
if that worker still holds the lease, so a reaped-and-reclaimed job can
never be double-completed by its original (slow, presumed-dead) worker.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.api.request import ExperimentRequest, ExperimentResult
from repro.faults import fault_point
from repro.obs import metrics

# Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
QUARANTINED = "quarantined"

STATES: tuple[str, ...] = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, QUARANTINED)
TERMINAL_STATES: frozenset[str] = frozenset({DONE, FAILED, CANCELLED})
# States a job can rest in forever: terminal outcomes plus quarantine.
# "Every submitted job reaches an inactive state" is the chaos invariant.
INACTIVE_STATES: frozenset[str] = TERMINAL_STATES | {QUARANTINED}

# How many lease-expiry requeues a job gets before it is quarantined
# instead of requeued — the crash-loop bound.  A job that kills its worker
# every time would otherwise be requeued forever by ``reap_expired``.
DEFAULT_REQUEUE_CAP = 5

# Default lease duration stamped by ``claim_next``; workers heartbeat well
# inside this window (every ttl/3 by convention) so only a dead worker's
# lease ever expires.
DEFAULT_LEASE_TTL = 60.0

# How long SQLite itself waits for a competing writer before surfacing
# SQLITE_BUSY, and how many times we retry a busy BEGIN IMMEDIATE on top.
_BUSY_TIMEOUT_MS = 5_000
_BUSY_RETRIES = 5
_BUSY_RETRY_BASE = 0.05  # seconds; doubles per attempt

# Bump on incompatible schema changes; checked against PRAGMA user_version.
_SCHEMA_VERSION = 4

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id          TEXT PRIMARY KEY,          -- ExperimentRequest.content_hash
    experiment  TEXT NOT NULL,
    request     TEXT NOT NULL,             -- canonical request JSON
    state       TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    created_at  REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    not_before  REAL NOT NULL DEFAULT 0,   -- retry-backoff gate (epoch seconds)
    executions  INTEGER NOT NULL DEFAULT 0,
    max_retries INTEGER NOT NULL DEFAULT 0,
    retry_base  INTEGER NOT NULL DEFAULT 0,  -- executions when last requeued
                                             -- terminal: scopes the retry
                                             -- budget to this incarnation
    error       TEXT,
    result      TEXT,                      -- serialized ExperimentResult JSON
    timings     TEXT NOT NULL DEFAULT '{}', -- live per-stage seconds
    worker_id        TEXT,                 -- lease owner while running
    lease_expires_at REAL,                 -- lease deadline (epoch seconds)
    heartbeat_at     REAL,                 -- last lease extension
    requeue_count    INTEGER NOT NULL DEFAULT 0,  -- lease-expiry requeues
                                                  -- since last (re)submit
    deadline_s       REAL,                 -- per-job execution deadline
    complete_count   INTEGER NOT NULL DEFAULT 0,  -- applied mark_done count
                                                  -- (double-completion probe)
    trace_id         TEXT                  -- distributed-trace correlation id
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state, not_before, priority);
CREATE INDEX IF NOT EXISTS idx_jobs_lease ON jobs (state, lease_expires_at);
CREATE TABLE IF NOT EXISTS submissions (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id       TEXT NOT NULL REFERENCES jobs (id),
    submitted_at REAL NOT NULL,
    source       TEXT
);
CREATE INDEX IF NOT EXISTS idx_submissions_job ON submissions (job_id);
CREATE TABLE IF NOT EXISTS workers (
    id           TEXT PRIMARY KEY,         -- "<host>:<pid>[:t<n>]"
    pid          INTEGER,
    host         TEXT,
    started_at   REAL NOT NULL,
    heartbeat_at REAL NOT NULL,
    current_job  TEXT,
    jobs_done    INTEGER NOT NULL DEFAULT 0,
    jobs_failed  INTEGER NOT NULL DEFAULT 0
);
"""

# Incremental migrations, applied in sequence from the database's recorded
# version up to ``_SCHEMA_VERSION``.  ALTERs must run before ``_SCHEMA`` so
# new indexes find their columns on an old database; each statement is
# individually idempotent (duplicate-column errors are swallowed), so a
# crash mid-migration is healed by simply reopening the store.
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    # v1 -> v2: the lease columns.
    1: (
        "ALTER TABLE jobs ADD COLUMN worker_id TEXT",
        "ALTER TABLE jobs ADD COLUMN lease_expires_at REAL",
        "ALTER TABLE jobs ADD COLUMN heartbeat_at REAL",
    ),
    # v2 -> v3: crash-loop quarantine + per-job deadlines + the
    # double-completion probe.
    2: (
        "ALTER TABLE jobs ADD COLUMN requeue_count INTEGER NOT NULL DEFAULT 0",
        "ALTER TABLE jobs ADD COLUMN deadline_s REAL",
        "ALTER TABLE jobs ADD COLUMN complete_count INTEGER NOT NULL DEFAULT 0",
    ),
    # v3 -> v4: the distributed-trace correlation id, assigned at submission.
    # Jobs that predate tracing keep NULL; their traces are queue-wait only.
    3: (
        "ALTER TABLE jobs ADD COLUMN trace_id TEXT",
    ),
}

_JOB_COLUMNS = (
    "id, experiment, request, state, priority, created_at, started_at, "
    "finished_at, not_before, executions, max_retries, retry_base, error, "
    "result, timings, worker_id, lease_expires_at, heartbeat_at, "
    "requeue_count, deadline_s, complete_count, trace_id, "
    "(SELECT COUNT(*) FROM submissions s WHERE s.job_id = jobs.id) AS submissions"
)


def default_worker_id() -> str:
    """The process-level worker identity: ``<host>:<pid>``.

    The pid is parseable back out of the id (``id.rsplit(":")``), which the
    CI fleet smoke uses to SIGKILL the worker currently holding a lease.
    """
    return f"{socket.gethostname()}:{os.getpid()}"


class UnknownJobError(ValueError):
    """Lookup of a job id (or prefix) that matches no stored job."""


class AmbiguousJobError(ValueError):
    """A job-id prefix that matches more than one stored job."""


@dataclass(frozen=True)
class Job:
    """One stored job row, hydrated into a convenient immutable view."""

    id: str
    experiment: str
    request_json: str
    state: str
    priority: int
    created_at: float
    started_at: float | None
    finished_at: float | None
    not_before: float
    executions: int
    max_retries: int
    retry_base: int
    submissions: int
    error: str | None = None
    result_json: str | None = field(default=None, repr=False)
    timings: dict[str, float] = field(default_factory=dict)
    worker_id: str | None = None
    lease_expires_at: float | None = None
    heartbeat_at: float | None = None
    requeue_count: int = 0
    deadline_s: float | None = None
    complete_count: int = 0
    trace_id: str | None = None

    @property
    def short_id(self) -> str:
        return self.id[:12]

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def is_inactive(self) -> bool:
        """Terminal or quarantined — the job will not run again by itself."""
        return self.state in INACTIVE_STATES

    @property
    def executions_this_incarnation(self) -> int:
        """Executions since the job was last (re)submitted from a terminal
        state — the count the retry budget is measured against."""
        return self.executions - self.retry_base

    def lease_expired(self, now: float | None = None) -> bool:
        """Whether this job's lease has lapsed (running jobs only)."""
        if self.state != RUNNING or self.lease_expires_at is None:
            return False
        return self.lease_expires_at <= (time.time() if now is None else now)

    @property
    def fidelity(self) -> str:
        """The request's cost-model tier (from the stored request JSON)."""
        from repro.analytic.fidelity import DEFAULT_FIDELITY

        try:
            return json.loads(self.request_json).get(
                "fidelity", DEFAULT_FIDELITY.value
            )
        except (ValueError, AttributeError):
            return DEFAULT_FIDELITY.value

    def request(self) -> ExperimentRequest:
        return ExperimentRequest.from_json(self.request_json)

    def result(self) -> ExperimentResult | None:
        """The stored :class:`ExperimentResult`, or ``None`` before ``done``."""
        if self.result_json is None:
            return None
        return ExperimentResult.from_json(self.result_json)

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """JSON-native view — the HTTP API's and CLI's wire format."""
        payload: dict[str, Any] = {
            "id": self.id,
            "experiment": self.experiment,
            "state": self.state,
            "priority": self.priority,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "not_before": self.not_before,
            "executions": self.executions,
            "max_retries": self.max_retries,
            "retry_base": self.retry_base,
            "submissions": self.submissions,
            "error": self.error,
            "timings": dict(self.timings),
            "worker_id": self.worker_id,
            "lease_expires_at": self.lease_expires_at,
            "heartbeat_at": self.heartbeat_at,
            "requeue_count": self.requeue_count,
            "deadline_s": self.deadline_s,
            "complete_count": self.complete_count,
            "trace_id": self.trace_id,
            "fidelity": self.fidelity,
            "request": json.loads(self.request_json),
        }
        if include_result:
            payload["result"] = (
                json.loads(self.result_json) if self.result_json else None
            )
        return payload


@dataclass(frozen=True)
class ReapOutcome:
    """What one :meth:`JobStore.reap_expired` pass did.

    Iterable and truthy like the plain id list it replaced, so callers that
    only care about "which jobs moved" keep working unchanged.
    """

    requeued: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[str]:
        return iter([*self.requeued, *self.quarantined])

    def __len__(self) -> int:
        return len(self.requeued) + len(self.quarantined)

    def __bool__(self) -> bool:
        return bool(self.requeued or self.quarantined)


def _job_from_row(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"],
        experiment=row["experiment"],
        request_json=row["request"],
        state=row["state"],
        priority=row["priority"],
        created_at=row["created_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        not_before=row["not_before"],
        executions=row["executions"],
        max_retries=row["max_retries"],
        retry_base=row["retry_base"],
        submissions=row["submissions"],
        error=row["error"],
        result_json=row["result"],
        timings=dict(json.loads(row["timings"] or "{}")),
        worker_id=row["worker_id"],
        lease_expires_at=row["lease_expires_at"],
        heartbeat_at=row["heartbeat_at"],
        requeue_count=row["requeue_count"],
        deadline_s=row["deadline_s"],
        complete_count=row["complete_count"],
        trace_id=row["trace_id"],
    )


class JobStore:
    """Persistent job/result store over one SQLite database file."""

    def __init__(
        self, path: str | Path, busy_timeout_ms: int = _BUSY_TIMEOUT_MS
    ) -> None:
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._open(busy_timeout_ms)
        except sqlite3.DatabaseError:
            # A corrupt database file must not take the whole fleet down at
            # boot: move it aside (with its WAL/SHM siblings) and start
            # fresh.  Queued jobs in the corrupt file are lost, but clients
            # resubmit by content hash, so the loss is recoverable — a
            # crashed boot loop is not.
            self._move_corrupt_aside()
            self._open(busy_timeout_ms)

    def _open(self, busy_timeout_ms: int) -> None:
        # isolation_level=None: autocommit mode — transactions are explicit
        # (BEGIN IMMEDIATE in ``_write``), never implicit-deferred, so every
        # read-modify-write holds the database write lock from its first
        # statement.  That is the cross-process claim-race fix.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        try:
            self._conn.row_factory = sqlite3.Row
            with self._lock:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute(
                    f"PRAGMA busy_timeout={int(busy_timeout_ms)}"
                )
                version = self._conn.execute(
                    "PRAGMA user_version"
                ).fetchone()[0]
                if version > _SCHEMA_VERSION:
                    raise ValueError(
                        f"job store {self.path} has schema version {version},"
                        f" this build expects <= {_SCHEMA_VERSION}"
                    )
                # DDL runs in autocommit (executescript commits any pending
                # transaction anyway); every statement is idempotent, so a
                # crash mid-migration is healed by reopening the store.
                # version 0 is a fresh database: no tables to ALTER, the
                # executescript below creates everything at v3 directly.
                for from_version in range(version or _SCHEMA_VERSION, _SCHEMA_VERSION):
                    for ddl in _MIGRATIONS[from_version]:
                        try:
                            self._conn.execute(ddl)
                        except sqlite3.OperationalError as exc:
                            if "duplicate column" not in str(exc):
                                raise
                self._conn.executescript(_SCHEMA)
                self._conn.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
        except BaseException:
            self._conn.close()
            raise

    def _move_corrupt_aside(self) -> None:
        stamp = int(time.time())
        target = self.path.with_name(f"{self.path.name}.corrupt-{stamp}")
        warnings.warn(
            f"job store {self.path} is corrupt; moving it to {target}"
            " and starting with a fresh database",
            RuntimeWarning,
            stacklevel=3,
        )
        os.replace(self.path, target)
        for suffix in ("-wal", "-shm"):
            sidecar = self.path.with_name(self.path.name + suffix)
            if sidecar.exists():
                os.replace(sidecar, target.with_name(target.name + suffix))
        metrics().counter("store.corrupt_recovered").inc()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Write transactions
    # ------------------------------------------------------------------
    @contextmanager
    def _write(self, op: str = "", **fault_ctx: Any) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` transaction, retried on ``SQLITE_BUSY``.

        ``BEGIN IMMEDIATE`` takes the database write lock *at BEGIN*, so the
        reads inside the transaction see a state no other writer can change
        before our own writes commit.  ``busy_timeout`` makes the BEGIN wait
        for a competing writer; if it still surfaces ``SQLITE_BUSY`` (a
        writer hogging the lock past the timeout) we back off and retry a
        bounded number of times before giving up loudly.

        ``op`` names the write for the ``store.commit`` fault site, checked
        *after* the transaction body and *before* COMMIT: an injected error
        rolls the whole transaction back, exactly like a real commit-time
        I/O failure, and an injected crash loses it with the process.
        """
        with self._lock:
            for attempt in range(_BUSY_RETRIES):
                try:
                    self._conn.execute("BEGIN IMMEDIATE")
                except sqlite3.OperationalError as exc:
                    message = str(exc).lower()
                    if "locked" not in message and "busy" not in message:
                        raise
                    if attempt == _BUSY_RETRIES - 1:
                        raise
                    metrics().counter("store.busy_retries").inc()
                    time.sleep(_BUSY_RETRY_BASE * (2**attempt))
                    continue
                try:
                    yield self._conn
                    fault_point("store.commit", op=op, **fault_ctx)
                except BaseException:
                    try:
                        self._conn.execute("ROLLBACK")
                    except sqlite3.OperationalError:
                        pass  # the failed statement already ended the txn
                    raise
                else:
                    self._conn.execute("COMMIT")
                return

    # ------------------------------------------------------------------
    # Submission (the dedup seam)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ExperimentRequest,
        priority: int = 0,
        max_retries: int = 0,
        source: str | None = None,
        now: float | None = None,
        deadline_s: float | None = None,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Submit a request; returns ``(job, deduped)``.

        The job id is the request's content hash.  A request whose job is
        already ``queued``/``running``/``done`` only gains a submission row
        (``deduped=True`` — no new execution will happen).  A ``failed`` or
        ``cancelled`` job is *requeued* in place (``deduped=False`` — it will
        execute again), keeping its execution history.  A ``quarantined``
        job only *attaches* too: quarantine is sticky, so a crash-looping
        job cannot be restarted by accident — only the explicit
        :meth:`requeue` escape hatch releases it.

        ``deadline_s`` is a per-job execution budget checked cooperatively
        at pipeline stage boundaries; exceeding it fails the job terminally.

        ``trace_id`` is the distributed-trace correlation id assigned at
        submission (generated here when the submitter did not propose one).
        A job keeps the trace id of the submission that *created* it: a
        deduped attach never rewrites an in-flight job's id (spans already
        spooled under it would be orphaned), it only backfills pre-v4 NULLs.
        """
        from repro.obs.context import new_trace_id

        now = time.time() if now is None else now
        trace_id = trace_id or new_trace_id()
        job_id = request.content_hash
        with self._write("submit", job=job_id) as conn:
            row = conn.execute(
                "SELECT state FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO jobs (id, experiment, request, state, priority,"
                    " created_at, max_retries, deadline_s, trace_id)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        request.experiment,
                        request.to_json(),
                        QUEUED,
                        priority,
                        now,
                        max_retries,
                        deadline_s,
                        trace_id,
                    ),
                )
                deduped = False
            elif row["state"] in (QUEUED, RUNNING, DONE, QUARANTINED):
                # Attach to the in-flight, completed, or quarantined job.  A
                # queued job can still absorb a higher priority or a larger
                # retry budget.  The trace id only backfills rows migrated
                # from pre-v4 schemas — an existing id is never rewritten.
                conn.execute(
                    "UPDATE jobs SET priority=MAX(priority, ?),"
                    " max_retries=MAX(max_retries, ?) WHERE id=? AND state=?",
                    (priority, max_retries, job_id, QUEUED),
                )
                conn.execute(
                    "UPDATE jobs SET trace_id=? WHERE id=? AND trace_id IS NULL",
                    (trace_id, job_id),
                )
                deduped = True
            else:  # failed / cancelled: requeue the same job
                # ``retry_base`` snapshots the execution count so the fresh
                # ``max_retries`` budget applies to this incarnation only,
                # not to the job's lifetime history.  ``requeue_count``
                # resets too: the crash-loop bound is per incarnation.
                # The trace id survives resubmission (COALESCE only fills
                # pre-v4 NULLs): one job keeps one trace across incarnations,
                # so a merged trace shows the failed attempts too.
                conn.execute(
                    "UPDATE jobs SET state=?, priority=?, max_retries=?,"
                    " retry_base=executions, not_before=0, error=NULL,"
                    " started_at=NULL, finished_at=NULL, worker_id=NULL,"
                    " lease_expires_at=NULL, heartbeat_at=NULL,"
                    " requeue_count=0, deadline_s=?,"
                    " trace_id=COALESCE(trace_id, ?) WHERE id=?",
                    (QUEUED, priority, max_retries, deadline_s, trace_id, job_id),
                )
                deduped = False
            conn.execute(
                "INSERT INTO submissions (job_id, submitted_at, source)"
                " VALUES (?, ?, ?)",
                (job_id, now, source),
            )
        metrics().counter("jobs.submitted").inc()
        if deduped:
            metrics().counter("jobs.dedup_attached").inc()
        return self.get(job_id), deduped

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job with this exact id; raises :class:`UnknownJobError`."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return _job_from_row(row)

    def find(self, prefix: str) -> Job:
        """The unique job whose id starts with ``prefix`` (CLI convenience)."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id LIKE ? LIMIT 2",
                (prefix + "%",),
            ).fetchall()
        if not rows:
            raise UnknownJobError(f"no job matches {prefix!r}")
        if len(rows) > 1:
            raise AmbiguousJobError(
                f"job prefix {prefix!r} is ambiguous; use more characters"
            )
        return _job_from_row(rows[0])

    def list_jobs(
        self,
        state: str | None = None,
        experiment: str | None = None,
        limit: int = 200,
    ) -> list[Job]:
        """Jobs newest-first, optionally filtered by state and experiment."""
        if state is not None and state not in STATES:
            raise ValueError(
                f"unknown state {state!r}; states are {', '.join(STATES)}"
            )
        clauses, args = [], []
        if state is not None:
            clauses.append("state=?")
            args.append(state)
        if experiment is not None:
            clauses.append("experiment=?")
            args.append(experiment)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs {where}"
                " ORDER BY created_at DESC, id LIMIT ?",
                (*args, limit),
            ).fetchall()
        return [_job_from_row(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per state (every state present, zeros included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: row["n"] for row in rows})
        return counts

    # ------------------------------------------------------------------
    # Scheduling transitions (lease-based)
    # ------------------------------------------------------------------
    def claim_next(
        self,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        now: float | None = None,
    ) -> Job | None:
        """Atomically lease the next due job (priority desc, then FIFO).

        The claim stamps ``worker_id`` and a ``lease_expires_at`` deadline
        onto the row inside one ``BEGIN IMMEDIATE`` transaction — two
        processes sharing the database can never claim the same job.  The
        worker must :meth:`heartbeat` within ``lease_ttl`` or the job is
        fair game for :meth:`reap_expired`.
        """
        now = time.time() if now is None else now
        worker_id = worker_id or default_worker_id()
        with self._write("claim_next", worker=worker_id) as conn:
            row = conn.execute(
                "SELECT id, created_at, not_before FROM jobs"
                " WHERE state=? AND not_before<=?"
                " ORDER BY priority DESC, created_at ASC, id ASC LIMIT 1",
                (QUEUED, now),
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state=?, started_at=?, executions=executions+1,"
                " worker_id=?, lease_expires_at=?, heartbeat_at=? WHERE id=?",
                (RUNNING, now, worker_id, now + lease_ttl, now, row["id"]),
            )
            # Dequeue-to-start latency: how long the job was *due* (past its
            # creation and any retry-backoff gate) before a worker took it.
            became_due = max(row["created_at"], row["not_before"])
            metrics().histogram("serve.queue_wait_seconds").observe(
                max(0.0, now - became_due)
            )
            metrics().counter("jobs.claimed").inc()
        return self.get(row["id"])

    def heartbeat(
        self,
        job_id: str,
        worker_id: str,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        now: float | None = None,
    ) -> bool:
        """Extend a held lease; returns ``False`` when the lease was lost.

        A ``False`` return means the job was reaped (and possibly reclaimed
        by another worker) — the caller's eventual result will be discarded
        by the owner guard on ``mark_done``/``mark_failed``.
        """
        now = time.time() if now is None else now
        with self._write("heartbeat", job=job_id) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires_at=?, heartbeat_at=?"
                " WHERE id=? AND worker_id=? AND state=?",
                (now + lease_ttl, now, job_id, worker_id, RUNNING),
            )
            alive = cursor.rowcount > 0
        if not alive:
            metrics().counter("jobs.lease_lost").inc()
        return alive

    def reap_expired(
        self,
        now: float | None = None,
        quarantine_after: int = DEFAULT_REQUEUE_CAP,
    ) -> "ReapOutcome":
        """Requeue or quarantine every running job whose lease lapsed.

        This is the crash-recovery path of the worker fleet: a SIGKILL'd
        worker stops heartbeating, its leases expire, and the next reaper
        pass (any process may run one) puts the jobs back in the queue with
        their execution history intact — *unless* the job has already been
        requeued this way ``quarantine_after`` times, in which case it is
        quarantined instead: a job that kills its worker on every attempt
        must not be allowed to grind the fleet forever.  Only the explicit
        :meth:`requeue` escape hatch releases a quarantined job.
        """
        now = time.time() if now is None else now
        with self._write("reap_expired") as conn:
            rows = conn.execute(
                "SELECT id, requeue_count FROM jobs WHERE state=?"
                " AND lease_expires_at IS NOT NULL AND lease_expires_at<=?",
                (RUNNING, now),
            ).fetchall()
            requeued = [
                row["id"]
                for row in rows
                if row["requeue_count"] < quarantine_after
            ]
            quarantined = [
                row["id"]
                for row in rows
                if row["requeue_count"] >= quarantine_after
            ]
            if requeued:
                marks = ",".join("?" for _ in requeued)
                conn.execute(
                    f"UPDATE jobs SET state=?, worker_id=NULL,"
                    f" lease_expires_at=NULL, heartbeat_at=NULL,"
                    f" started_at=NULL, not_before=0,"
                    f" requeue_count=requeue_count+1 WHERE id IN ({marks})",
                    (QUEUED, *requeued),
                )
            if quarantined:
                marks = ",".join("?" for _ in quarantined)
                conn.execute(
                    f"UPDATE jobs SET state=?, worker_id=NULL,"
                    f" lease_expires_at=NULL, heartbeat_at=NULL,"
                    f" finished_at=?,"
                    f" error=COALESCE(error, 'quarantined: lease expired '"
                    f" || (requeue_count + 1) || ' times (crash loop?)')"
                    f" WHERE id IN ({marks})",
                    (QUARANTINED, now, *quarantined),
                )
        total = len(requeued) + len(quarantined)
        if total:
            metrics().counter("jobs.lease_expired").inc(total)
        if requeued:
            metrics().counter("jobs.requeued").inc(len(requeued))
        if quarantined:
            metrics().counter("jobs.quarantined").inc(len(quarantined))
        return ReapOutcome(requeued=requeued, quarantined=quarantined)

    def recover(
        self,
        now: float | None = None,
        quarantine_after: int = DEFAULT_REQUEUE_CAP,
    ) -> int:
        """Requeue interrupted jobs: expired leases plus lease-less rows.

        Subsumed by :meth:`reap_expired` for leased rows; the extra case is
        a ``running`` row with no lease at all (a database written by the
        pre-lease schema, mid-migration).  Jobs whose lease is still live
        are left alone — they belong to a worker process that may well still
        be running.  Applies the same crash-loop bound as the reaper.
        """
        now = time.time() if now is None else now
        with self._write("recover") as conn:
            conn.execute(
                "UPDATE jobs SET state=?, worker_id=NULL,"
                " lease_expires_at=NULL, heartbeat_at=NULL, finished_at=?"
                " WHERE state=? AND (lease_expires_at IS NULL"
                " OR lease_expires_at<=?) AND requeue_count>=?",
                (QUARANTINED, now, RUNNING, now, quarantine_after),
            )
            cursor = conn.execute(
                "UPDATE jobs SET state=?, worker_id=NULL, lease_expires_at=NULL,"
                " heartbeat_at=NULL, started_at=NULL, not_before=0,"
                " requeue_count=requeue_count+1"
                " WHERE state=? AND (lease_expires_at IS NULL"
                " OR lease_expires_at<=?)",
                (QUEUED, RUNNING, now),
            )
            requeued = cursor.rowcount
        if requeued:
            metrics().counter("jobs.requeued").inc(requeued)
        return requeued

    def requeue(self, job_id: str, now: float | None = None) -> tuple[Job, bool]:
        """Manually release a resting job back to the queue — the
        ``repro requeue <job>`` escape hatch for quarantine.

        Returns ``(job, requeued)``.  Applies to ``quarantined``, ``failed``
        and ``cancelled`` jobs; the requeue counter resets so the released
        job gets a full crash-loop budget for its new incarnation.
        """
        now = time.time() if now is None else now
        with self._write("requeue", job=job_id) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state=?, retry_base=executions, not_before=0,"
                " error=NULL, started_at=NULL, finished_at=NULL,"
                " worker_id=NULL, lease_expires_at=NULL, heartbeat_at=NULL,"
                " requeue_count=0 WHERE id=? AND state IN (?, ?, ?)",
                (QUEUED, job_id, QUARANTINED, FAILED, CANCELLED),
            )
            requeued = cursor.rowcount > 0
        if requeued:
            metrics().counter("jobs.manual_requeues").inc()
        return self.get(job_id), requeued

    def mark_done(
        self,
        job_id: str,
        result: ExperimentResult,
        now: float | None = None,
        worker_id: str | None = None,
    ) -> Job:
        """Persist a successful run: result JSON + final stage timings.

        With ``worker_id`` the write is owner-guarded: it only lands while
        that worker still holds the lease, so a reaped job re-running
        elsewhere is never clobbered by its original worker's late result.
        """
        now = time.time() if now is None else now
        timings = json.dumps(dict(result.timings))
        guard, args = self._owner_guard(worker_id)
        with self._write("mark_done", job=job_id) as conn:
            # ``complete_count`` only moves when the guarded UPDATE lands —
            # it is the chaos harness's double-completion probe, visible
            # across processes (unlike per-process metrics).
            cursor = conn.execute(
                "UPDATE jobs SET state=?, finished_at=?, result=?, error=NULL,"
                " timings=?, lease_expires_at=NULL,"
                f" complete_count=complete_count+1 WHERE id=?{guard}",
                (DONE, now, result.to_json(indent=None), timings, job_id, *args),
            )
            applied = cursor.rowcount > 0
        if applied:
            metrics().counter("jobs.done").inc()
        else:
            metrics().counter("jobs.lease_lost").inc()
        return self.get(job_id)

    def mark_failed(
        self,
        job_id: str,
        error: str,
        retry_at: float | None = None,
        now: float | None = None,
        worker_id: str | None = None,
    ) -> Job:
        """Record a failed execution.

        With ``retry_at`` the job goes back to ``queued`` gated behind the
        backoff timestamp; without it the job is terminally ``failed``.
        ``worker_id`` applies the same owner guard as :meth:`mark_done`.
        """
        now = time.time() if now is None else now
        guard, args = self._owner_guard(worker_id)
        with self._write("mark_failed", job=job_id) as conn:
            if retry_at is not None:
                cursor = conn.execute(
                    "UPDATE jobs SET state=?, not_before=?, error=?,"
                    " started_at=NULL, worker_id=NULL, lease_expires_at=NULL,"
                    f" heartbeat_at=NULL WHERE id=?{guard}",
                    (QUEUED, retry_at, error, job_id, *args),
                )
            else:
                cursor = conn.execute(
                    "UPDATE jobs SET state=?, finished_at=?, error=?,"
                    f" lease_expires_at=NULL WHERE id=?{guard}",
                    (FAILED, now, error, job_id, *args),
                )
            applied = cursor.rowcount > 0
        if not applied:
            metrics().counter("jobs.lease_lost").inc()
        else:
            metrics().counter(
                "jobs.retried" if retry_at is not None else "jobs.failed"
            ).inc()
        return self.get(job_id)

    @staticmethod
    def _owner_guard(worker_id: str | None) -> tuple[str, tuple[Any, ...]]:
        if worker_id is None:
            return "", ()
        return " AND worker_id=? AND state=?", (worker_id, RUNNING)

    def cancel(self, job_id: str, now: float | None = None) -> tuple[Job, bool]:
        """Cancel a queued job; returns ``(job, cancelled)``.

        Only ``queued`` jobs can be cancelled — a ``running`` pipeline is not
        interrupted mid-stage (its result is moments away and may serve future
        deduped submissions), and terminal jobs are left as they are.
        """
        now = time.time() if now is None else now
        with self._write("cancel", job=job_id) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state=?, finished_at=? WHERE id=? AND state=?",
                (CANCELLED, now, job_id, QUEUED),
            )
            cancelled = cursor.rowcount > 0
        if cancelled:
            metrics().counter("jobs.cancelled").inc()
        return self.get(job_id), cancelled

    def record_stage(self, job_id: str, stage: str, seconds: float) -> None:
        """Stream one completed stage's timing into the job row (live)."""
        with self._write("record_stage", job=job_id, stage=stage) as conn:
            row = conn.execute(
                "SELECT timings FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            timings = dict(json.loads(row["timings"] or "{}"))
            timings[stage] = seconds
            conn.execute(
                "UPDATE jobs SET timings=? WHERE id=?",
                (json.dumps(timings), job_id),
            )

    def submissions(self, job_id: str) -> list[dict[str, Any]]:
        """The submission records attached to one job, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, submitted_at, source FROM submissions"
                " WHERE job_id=? ORDER BY id",
                (job_id,),
            ).fetchall()
        if not rows:
            # Distinguish "no submissions" from "no such job".
            self.get(job_id)
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # Worker registry (fleet liveness)
    # ------------------------------------------------------------------
    def register_worker(
        self,
        worker_id: str,
        pid: int | None = None,
        host: str | None = None,
        now: float | None = None,
    ) -> None:
        """Announce a worker; re-registration resets its liveness row."""
        now = time.time() if now is None else now
        with self._write("register_worker", worker=worker_id) as conn:
            conn.execute(
                "INSERT OR REPLACE INTO workers"
                " (id, pid, host, started_at, heartbeat_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    worker_id,
                    pid if pid is not None else os.getpid(),
                    host if host is not None else socket.gethostname(),
                    now,
                    now,
                ),
            )

    def worker_heartbeat(
        self,
        worker_id: str,
        current_job: str | None = None,
        now: float | None = None,
    ) -> None:
        """Refresh a worker's liveness row (idle or mid-job)."""
        now = time.time() if now is None else now
        with self._write("worker_heartbeat", worker=worker_id) as conn:
            conn.execute(
                "UPDATE workers SET heartbeat_at=?, current_job=? WHERE id=?",
                (now, current_job, worker_id),
            )

    def worker_finished(self, worker_id: str, ok: bool) -> None:
        """Bump a worker's done/failed tallies after one job."""
        column = "jobs_done" if ok else "jobs_failed"
        with self._write("worker_finished", worker=worker_id) as conn:
            conn.execute(
                f"UPDATE workers SET {column}={column}+1, current_job=NULL"
                " WHERE id=?",
                (worker_id,),
            )

    def deregister_worker(self, worker_id: str) -> None:
        with self._write("deregister_worker", worker=worker_id) as conn:
            conn.execute("DELETE FROM workers WHERE id=?", (worker_id,))

    def list_workers(self, now: float | None = None) -> list[dict[str, Any]]:
        """Registered workers with heartbeat ages, oldest-registered first."""
        now = time.time() if now is None else now
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, pid, host, started_at, heartbeat_at, current_job,"
                " jobs_done, jobs_failed FROM workers ORDER BY started_at, id"
            ).fetchall()
        workers = []
        for row in rows:
            worker = dict(row)
            worker["heartbeat_age_s"] = max(0.0, now - row["heartbeat_at"])
            workers.append(worker)
        return workers

    def prune_workers(
        self, max_age: float = 300.0, now: float | None = None
    ) -> int:
        """Drop worker rows whose heartbeat is older than ``max_age``."""
        now = time.time() if now is None else now
        with self._write("prune_workers") as conn:
            cursor = conn.execute(
                "DELETE FROM workers WHERE heartbeat_at<?", (now - max_age,)
            )
            return cursor.rowcount


__all__ = [
    "AmbiguousJobError",
    "CANCELLED",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_REQUEUE_CAP",
    "DONE",
    "FAILED",
    "INACTIVE_STATES",
    "Job",
    "JobStore",
    "QUARANTINED",
    "QUEUED",
    "ReapOutcome",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "UnknownJobError",
    "default_worker_id",
]
