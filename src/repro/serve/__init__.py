"""``repro.serve`` — the persistent experiment job service.

Turns the one-shot :mod:`repro.api` pipelines into a long-lived serving
system: many clients share one warm process that queues, deduplicates,
executes and persists experiments.

* :class:`JobStore` (:mod:`repro.serve.store`) — SQLite persistence, jobs
  keyed by :attr:`ExperimentRequest.content_hash` with states
  ``queued/running/done/failed/cancelled``, per-stage timings, JSON results,
  and crash recovery.
* :class:`Scheduler` (:mod:`repro.serve.scheduler`) — drains the queue with
  configurable concurrency, priority + FIFO ordering, hash-level dedup,
  retry-with-backoff, and graceful drain on SIGINT/SIGTERM.
* :class:`ExperimentServer` (:mod:`repro.serve.http_api`) — stdlib
  ``ThreadingHTTPServer`` JSON API (``POST /jobs``, ``GET /jobs[/<id>]``,
  ``DELETE /jobs/<id>``, ``GET /healthz``).
* :class:`Worker` (:mod:`repro.serve.worker`) — one ``repro worker`` process:
  lease-claim, execute, heartbeat, reap expired leases fleet-wide.
* :class:`WorkerSupervisor` (:mod:`repro.serve.supervisor`) — spawns and
  respawns a fleet of worker processes for ``repro serve --fleet N``.
* :class:`ServeClient` (:mod:`repro.serve.client`) — the urllib client the
  ``repro submit/status/cancel`` CLI verbs are built on; retries refused
  admissions and rides out brief outages within a reconnect budget.
* :func:`run_chaos` (:mod:`repro.serve.chaos`) — the ``repro chaos``
  fault-injection drill: a seeded :class:`~repro.faults.FaultPlan` against
  a real worker fleet, with the robustness invariants checked at the end.

Robustness seams (see DESIGN.md "Failure modes & degradation"): jobs whose
lease expires more than ``DEFAULT_REQUEUE_CAP`` times are quarantined
(state ``quarantined``) instead of crash-looping; ``repro requeue``
releases them.  Jobs can carry a ``deadline_s`` execution budget enforced
at stage boundaries.  ``repro serve --max-queue N`` refuses submissions
over the cap with 503 + Retry-After.

Minimal embedded use (no HTTP)::

    from repro.api import ExperimentRequest
    from repro.serve import JobStore, Scheduler

    scheduler = Scheduler(JobStore("serve.db"), concurrency=2)
    scheduler.start()
    job, deduped = scheduler.submit(ExperimentRequest(experiment="fig8"))
    print(scheduler.wait(job.id).result().summary)
    scheduler.stop()
"""

from __future__ import annotations

from repro.serve.chaos import default_chaos_plan, run_chaos
from repro.serve.client import (
    DEFAULT_RECONNECT_BUDGET,
    DEFAULT_URL,
    ServeBusyError,
    ServeClient,
    ServeError,
    ServeUnavailableError,
)
from repro.serve.http_api import DEFAULT_HOST, DEFAULT_PORT, ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import (
    AmbiguousJobError,
    DEFAULT_LEASE_TTL,
    DEFAULT_REQUEUE_CAP,
    INACTIVE_STATES,
    Job,
    JobStore,
    QUARANTINED,
    ReapOutcome,
    STATES,
    TERMINAL_STATES,
    UnknownJobError,
    default_worker_id,
)
from repro.serve.supervisor import WorkerSupervisor
from repro.serve.worker import Worker

__all__ = [
    "AmbiguousJobError",
    "DEFAULT_HOST",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_PORT",
    "DEFAULT_RECONNECT_BUDGET",
    "DEFAULT_REQUEUE_CAP",
    "DEFAULT_URL",
    "ExperimentServer",
    "INACTIVE_STATES",
    "Job",
    "JobStore",
    "QUARANTINED",
    "ReapOutcome",
    "STATES",
    "Scheduler",
    "ServeBusyError",
    "ServeClient",
    "ServeError",
    "ServeUnavailableError",
    "TERMINAL_STATES",
    "UnknownJobError",
    "Worker",
    "WorkerSupervisor",
    "default_chaos_plan",
    "default_worker_id",
    "run_chaos",
]
