"""Spawn and babysit a fleet of ``repro worker`` processes.

The supervisor is deliberately dumb: it owns no scheduling state at all —
jobs, leases and retries live in the shared :class:`JobStore`, so the only
thing a supervisor must do is keep N worker *processes* alive.  A worker
that exits (crash, OOM-kill, SIGKILL) is respawned after ``respawn_delay``;
its half-finished job comes back via lease expiry, not via anything the
supervisor knows.  This is the proactor-style "supervised long-lived
workers over a durable message seam" shape, with SQLite as the seam.

Capacity therefore scales by *adding worker processes* (more supervisors on
more machines pointed at one database work too), never by piling threads
into the front-end process.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.obs import metrics


def _worker_env(extra: Mapping[str, str] | None = None) -> dict[str, str]:
    """Subprocess env that can import this very ``repro`` package.

    ``extra`` entries are layered on top — the chaos harness ships its fault
    plan to every worker this way (``REPRO_FAULTS``) without mutating the
    supervisor's own ``os.environ``.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(package_root)
        if not existing
        else str(package_root) + os.pathsep + existing
    )
    if extra:
        env.update(extra)
    return env


class WorkerSupervisor:
    """Keep ``count`` worker processes draining one job store.

    Parameters
    ----------
    db:
        The shared SQLite job-store path every worker is pointed at.
    count:
        Fleet size (worker processes).
    lease_ttl / heartbeat_interval:
        Lease parameters forwarded to every worker.
    cache_dir / no_cache / job_workers:
        Pipeline execution options forwarded to every worker
        (``job_workers`` is each job's *inner* fan-out pool size).
    respawn_delay:
        Pause before restarting a dead worker (dampens crash loops).
    monitor_interval:
        How often the monitor thread polls worker processes.
    quarantine_after:
        Crash-loop cap forwarded to every worker's reaper (``None`` keeps
        the worker default).
    extra_env:
        Extra environment variables for every worker process (layered over
        the inherited environment; the chaos harness ships fault plans
        through ``REPRO_FAULTS`` here).
    """

    def __init__(
        self,
        db: str | Path,
        count: int,
        lease_ttl: float = 30.0,
        heartbeat_interval: float | None = None,
        cache_dir: str | None = None,
        no_cache: bool = False,
        job_workers: int | None = None,
        respawn_delay: float = 1.0,
        monitor_interval: float = 0.5,
        quarantine_after: int | None = None,
        extra_env: Mapping[str, str] | None = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"fleet size must be >= 1, got {count}")
        self.db = str(db)
        self.count = count
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = heartbeat_interval
        self.cache_dir = cache_dir
        self.no_cache = no_cache
        self.job_workers = job_workers
        self.respawn_delay = respawn_delay
        self.monitor_interval = monitor_interval
        self.quarantine_after = quarantine_after
        self.extra_env = dict(extra_env) if extra_env else None
        self._procs: list[subprocess.Popen | None] = [None] * count
        self._restarts = [0] * count
        self._respawn_at = [0.0] * count
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------
    def _command(self) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--db",
            self.db,
            "--lease-ttl",
            str(self.lease_ttl),
        ]
        if self.heartbeat_interval is not None:
            command += ["--heartbeat-interval", str(self.heartbeat_interval)]
        if self.cache_dir is not None:
            command += ["--cache-dir", self.cache_dir]
        if self.no_cache:
            command += ["--no-cache"]
        if self.job_workers is not None:
            command += ["--workers", str(self.job_workers)]
        if self.quarantine_after is not None:
            command += ["--requeue-cap", str(self.quarantine_after)]
        return command

    def _spawn(self, slot: int) -> subprocess.Popen:
        # Workers inherit stdout/stderr: their claim/done/requeue lines land
        # in the service log, interleaved and prefixed with their worker id.
        return subprocess.Popen(
            self._command(), env=_worker_env(self.extra_env)
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("supervisor already started")
        self._stop.clear()
        with self._lock:
            for slot in range(self.count):
                self._procs[slot] = self._spawn(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        self._started = True

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.monitor_interval):
            now = time.monotonic()
            with self._lock:
                for slot, proc in enumerate(self._procs):
                    if proc is None or proc.poll() is None:
                        continue
                    # Dead worker: schedule, then perform, the respawn.
                    if self._respawn_at[slot] == 0.0:
                        self._respawn_at[slot] = now + self.respawn_delay
                        continue
                    if now < self._respawn_at[slot]:
                        continue
                    self._respawn_at[slot] = 0.0
                    self._restarts[slot] += 1
                    metrics().counter("fleet.respawns").inc()
                    self._procs[slot] = self._spawn(slot)

    def stop(self, timeout: float | None = 10.0) -> bool:
        """SIGTERM the fleet (workers drain their current job), then reap.

        Workers that outlive ``timeout`` are SIGKILL'd — their in-flight
        jobs requeue via lease expiry.  Returns ``True`` when every worker
        exited within the timeout.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.monitor_interval * 4)
            self._monitor = None
        with self._lock:
            procs = [proc for proc in self._procs if proc is not None]
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for proc in procs:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                drained = False
                proc.kill()
                proc.wait()
        self._started = False
        return drained

    # ------------------------------------------------------------------
    @property
    def alive(self) -> int:
        with self._lock:
            return sum(
                1
                for proc in self._procs
                if proc is not None and proc.poll() is None
            )

    def fleet_state(self) -> list[dict[str, Any]]:
        """Per-slot process state for ``/healthz``."""
        with self._lock:
            state = []
            for slot, proc in enumerate(self._procs):
                state.append(
                    {
                        "slot": slot,
                        "pid": proc.pid if proc is not None else None,
                        "alive": proc is not None and proc.poll() is None,
                        "restarts": self._restarts[slot],
                        "returncode": proc.returncode if proc is not None else None,
                    }
                )
        return state


__all__ = ["WorkerSupervisor"]
