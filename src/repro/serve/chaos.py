"""``repro chaos`` — a seeded fault-injection drill against a real fleet.

The drill stands up the full service topology (SQLite :class:`JobStore`,
front-end :class:`Scheduler`, HTTP :class:`ExperimentServer`, a
:class:`WorkerSupervisor` fleet of real ``repro worker`` processes), ships a
deterministic :class:`~repro.faults.FaultPlan` to every worker through the
``REPRO_FAULTS`` environment variable, submits a small mixed batch of
experiment jobs over HTTP, and then asserts the robustness invariants the
service claims to hold *under* those faults:

* every submitted job ends inactive (done / failed / cancelled / quarantined)
  — nothing wedges forever;
* zero double-completions — ``complete_count`` is 1 for done jobs, 0
  otherwise, even with leases expiring and claims racing across processes;
* no job is requeued past the crash-loop cap, and the designated
  crash-looping job is quarantined with ``requeue_count`` equal to the cap
  exactly;
* the job wedged by an injected stage hang dies by *deadline*, not by luck;
* the job whose store commit was failed once retries and completes;
* ``/stats`` exposes the quarantine/deadline/admission counters.

Same seed, same faults: the plan is deterministic per process, so a failing
drill replays with ``repro chaos --seed N``.  ``--smoke`` shrinks the batch
and the crash-loop cap for CI.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.api.request import ExperimentRequest, RunOptions
from repro.faults import ENV_VAR, FaultPlan, FaultRule
from repro.serve.client import ServeClient
from repro.serve.http_api import ExperimentServer
from repro.serve.scheduler import Scheduler
from repro.serve.store import INACTIVE_STATES, JobStore, QUARANTINED
from repro.serve.supervisor import WorkerSupervisor

#: Experiment reserved for the stage-hang victim — the hang rule matches on
#: experiment name (the only context the ``stage.boundary`` site carries
#: besides the stage), so no other drill job may use it.
HANG_EXPERIMENT = "fig8"

#: Injected stage-hang length; must comfortably exceed the hang victim's
#: ``deadline_s`` so the deadline — not scheduling noise — kills the job.
HANG_DURATION = 3.0
HANG_DEADLINE = 1.0


def default_chaos_plan(
    seed: int, crash_job: str, commit_job: str
) -> FaultPlan:
    """The drill's standard three faults, aimed at precomputed job hashes.

    ``ExperimentRequest.content_hash`` *is* the job id, so the victims are
    addressable before anything is submitted.
    """
    return FaultPlan(
        seed=seed,
        name="chaos-drill",
        rules=(
            # Crash loop: every claim of this job SIGKILLs the worker
            # (times=None — each respawned process must die too), so the job
            # can only leave the queue through lease-expiry quarantine.
            FaultRule(
                site="worker.claim",
                action="crash",
                match={"job": crash_job},
                times=None,
            ),
            # Wedge: the first stage boundary of this experiment sleeps past
            # the job's deadline; the deadline check right after the hang
            # must fail the job instead of letting it run over budget.
            FaultRule(
                site="stage.boundary",
                action="hang",
                match={"experiment": HANG_EXPERIMENT},
                duration=HANG_DURATION,
            ),
            # Transient durability fault: one stage-timing commit of this
            # job rolls back and raises; the execution fails, the retry
            # budget absorbs it.
            FaultRule(
                site="store.commit",
                action="error",
                match={"op": "record_stage", "job": commit_job},
                message="stage-timing commit refused once by the chaos plan",
            ),
        ),
    )


def _smoke_scale() -> Any:
    from repro.eval.common import ExperimentScale

    return ExperimentScale.smoke()


def _drill_requests(smoke: bool) -> dict[str, ExperimentRequest]:
    """The drill batch, keyed by role.  All smoke-scale (seconds, not minutes)."""
    scale = _smoke_scale()
    batch = {
        "crash": ExperimentRequest(experiment="ablate-pes", scale=scale),
        "hang": ExperimentRequest(experiment=HANG_EXPERIMENT, scale=scale),
        "commit": ExperimentRequest(experiment="ablate-rate", scale=scale),
        "healthy-0": ExperimentRequest(experiment="ablate-fifo", scale=scale),
        "healthy-1": ExperimentRequest(experiment="ablate-energy", scale=scale),
    }
    if not smoke:
        batch["healthy-2"] = ExperimentRequest(
            experiment="ablate-rate", pruning_rate=0.5, scale=scale
        )
        batch["healthy-3"] = ExperimentRequest(
            experiment="ablate-energy", pruning_rate=0.7, scale=scale
        )
    return batch


def run_chaos(
    seed: int = 0,
    fleet: int = 2,
    smoke: bool = False,
    db: str | Path | None = None,
    out: str | Path | None = None,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Run the drill; returns (and optionally writes) the chaos report.

    The report is ``{"ok": bool, "invariants": [...], "jobs": [...], ...}``;
    ``ok`` is the AND of every invariant.
    """
    cap = 1 if smoke else 2
    lease_ttl = 1.0
    drain_timeout = 90.0 if smoke else 150.0
    tmp = None
    if db is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        db = Path(tmp.name) / "chaos.db"
    db = Path(db)
    db.parent.mkdir(parents=True, exist_ok=True)

    requests = _drill_requests(smoke)
    plan = default_chaos_plan(
        seed,
        crash_job=requests["crash"].content_hash,
        commit_job=requests["commit"].content_hash,
    )
    log(
        f"repro chaos: seed={seed} fleet={fleet} cap={cap} "
        f"jobs={len(requests)} sites={', '.join(plan.sites)}"
    )

    store = JobStore(db)
    scheduler = Scheduler(
        store,
        options=RunOptions(use_cache=False),
        concurrency=0,  # front-end only: the fleet owns execution
        lease_ttl=lease_ttl,
        quarantine_after=cap,
    )
    server = ExperimentServer(
        scheduler,
        host="127.0.0.1",
        port=0,
        max_queue_depth=len(requests) + 2,
    )
    scheduler.start()
    supervisor = WorkerSupervisor(
        db=db,
        count=fleet,
        lease_ttl=lease_ttl,
        no_cache=True,
        respawn_delay=0.25,
        monitor_interval=0.1,
        quarantine_after=cap,
        extra_env={ENV_VAR: plan.to_json()},
    )

    import threading

    http_thread = threading.Thread(
        target=server.serve_forever, name="repro-chaos-http", daemon=True
    )
    invariants: list[dict[str, Any]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        invariants.append({"name": name, "ok": bool(ok), "detail": detail})
        log(f"  [{'ok' if ok else 'FAIL'}] {name}: {detail}")

    stats: dict[str, Any] = {}
    jobs: dict[str, Any] = {}
    try:
        http_thread.start()
        supervisor.start()
        client = ServeClient(server.url)
        ids = {}
        for role, request in requests.items():
            kwargs: dict[str, Any] = {}
            if role == "hang":
                kwargs["deadline_s"] = HANG_DEADLINE
            if role == "commit":
                kwargs["max_retries"] = 2
            response = client.submit(request, **kwargs)
            ids[role] = response["job"]["id"]
        log(f"submitted {len(ids)} jobs to {server.url}, letting faults fire")

        deadline = time.monotonic() + drain_timeout
        while time.monotonic() < deadline:
            jobs = {
                role: store.get(job_id).to_dict()
                for role, job_id in ids.items()
            }
            if all(j["state"] in INACTIVE_STATES for j in jobs.values()):
                break
            time.sleep(0.25)
        stats = client.stats()
    finally:
        supervisor.stop(timeout=15.0)
        server.shutdown()
        server.server_close()
        scheduler.stop(timeout=15.0)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    states = {role: j["state"] for role, j in jobs.items()}
    check(
        "drained",
        bool(jobs) and all(s in INACTIVE_STATES for s in states.values()),
        f"states={states}",
    )
    completions = {
        role: (j["complete_count"], j["state"]) for role, j in jobs.items()
    }
    check(
        "single_completion",
        all(
            count == (1 if state == "done" else 0)
            for count, state in completions.values()
        ),
        f"complete_count per job: "
        f"{ {role: c for role, (c, _) in completions.items()} }",
    )
    requeues = {role: j["requeue_count"] for role, j in jobs.items()}
    check(
        "requeue_cap",
        all(count <= cap for count in requeues.values()),
        f"cap={cap} requeue_count={requeues}",
    )
    crash = jobs.get("crash", {})
    check(
        "crash_quarantined",
        crash.get("state") == QUARANTINED
        and crash.get("requeue_count") == cap,
        f"state={crash.get('state')} "
        f"requeue_count={crash.get('requeue_count')} (cap={cap})",
    )
    hang = jobs.get("hang", {})
    check(
        "hang_killed_by_deadline",
        hang.get("state") == "failed"
        and "DeadlineExceeded" in (hang.get("error") or ""),
        f"state={hang.get('state')} error={hang.get('error')!r}",
    )
    commit = jobs.get("commit", {})
    check(
        "commit_fault_retried",
        commit.get("state") == "done" and commit.get("executions", 0) >= 2,
        f"state={commit.get('state')} executions={commit.get('executions')}",
    )
    queue_counts = stats.get("queue") or {}
    counter_keys = set(stats.get("jobs") or {})
    check(
        "stats_expose_quarantine",
        queue_counts.get(QUARANTINED, 0) >= 1
        and {"quarantined", "deadline_exceeded", "admission_rejected"}
        <= counter_keys,
        f"queue.quarantined={queue_counts.get(QUARANTINED)} "
        f"counters={sorted(counter_keys)}",
    )
    respawns = sum(slot["restarts"] for slot in supervisor.fleet_state())
    check(
        "workers_actually_crashed",
        respawns >= 1,
        f"fleet respawns={respawns}",
    )

    ok = all(entry["ok"] for entry in invariants)
    report = {
        "ok": ok,
        "seed": seed,
        "smoke": smoke,
        "fleet": fleet,
        "requeue_cap": cap,
        "lease_ttl": lease_ttl,
        "plan": plan.to_dict(),
        "invariants": invariants,
        "jobs": jobs,
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True))
        log(f"chaos report written to {out}")
    log(
        "repro chaos: ALL INVARIANTS HELD"
        if ok
        else "repro chaos: INVARIANT VIOLATION (see report)"
    )
    store.close()
    if tmp is not None:
        tmp.cleanup()
    return report


__all__ = ["default_chaos_plan", "run_chaos", "HANG_EXPERIMENT"]
