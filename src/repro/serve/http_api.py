"""Stdlib HTTP JSON API in front of the job scheduler.

Built on :class:`http.server.ThreadingHTTPServer` — no web framework, no new
dependency — because the payloads are small JSON documents and the heavy
lifting happens in the scheduler's workers, not in request handlers.

Routes
------
``POST /jobs``
    Submit a serialized :class:`~repro.api.ExperimentRequest`.  Body is
    either the bare request dict or ``{"request": {...}, "priority": int,
    "max_retries": int}``.  Responds ``201`` with ``{"job": ..., "deduped":
    false}`` for a brand-new execution, ``200`` with ``"deduped": true``
    when the request attached to an existing in-flight/completed job.
``GET /jobs``
    List jobs, newest first; ``?state=queued`` and ``?experiment=fig8``
    filter, ``?limit=N`` bounds.
``GET /jobs/<id>``
    One job (unique id prefixes accepted), including live stage timings and
    — once done — the full serialized :class:`~repro.api.ExperimentResult`.
``DELETE /jobs/<id>``
    Cancel a queued job.  Responds with the (possibly unchanged) job and a
    ``cancelled`` flag; running/terminal jobs are not interrupted.
``GET /jobs/<id>/events``
    Long-poll streaming stage progress: ``?since=N`` resumes after the last
    seen sequence number, ``?timeout=S`` bounds the poll (default 25s, capped
    at 60).  Responds ``{"job": ..., "state": ..., "events": [...], "next":
    N}`` — the events are the scheduler's started/stage/done/failed feed (the
    pipeline's ``on_stage`` hook, streamed instead of polled).
``GET /jobs/<id>/trace``
    The job's merged distributed trace as a Chrome/Perfetto trace-event
    document: every span any fleet process spooled under the job's
    ``trace_id`` (front-end submission, worker claim/execute, pipeline
    stages), plus a synthetic ``queue.wait`` span from the job row.  The
    ``metadata`` key carries the trace id, contributing pids and queue wait.
``GET /metrics/history``
    The persisted metrics time-series: periodic registry snapshots from
    every fleet process, merged timestamp-ascending.  ``?limit=N`` keeps the
    newest N entries (default 120), ``?since=T`` drops entries at or before
    epoch ``T``.
``GET /stats``
    Telemetry snapshot: uptime, queue depth by state, per-stage p50/p95
    latency, cache hit rates, job/scheduler counters (dedup attaches,
    retries, claims) and the full metrics registry.
``GET /metrics``
    The same registry in Prometheus text exposition format, plus per-state
    ``repro_serve_jobs`` gauges refreshed at scrape time.
``GET /healthz``
    Liveness: version, uptime, per-state job counts, scheduler liveness
    (workers alive, last dequeue timestamp), every registered worker with
    heartbeat age and current lease, and — in ``--fleet`` mode — per-slot
    worker-process state (pid, alive, restarts).

Errors are JSON too: ``{"error": "<message>"}`` with 400 for malformed
requests, 404 for unknown routes/jobs, 409 for ambiguous id prefixes.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

import repro
from repro.api.registry import UnknownNameError, get_experiment
from repro.api.request import ExperimentRequest
from repro.faults import InjectedFault, fault_point
from repro.obs import bind_trace, metrics, new_trace_id, trace_context, trace_span
from repro.obs.sink import merge_trace, obs_dir_for, read_metrics_history, read_spans
from repro.serve.scheduler import Scheduler
from repro.serve.store import (
    AmbiguousJobError,
    INACTIVE_STATES,
    JobStore,
    QUEUED,
    RUNNING,
    DONE,
    QUARANTINED,
    UnknownJobError,
)

# Long-poll bounds for /jobs/<id>/events.
DEFAULT_EVENTS_TIMEOUT = 25.0
MAX_EVENTS_TIMEOUT = 60.0

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8377


class ExperimentServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one scheduler + store pair."""

    daemon_threads = True

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        supervisor: Any = None,
        max_queue_depth: int | None = None,
        admission_retry_after: float = 2.0,
    ) -> None:
        self.scheduler = scheduler
        # The WorkerSupervisor when running in --fleet mode (duck-typed to
        # avoid importing subprocess machinery for embedded servers).
        self.supervisor = supervisor
        # Admission control: with ``max_queue_depth`` set, a submission that
        # would grow the queued backlog past the cap is refused with
        # 503 + Retry-After instead of accepted into an unbounded queue.
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.max_queue_depth = max_queue_depth
        self.admission_retry_after = admission_retry_after
        self.started_at = time.time()
        super().__init__((host, port), _Handler)

    @property
    def store(self) -> JobStore:
        return self.scheduler.store

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ExperimentServer  # narrowed for readability

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; the CLI's serve loop reports the interesting
        # events (submissions, completions) from the store instead.
        pass

    def _send_json(
        self,
        payload: Any,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> None:
        try:
            # The injectable response failure: drop the connection before a
            # single response byte, as a crashed front end would.
            fault_point("http.response", path=self.path, status=status)
        except InjectedFault:
            self.close_connection = True
            return
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(self._health())
            elif parts == ["stats"]:
                self._send_json(self._stats())
            elif parts == ["metrics"]:
                self._send_metrics()
            elif parts == ["jobs"]:
                self._send_json(self._list_jobs(parse_qs(parsed.query)))
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.server.store.find(parts[1])
                self._send_json({"job": job.to_dict()})
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._send_json(self._events(parts[1], parse_qs(parsed.query)))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                self._send_json(self._trace(parts[1]))
            elif parts == ["metrics", "history"]:
                self._send_json(self._metrics_history(parse_qs(parsed.query)))
            else:
                self._send_error(f"no route for GET {parsed.path}", 404)
        except UnknownJobError as exc:
            self._send_error(str(exc), 404)
        except AmbiguousJobError as exc:
            self._send_error(str(exc), 409)
        except ValueError as exc:
            self._send_error(str(exc), 400)

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "requeue":
            self._requeue(parts[1])
            return
        if parts != ["jobs"]:
            self._send_error(f"no route for POST {parsed.path}", 404)
            return
        try:
            body = self._read_body()
            if not isinstance(body, dict):
                raise ValueError(
                    f"body must be a JSON object, got {type(body).__name__}"
                )
            request_payload = body.get("request", body)
            if not isinstance(request_payload, dict):
                raise ValueError("'request' must be a JSON object")
            request = ExperimentRequest.from_dict(request_payload)
            get_experiment(request.experiment)  # unknown names fail here
            deadline_s = body.get("deadline_s")
            if deadline_s is not None:
                deadline_s = float(deadline_s)
                if deadline_s <= 0:
                    raise ValueError(
                        f"deadline_s must be > 0, got {deadline_s}"
                    )
            trace_id = body.get("trace_id")
            if trace_id is not None and not isinstance(trace_id, str):
                raise ValueError("trace_id must be a string")
            trace_id = trace_id or new_trace_id()
            if self._admission_refused(request):
                return
            # The submission span is the trace's front-end root.  The ids
            # are re-bound after the store decides: a dedup attach keeps the
            # existing job's trace_id, and the span must carry the id the
            # job actually ended up with.
            with trace_context(trace_id=trace_id):
                with trace_span(
                    "http.submit", experiment=request.experiment
                ) as span:
                    job, deduped = self.server.scheduler.submit(
                        request,
                        priority=int(body.get("priority", 0)),
                        max_retries=int(body.get("max_retries", 0)),
                        source=body.get("source") or self.client_address[0],
                        deadline_s=deadline_s,
                        trace_id=trace_id,
                    )
                    bind_trace(trace_id=job.trace_id, job_id=job.id)
                    span["deduped"] = deduped
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            UnknownNameError,
            ValueError,
        ) as exc:
            self._send_error(f"bad submission: {exc}", 400)
            return
        self._send_json(
            {"job": job.to_dict(include_result=False), "deduped": deduped},
            status=200 if deduped else 201,
        )

    def _admission_refused(self, request: ExperimentRequest) -> bool:
        """Apply the queue-depth cap; True when a 503 was sent.

        A submission that can only *attach* (its job already exists and is
        not about to requeue) adds no backlog and is always admitted — a
        caller polling for an in-flight result must never see a 503 for it.
        """
        cap = self.server.max_queue_depth
        if cap is None:
            return False
        try:
            existing = self.server.store.get(request.content_hash)
            attaches = existing.state in (QUEUED, RUNNING, DONE, QUARANTINED)
        except UnknownJobError:
            attaches = False
        if attaches:
            return False
        if self.server.store.counts()[QUEUED] < cap:
            return False
        retry_after = self.server.admission_retry_after
        metrics().counter("serve.admission_rejected").inc()
        self._send_json(
            {
                "error": (
                    f"queue is full ({cap} queued jobs);"
                    f" retry in {retry_after:g}s"
                ),
                "retry_after": retry_after,
            },
            status=503,
            headers={"Retry-After": f"{retry_after:g}"},
        )
        return True

    def _requeue(self, job_ref: str) -> None:
        """POST /jobs/<id>/requeue — the quarantine escape hatch."""
        try:
            job = self.server.store.find(job_ref)
            job, requeued = self.server.scheduler.requeue(job.id)
        except UnknownJobError as exc:
            self._send_error(str(exc), 404)
            return
        except AmbiguousJobError as exc:
            self._send_error(str(exc), 409)
            return
        self._send_json(
            {"job": job.to_dict(include_result=False), "requeued": requeued}
        )

    def do_DELETE(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if len(parts) != 2 or parts[0] != "jobs":
            self._send_error(f"no route for DELETE {parsed.path}", 404)
            return
        try:
            job = self.server.store.find(parts[1])
            # Route through the scheduler so long-pollers on the events feed
            # see a terminal ``cancelled`` event instead of hanging.
            job, cancelled = self.server.scheduler.cancel(job.id)
        except UnknownJobError as exc:
            self._send_error(str(exc), 404)
            return
        except AmbiguousJobError as exc:
            self._send_error(str(exc), 409)
            return
        self._send_json(
            {"job": job.to_dict(include_result=False), "cancelled": cancelled}
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _health(self) -> dict[str, Any]:
        server = self.server
        scheduler = server.scheduler
        supervisor = server.supervisor
        return {
            "ok": True,
            "version": repro.__version__,
            "uptime_s": time.time() - server.started_at,
            "jobs": server.store.counts(),
            "scheduler": {
                "concurrency": scheduler.concurrency,
                "running": scheduler.running,
                "workers_alive": scheduler.workers_alive,
                "last_dequeue_at": scheduler.last_dequeue_at,
                "lease_ttl": scheduler.lease_ttl,
                "threads": scheduler.worker_liveness(),
            },
            # Every registered worker (in-process threads and external
            # ``repro worker`` processes alike) with heartbeat age + lease.
            "workers": server.store.list_workers(),
            "fleet": (
                {
                    "size": supervisor.count,
                    "alive": supervisor.alive,
                    "processes": supervisor.fleet_state(),
                }
                if supervisor is not None
                else None
            ),
        }

    def _stats(self) -> dict[str, Any]:
        """The `/stats` snapshot: queue depths, latency quantiles, hit rates."""
        server = self.server
        scheduler = server.scheduler
        snapshot = metrics().snapshot()

        def counter_total(name: str) -> int:
            return sum(entry["value"] for entry in snapshot.get(name, ()))

        stages: dict[str, dict[str, Any]] = {}
        for entry in snapshot.get("pipeline.stage.seconds", ()):
            stage = entry["labels"].get("stage", "?")
            stages[stage] = {
                "count": entry["count"],
                "p50": entry["p50"],
                "p95": entry["p95"],
                "p99": entry["p99"],
            }

        caches: dict[str, dict[str, Any]] = {}
        for name, outcome in (("cache.hits", "hits"), ("cache.misses", "misses")):
            for entry in snapshot.get(name, ()):
                cache = entry["labels"].get("cache", "?")
                caches.setdefault(cache, {"hits": 0, "misses": 0})[outcome] = entry[
                    "value"
                ]
        for cache, info in caches.items():
            lookups = info["hits"] + info["misses"]
            info["hit_rate"] = (info["hits"] / lookups) if lookups else None

        queue_wait = snapshot.get("serve.queue_wait_seconds", ())
        validate_error = snapshot.get("analytic.validate.max_rel_error", ())
        return {
            "version": repro.__version__,
            "uptime_s": time.time() - server.started_at,
            "queue": server.store.counts(),
            "jobs": {
                "submitted": counter_total("jobs.submitted"),
                "dedup_attached": counter_total("jobs.dedup_attached"),
                "claimed": counter_total("jobs.claimed"),
                "done": counter_total("jobs.done"),
                "failed": counter_total("jobs.failed"),
                "retried": counter_total("jobs.retried"),
                "cancelled": counter_total("jobs.cancelled"),
                "lease_expired": counter_total("jobs.lease_expired"),
                "requeued": counter_total("jobs.requeued"),
                "lease_lost": counter_total("jobs.lease_lost"),
                "busy_retries": counter_total("store.busy_retries"),
                "quarantined": counter_total("jobs.quarantined"),
                "manual_requeues": counter_total("jobs.manual_requeues"),
                "deadline_exceeded": counter_total("serve.deadline_exceeded"),
                "admission_rejected": counter_total("serve.admission_rejected"),
            },
            "scheduler": {
                "concurrency": scheduler.concurrency,
                "workers_alive": scheduler.workers_alive,
                "last_dequeue_at": scheduler.last_dequeue_at,
                "queue_wait": dict(queue_wait[0]) if queue_wait else None,
            },
            "stages": stages,
            "caches": caches,
            "analytic": {
                "points_evaluated": counter_total("analytic.points_evaluated"),
                "validate_max_rel_error": (
                    validate_error[0]["value"] if validate_error else None
                ),
            },
            "metrics": snapshot,
        }

    def _send_metrics(self) -> None:
        """Prometheus text format; job-state gauges refreshed at scrape time."""
        registry = metrics()
        for state, count in self.server.store.counts().items():
            registry.gauge("serve.jobs", state=state).set(count)
        registry.gauge("serve.uptime_seconds").set(
            time.time() - self.server.started_at
        )
        registry.gauge("serve.workers_alive").set(
            self.server.scheduler.workers_alive
        )
        if self.server.supervisor is not None:
            registry.gauge("serve.fleet_alive").set(self.server.supervisor.alive)
        body = registry.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _trace(self, job_ref: str) -> dict[str, Any]:
        """GET /jobs/<id>/trace — the merged cross-process Chrome trace."""
        job = self.server.store.find(job_ref)
        directory = obs_dir_for(self.server.store.path)
        spans = (
            read_spans(directory, trace_id=job.trace_id)
            if job.trace_id
            else []
        )
        return merge_trace(spans, job=job.to_dict(include_result=False))

    def _metrics_history(self, query: dict[str, list[str]]) -> dict[str, Any]:
        """GET /metrics/history — merged per-process snapshot series."""
        limit = int(query.get("limit", ["120"])[0])
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        since_raw = query.get("since", [None])[0]
        since = float(since_raw) if since_raw is not None else None
        entries = read_metrics_history(
            obs_dir_for(self.server.store.path), limit=limit, since=since
        )
        return {
            "history": entries,
            "processes": sorted({entry.get("pid") for entry in entries if entry.get("pid")}),
        }

    def _events(self, job_ref: str, query: dict[str, list[str]]) -> dict[str, Any]:
        """Long-poll one job's progress events past ``since``."""
        job = self.server.store.find(job_ref)
        since = int(query.get("since", ["0"])[0])
        timeout = min(
            float(query.get("timeout", [str(DEFAULT_EVENTS_TIMEOUT)])[0]),
            MAX_EVENTS_TIMEOUT,
        )
        events = self.server.scheduler.events.since(job.id, since)
        if not events and job.state not in INACTIVE_STATES and timeout > 0:
            events = self.server.scheduler.events.wait(job.id, since, timeout)
            job = self.server.store.get(job.id)
        return {
            "job": job.id,
            "state": job.state,
            "events": events,
            "next": events[-1]["seq"] if events else since,
        }

    def _list_jobs(self, query: dict[str, list[str]]) -> dict[str, Any]:
        state = query.get("state", [None])[0]
        experiment = query.get("experiment", [None])[0]
        limit = int(query.get("limit", ["200"])[0])
        jobs = self.server.store.list_jobs(
            state=state, experiment=experiment, limit=limit
        )
        return {"jobs": [job.to_dict(include_result=False) for job in jobs]}


__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ExperimentServer"]
