"""Stdlib HTTP JSON API in front of the job scheduler.

Built on :class:`http.server.ThreadingHTTPServer` — no web framework, no new
dependency — because the payloads are small JSON documents and the heavy
lifting happens in the scheduler's workers, not in request handlers.

Routes
------
``POST /jobs``
    Submit a serialized :class:`~repro.api.ExperimentRequest`.  Body is
    either the bare request dict or ``{"request": {...}, "priority": int,
    "max_retries": int}``.  Responds ``201`` with ``{"job": ..., "deduped":
    false}`` for a brand-new execution, ``200`` with ``"deduped": true``
    when the request attached to an existing in-flight/completed job.
``GET /jobs``
    List jobs, newest first; ``?state=queued`` and ``?experiment=fig8``
    filter, ``?limit=N`` bounds.
``GET /jobs/<id>``
    One job (unique id prefixes accepted), including live stage timings and
    — once done — the full serialized :class:`~repro.api.ExperimentResult`.
``DELETE /jobs/<id>``
    Cancel a queued job.  Responds with the (possibly unchanged) job and a
    ``cancelled`` flag; running/terminal jobs are not interrupted.
``GET /healthz``
    Liveness: uptime, per-state job counts, scheduler configuration.

Errors are JSON too: ``{"error": "<message>"}`` with 400 for malformed
requests, 404 for unknown routes/jobs, 409 for ambiguous id prefixes.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.api.registry import UnknownNameError, get_experiment
from repro.api.request import ExperimentRequest
from repro.serve.scheduler import Scheduler
from repro.serve.store import AmbiguousJobError, JobStore, UnknownJobError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8377


class ExperimentServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one scheduler + store pair."""

    daemon_threads = True

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.scheduler = scheduler
        self.started_at = time.time()
        super().__init__((host, port), _Handler)

    @property
    def store(self) -> JobStore:
        return self.scheduler.store

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ExperimentServer  # narrowed for readability

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; the CLI's serve loop reports the interesting
        # events (submissions, completions) from the store instead.
        pass

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(self._health())
            elif parts == ["jobs"]:
                self._send_json(self._list_jobs(parse_qs(parsed.query)))
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.server.store.find(parts[1])
                self._send_json({"job": job.to_dict()})
            else:
                self._send_error(f"no route for GET {parsed.path}", 404)
        except UnknownJobError as exc:
            self._send_error(str(exc), 404)
        except AmbiguousJobError as exc:
            self._send_error(str(exc), 409)
        except ValueError as exc:
            self._send_error(str(exc), 400)

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if [part for part in parsed.path.split("/") if part] != ["jobs"]:
            self._send_error(f"no route for POST {parsed.path}", 404)
            return
        try:
            body = self._read_body()
            if not isinstance(body, dict):
                raise ValueError(
                    f"body must be a JSON object, got {type(body).__name__}"
                )
            request_payload = body.get("request", body)
            if not isinstance(request_payload, dict):
                raise ValueError("'request' must be a JSON object")
            request = ExperimentRequest.from_dict(request_payload)
            get_experiment(request.experiment)  # unknown names fail here
            job, deduped = self.server.scheduler.submit(
                request,
                priority=int(body.get("priority", 0)),
                max_retries=int(body.get("max_retries", 0)),
                source=body.get("source") or self.client_address[0],
            )
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            UnknownNameError,
            ValueError,
        ) as exc:
            self._send_error(f"bad submission: {exc}", 400)
            return
        self._send_json(
            {"job": job.to_dict(include_result=False), "deduped": deduped},
            status=200 if deduped else 201,
        )

    def do_DELETE(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if len(parts) != 2 or parts[0] != "jobs":
            self._send_error(f"no route for DELETE {parsed.path}", 404)
            return
        try:
            job = self.server.store.find(parts[1])
            job, cancelled = self.server.store.cancel(job.id)
        except UnknownJobError as exc:
            self._send_error(str(exc), 404)
            return
        except AmbiguousJobError as exc:
            self._send_error(str(exc), 409)
            return
        self._send_json(
            {"job": job.to_dict(include_result=False), "cancelled": cancelled}
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _health(self) -> dict[str, Any]:
        server = self.server
        return {
            "ok": True,
            "uptime_s": time.time() - server.started_at,
            "jobs": server.store.counts(),
            "scheduler": {
                "concurrency": server.scheduler.concurrency,
                "running": server.scheduler.running,
            },
        }

    def _list_jobs(self, query: dict[str, list[str]]) -> dict[str, Any]:
        state = query.get("state", [None])[0]
        experiment = query.get("experiment", [None])[0]
        limit = int(query.get("limit", ["200"])[0])
        jobs = self.server.store.list_jobs(
            state=state, experiment=experiment, limit=limit
        )
        return {"jobs": [job.to_dict(include_result=False) for job in jobs]}


__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ExperimentServer"]
