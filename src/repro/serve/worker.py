"""One lease-based worker process draining a shared :class:`JobStore`.

``repro worker --db serve.db`` is the execution half of the distributed
service: any number of these processes (on any machine that can reach the
SQLite file) lease jobs from one store, run them through the registered
pipelines, and heartbeat while they work.  The supervisor process
(``repro serve --fleet N``) owns the HTTP front end and spawns/respawns
workers, but workers are also usable bare — point several at one database
and they coordinate purely through the store's lease transactions.

Crash-recovery contract:

* A claim stamps ``worker_id`` + ``lease_expires_at`` on the job row; a
  background thread extends the lease every ``heartbeat_interval`` seconds
  (TTL/3 by default) for as long as the pipeline runs.
* If this process dies (SIGKILL, OOM, power loss), the lease stops being
  extended and lapses; the next reaper pass — every worker runs one
  periodically, as does the supervisor's scheduler — requeues the job, and
  a surviving worker re-executes it.
* If this process is merely *slow* and its lease is reaped out from under
  it, the owner guard on ``mark_done``/``mark_failed`` discards its late
  result: the job's outcome belongs to whoever holds the lease.

SIGTERM/SIGINT drain gracefully: the current job finishes, nothing new is
claimed, the worker deregisters and exits 0.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.api.request import ExperimentRequest, ExperimentResult, RunOptions
from repro.api.stages import DeadlineExceeded
from repro.faults import fault_point
from repro.obs import metrics, trace_context, trace_span
from repro.serve.scheduler import ExecuteFn, call_execute, plan_retry
from repro.serve.store import (
    DEFAULT_LEASE_TTL,
    DEFAULT_REQUEUE_CAP,
    JobStore,
    Job,
    default_worker_id,
)


def _default_execute(
    request: ExperimentRequest,
    options: RunOptions,
    on_stage: Callable[[str, float], None],
    deadline: float | None = None,
) -> ExperimentResult:
    from repro.api.registry import run_experiment

    return run_experiment(
        request, options=options, on_stage=on_stage, deadline=deadline
    )


class Worker:
    """A single claim-execute-heartbeat loop over one shared store.

    Parameters
    ----------
    store:
        The shared :class:`JobStore` (same database file as the service).
    options:
        :class:`RunOptions` each job executes with.
    worker_id:
        Lease identity; defaults to ``<host>:<pid>`` so the owning process
        is identifiable (and SIGKILL-able) from the job row alone.
    lease_ttl / heartbeat_interval:
        Lease duration and extension cadence (default TTL/3).  The TTL is
        the fleet's failure-detection latency: a dead worker's jobs requeue
        at most one TTL + one reap interval after its last heartbeat.
    poll_interval:
        Idle sleep between queue checks.
    reap:
        Whether this worker also reaps expired leases fleet-wide (on by
        default — any surviving worker rescues a dead one's jobs even
        without a supervisor).
    retry_base_delay / retry_max_delay:
        Backoff policy for failed executions (same as the scheduler's).
    quarantine_after:
        Crash-loop bound applied by this worker's reaper passes.
    execute:
        The execution callable, replaceable in tests.
    """

    def __init__(
        self,
        store: JobStore,
        options: RunOptions | None = None,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.5,
        reap: bool = True,
        retry_base_delay: float = 0.5,
        retry_max_delay: float = 60.0,
        quarantine_after: int = DEFAULT_REQUEUE_CAP,
        execute: ExecuteFn | None = None,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.quarantine_after = quarantine_after
        self.store = store
        self.options = options if options is not None else RunOptions()
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, lease_ttl / 3.0)
        )
        self.poll_interval = poll_interval
        self.reap = reap
        self.reap_interval = max(self.heartbeat_interval, lease_ttl / 2.0)
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self._execute = execute if execute is not None else _default_execute
        self._log = log if log is not None else (lambda message: None)
        self.jobs_executed = 0

    # ------------------------------------------------------------------
    def run(
        self,
        stop: threading.Event | None = None,
        max_jobs: int | None = None,
        idle_exit: float | None = None,
    ) -> int:
        """Drain the queue until stopped; returns jobs executed.

        ``max_jobs`` bounds the number of executions (testing / batch use);
        ``idle_exit`` exits after that many consecutive idle seconds.
        """
        stop = stop if stop is not None else threading.Event()
        self.store.register_worker(self.worker_id)
        self._log(f"worker {self.worker_id}: draining (lease_ttl={self.lease_ttl}s)")
        idle_since: float | None = None
        next_reap = time.monotonic()
        try:
            while not stop.is_set():
                if self.reap and time.monotonic() >= next_reap:
                    outcome = self.store.reap_expired(
                        quarantine_after=self.quarantine_after
                    )
                    for job_id in outcome.requeued:
                        self._log(
                            f"worker {self.worker_id}: requeued expired lease"
                            f" on job {job_id[:12]}"
                        )
                    for job_id in outcome.quarantined:
                        self._log(
                            f"worker {self.worker_id}: quarantined crash-"
                            f"looping job {job_id[:12]}"
                        )
                    next_reap = time.monotonic() + self.reap_interval
                job = self.store.claim_next(
                    worker_id=self.worker_id, lease_ttl=self.lease_ttl
                )
                if job is None:
                    now = time.monotonic()
                    idle_since = idle_since if idle_since is not None else now
                    if idle_exit is not None and now - idle_since >= idle_exit:
                        break
                    self.store.worker_heartbeat(self.worker_id)
                    stop.wait(self.poll_interval)
                    continue
                idle_since = None
                self._run_job(job, stop)
                self.jobs_executed += 1
                if max_jobs is not None and self.jobs_executed >= max_jobs:
                    break
        finally:
            self.store.deregister_worker(self.worker_id)
            self._log(
                f"worker {self.worker_id}: exiting after "
                f"{self.jobs_executed} job(s)"
            )
        return self.jobs_executed

    # ------------------------------------------------------------------
    def _run_job(self, job: Job, stop: threading.Event) -> None:
        # The whole claim-to-outcome arc runs under the job's trace context,
        # so every span (and JSON log line) this thread emits carries the
        # cross-process correlation ids.
        with trace_context(
            trace_id=job.trace_id, job_id=job.id, worker_id=self.worker_id
        ):
            self._run_job_traced(job, stop)

    def _run_job_traced(self, job: Job, stop: threading.Event) -> None:
        # An instantaneous claim marker, recorded (and spooled) *before*
        # execution starts: even a worker SIGKILL'd mid-job leaves proof in
        # the span store that it touched this trace.
        with trace_span(
            "worker.claim", experiment=job.experiment, execution=job.executions
        ):
            pass
        self._log(
            f"worker {self.worker_id}: claimed job {job.short_id}"
            f" [{job.experiment}] execution={job.executions}"
        )
        done = threading.Event()
        lease_lost = threading.Event()

        def _beat() -> None:
            while not done.wait(self.heartbeat_interval):
                now = time.time()
                if not self.store.heartbeat(
                    job.id, self.worker_id, lease_ttl=self.lease_ttl, now=now
                ):
                    lease_lost.set()
                    return
                self.store.worker_heartbeat(
                    self.worker_id, current_job=job.id, now=now
                )

        beater = threading.Thread(
            target=_beat, name=f"repro-worker-heartbeat-{job.short_id}", daemon=True
        )
        beater.start()

        def on_stage(stage: str, seconds: float) -> None:
            self.store.record_stage(job.id, stage, seconds)

        # ``started_at`` was stamped by the claim, so the deadline covers
        # execution only — queue wait does not eat a job's budget.
        deadline = (
            None
            if job.deadline_s is None or job.started_at is None
            else job.started_at + job.deadline_s
        )
        try:
            fault_point(
                "worker.claim",
                job=job.id,
                experiment=job.experiment,
                execution=job.executions,
            )
            with trace_span(
                "worker.execute",
                experiment=job.experiment,
                execution=job.executions,
            ):
                result = call_execute(
                    self._execute, job.request(), self.options, on_stage, deadline
                )
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            done.set()
            beater.join()
            self._record_failure(job, exc)
        except BaseException:
            # Interrupt mid-job (SIGTERM escalation): requeue immediately
            # rather than waiting out the lease.
            done.set()
            beater.join()
            self.store.mark_failed(
                job.id,
                "interrupted during worker shutdown",
                retry_at=time.time(),
                worker_id=self.worker_id,
            )
            raise
        else:
            done.set()
            beater.join()
            finished = self.store.mark_done(
                job.id, result, worker_id=self.worker_id
            )
            if lease_lost.is_set() or finished.worker_id != self.worker_id:
                # Reaped while we ran: the result was discarded by the owner
                # guard and the job belongs to another incarnation now.
                self._log(
                    f"worker {self.worker_id}: lost lease on job"
                    f" {job.short_id}; result discarded"
                )
            else:
                self.store.worker_finished(self.worker_id, ok=True)
                self._log(f"worker {self.worker_id}: job {job.short_id} done")

    def _record_failure(self, job: Job, exc: Exception) -> None:
        error = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, DeadlineExceeded):
            # Terminal regardless of retry budget: the same budget would be
            # blown again, wasting another worker-deadline of fleet time.
            metrics().counter("serve.deadline_exceeded").inc()
            self.store.mark_failed(job.id, error, worker_id=self.worker_id)
            self._log(
                f"worker {self.worker_id}: job {job.short_id} exceeded its"
                f" deadline ({error})"
            )
            self.store.worker_finished(self.worker_id, ok=False)
            return
        retry_at = plan_retry(job, self.retry_base_delay, self.retry_max_delay)
        if retry_at is not None:
            self.store.mark_failed(
                job.id, error, retry_at=retry_at, worker_id=self.worker_id
            )
            metrics().counter("serve.retries").inc()
            self._log(
                f"worker {self.worker_id}: job {job.short_id} failed"
                f" ({error}); retry scheduled"
            )
        else:
            self.store.mark_failed(job.id, error, worker_id=self.worker_id)
            self._log(
                f"worker {self.worker_id}: job {job.short_id} failed"
                f" terminally ({error})"
            )
        self.store.worker_finished(self.worker_id, ok=False)


__all__ = ["Worker"]
