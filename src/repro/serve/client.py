"""Small urllib client for the experiment job service.

The CLI verbs (``repro submit`` / ``status`` / ``cancel``) and tests talk to
a running ``repro serve`` through this class; it mirrors the HTTP API
one-to-one and stays dependency-free (``urllib.request`` only).  Server-side
errors surface as :class:`ServeError` carrying the HTTP status and the
server's ``{"error": ...}`` message; connection failures surface as
:class:`ServeUnavailableError` so callers can distinguish "service said no"
from "no service there"; a 503 from admission control surfaces as
:class:`ServeBusyError` carrying the server's ``Retry-After`` hint.

The client is deliberately tolerant of a *briefly* absent service:
:meth:`ServeClient.submit` retries refused admissions with jittered backoff,
and :meth:`ServeClient.wait` rides out transient outages (a supervisor
respawn, a front-end restart) within a bounded reconnect budget — a
``repro submit --wait`` must not die because the service blinked.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.api.request import ExperimentRequest
from repro.faults import InjectedFault, fault_point
from repro.obs import new_trace_id
from repro.serve.http_api import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.store import INACTIVE_STATES

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

#: How long :meth:`ServeClient.wait` keeps retrying through a service outage
#: before giving up (seconds of *continuous* unavailability).
DEFAULT_RECONNECT_BUDGET = 30.0


class ServeError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServeUnavailableError(ServeError):
    """No service reachable at the configured URL."""

    def __init__(self, url: str, reason: str) -> None:
        RuntimeError.__init__(
            self, f"cannot reach experiment service at {url}: {reason}"
        )
        self.status = 0
        self.message = reason


class ServeBusyError(ServeError):
    """Admission control refused the submission (503 + Retry-After)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(503, message)
        self.retry_after = retry_after


class ServeClient:
    """JSON-over-HTTP client bound to one service URL."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            # The injectable client-socket failure: the request never leaves
            # this process, exactly like a refused/reset connection.
            fault_point("client.request", method=method, path=path)
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type", "")
                if "json" not in content_type:
                    return {"text": body}
                return json.loads(body)
        except InjectedFault as exc:
            raise ServeUnavailableError(self.url, str(exc)) from None
        except urllib.error.HTTPError as exc:
            retry_after = exc.headers.get("Retry-After")
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = exc.reason
            if exc.code == 503 and retry_after is not None:
                raise ServeBusyError(
                    message or str(exc.reason), float(retry_after)
                ) from None
            raise ServeError(exc.code, message or str(exc.reason)) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            raise ServeUnavailableError(self.url, str(reason)) from None

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """The service's telemetry snapshot (``GET /stats``)."""
        return self._call("GET", "/stats")

    def metrics_text(self) -> str:
        """The Prometheus exposition text (``GET /metrics``)."""
        return self._call("GET", "/metrics")["text"]

    def events(
        self, job_id: str, since: int = 0, timeout: float = 25.0
    ) -> dict[str, Any]:
        """Long-poll one job's progress events past ``since``.

        Returns ``{"job", "state", "events", "next"}``; pass the returned
        ``next`` as the following call's ``since`` to stream without gaps.
        The socket timeout is derived from the poll timeout (plus a margin)
        per call, so a long poll >= the client's default timeout cannot be
        killed by its own socket while the server is still counting down.
        """
        io_timeout = max(self.timeout, timeout + 10.0)
        return self._call(
            "GET",
            f"/jobs/{job_id}/events?since={since}&timeout={timeout}",
            timeout=io_timeout,
        )

    def submit(
        self,
        request: ExperimentRequest | Mapping[str, Any],
        priority: int = 0,
        max_retries: int = 0,
        deadline_s: float | None = None,
        admission_retries: int = 5,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Submit a request; returns ``{"job": ..., "deduped": bool}``.

        A 503 from admission control is retried up to ``admission_retries``
        times, sleeping the server's ``Retry-After`` hint plus up to 25%
        jitter between attempts (jitter spreads a thundering herd of
        refused clients); the final refusal propagates as
        :class:`ServeBusyError`.  Set ``admission_retries=0`` to surface the
        first refusal immediately.

        A ``trace_id`` is generated client-side when not given — the trace
        is born at the submitter, so even client logs written before the
        response can correlate with the job's distributed trace.  (The
        authoritative id is the one on the returned job: a dedup attach
        keeps the existing job's trace.)
        """
        payload = (
            request.to_dict()
            if isinstance(request, ExperimentRequest)
            else dict(request)
        )
        body = {
            "request": payload,
            "priority": priority,
            "max_retries": max_retries,
            "trace_id": trace_id or new_trace_id(),
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        for attempt in range(admission_retries + 1):
            try:
                return self._call("POST", "/jobs", body)
            except ServeBusyError as exc:
                if attempt == admission_retries:
                    raise
                delay = exc.retry_after * (1.0 + random.random() * 0.25)
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def job(self, job_id: str) -> dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")["job"]

    def jobs(
        self,
        state: str | None = None,
        experiment: str | None = None,
        limit: int = 200,
    ) -> list[dict[str, Any]]:
        query = [f"limit={limit}"]
        if state:
            query.append(f"state={state}")
        if experiment:
            query.append(f"experiment={experiment}")
        return self._call("GET", "/jobs?" + "&".join(query))["jobs"]

    def trace(self, job_id: str) -> dict[str, Any]:
        """The job's merged Chrome/Perfetto trace (``GET /jobs/<id>/trace``)."""
        return self._call("GET", f"/jobs/{job_id}/trace")

    def metrics_history(
        self, limit: int = 120, since: float | None = None
    ) -> dict[str, Any]:
        """The persisted metrics time-series (``GET /metrics/history``)."""
        query = f"limit={limit}"
        if since is not None:
            query += f"&since={since}"
        return self._call("GET", f"/metrics/history?{query}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued job; returns ``{"job": ..., "cancelled": bool}``."""
        return self._call("DELETE", f"/jobs/{job_id}")

    def requeue(self, job_id: str) -> dict[str, Any]:
        """Release a quarantined/failed job back to the queue
        (``POST /jobs/<id>/requeue``); returns ``{"job", "requeued"}``."""
        return self._call("POST", f"/jobs/{job_id}/requeue", {})

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.25,
        reconnect_budget: float = DEFAULT_RECONNECT_BUDGET,
    ) -> dict[str, Any]:
        """Poll until the job is terminal or quarantined.

        Transient :class:`ServeUnavailableError`\\ s are absorbed for up to
        ``reconnect_budget`` seconds of *continuous* outage (a fleet
        supervisor respawning the front end must not kill a ``--wait``);
        the budget resets on every successful poll.  Raises
        ``TimeoutError`` past ``timeout`` and the last
        :class:`ServeUnavailableError` once the reconnect budget is spent.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        outage_since: float | None = None
        while True:
            try:
                job = self.job(job_id)
            except ServeUnavailableError:
                now = time.monotonic()
                outage_since = outage_since if outage_since is not None else now
                if now - outage_since >= reconnect_budget:
                    raise
            else:
                outage_since = None
                if job["state"] in INACTIVE_STATES:
                    return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]} not finished after {timeout}s"
                )
            time.sleep(poll)


__all__ = [
    "DEFAULT_RECONNECT_BUDGET",
    "DEFAULT_URL",
    "ServeBusyError",
    "ServeClient",
    "ServeError",
    "ServeUnavailableError",
]
