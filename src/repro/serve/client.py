"""Small urllib client for the experiment job service.

The CLI verbs (``repro submit`` / ``status`` / ``cancel``) and tests talk to
a running ``repro serve`` through this class; it mirrors the HTTP API
one-to-one and stays dependency-free (``urllib.request`` only).  Server-side
errors surface as :class:`ServeError` carrying the HTTP status and the
server's ``{"error": ...}`` message; connection failures surface as
:class:`ServeUnavailableError` so callers can distinguish "service said no"
from "no service there".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.api.request import ExperimentRequest
from repro.serve.http_api import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.store import TERMINAL_STATES

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class ServeError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServeUnavailableError(ServeError):
    """No service reachable at the configured URL."""

    def __init__(self, url: str, reason: str) -> None:
        RuntimeError.__init__(
            self, f"cannot reach experiment service at {url}: {reason}"
        )
        self.status = 0
        self.message = reason


class ServeClient:
    """JSON-over-HTTP client bound to one service URL."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _call(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type", "")
                if "json" not in content_type:
                    return {"text": body}
                return json.loads(body)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = exc.reason
            raise ServeError(exc.code, message or str(exc.reason)) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            raise ServeUnavailableError(self.url, str(reason)) from None

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """The service's telemetry snapshot (``GET /stats``)."""
        return self._call("GET", "/stats")

    def metrics_text(self) -> str:
        """The Prometheus exposition text (``GET /metrics``)."""
        return self._call("GET", "/metrics")["text"]

    def events(
        self, job_id: str, since: int = 0, timeout: float = 25.0
    ) -> dict[str, Any]:
        """Long-poll one job's progress events past ``since``.

        Returns ``{"job", "state", "events", "next"}``; pass the returned
        ``next`` as the following call's ``since`` to stream without gaps.
        """
        return self._call(
            "GET", f"/jobs/{job_id}/events?since={since}&timeout={timeout}"
        )

    def submit(
        self,
        request: ExperimentRequest | Mapping[str, Any],
        priority: int = 0,
        max_retries: int = 0,
    ) -> dict[str, Any]:
        """Submit a request; returns ``{"job": ..., "deduped": bool}``."""
        payload = (
            request.to_dict()
            if isinstance(request, ExperimentRequest)
            else dict(request)
        )
        return self._call(
            "POST",
            "/jobs",
            {"request": payload, "priority": priority, "max_retries": max_retries},
        )

    def job(self, job_id: str) -> dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")["job"]

    def jobs(
        self,
        state: str | None = None,
        experiment: str | None = None,
        limit: int = 200,
    ) -> list[dict[str, Any]]:
        query = [f"limit={limit}"]
        if state:
            query.append(f"state={state}")
        if experiment:
            query.append(f"experiment={experiment}")
        return self._call("GET", "/jobs?" + "&".join(query))["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued job; returns ``{"job": ..., "cancelled": bool}``."""
        return self._call("DELETE", f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.25
    ) -> dict[str, Any]:
        """Poll until the job is terminal; raises ``TimeoutError`` otherwise."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)


__all__ = ["DEFAULT_URL", "ServeClient", "ServeError", "ServeUnavailableError"]
