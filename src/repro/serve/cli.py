"""CLI verbs of the experiment job service: serve, worker, submit, status, stats, top, cancel.

Registered into the main ``python -m repro`` parser by
:func:`register_serve_commands`; the client-side verbs talk to a running
service through :class:`~repro.serve.client.ServeClient`.

Exit codes (``repro submit --wait`` is the scriptable one):

====  =========================================================
0     submitted (and, with ``--wait``, the job finished ``done``)
1     the job finished ``failed`` or ``cancelled``
2     bad arguments, unknown experiment, or no service reachable
124   ``--wait --timeout`` expired before the job finished
====  =========================================================
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import Any, Sequence

from repro.analytic.fidelity import DEFAULT_FIDELITY, FIDELITY_CHOICES

DEFAULT_DB = ".repro-cache/serve.db"


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------

def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent job service until SIGINT/SIGTERM, then drain."""
    import os

    from repro.api.request import RunOptions
    from repro.obs import set_trace_defaults
    from repro.obs.sink import ProcessTelemetry
    from repro.serve.http_api import ExperimentServer
    from repro.serve.scheduler import Scheduler
    from repro.serve.store import JobStore
    from repro.serve.supervisor import WorkerSupervisor
    from repro.utils.logging import service_log

    # Every span and JSON log line this process emits carries the front-end
    # identity; the telemetry agent spools spans + metrics beside the DB.
    frontend_id = f"serve:{os.getpid()}"
    set_trace_defaults(worker_id=frontend_id)
    telemetry = ProcessTelemetry(args.db, worker_id=frontend_id).start()

    store = JobStore(args.db)
    options = RunOptions(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    # With a worker fleet the supervisor process runs front-end only
    # (concurrency=0): execution belongs to the worker processes, the
    # scheduler still submits, reaps expired leases, and feeds events.
    concurrency = 0 if args.fleet else args.concurrency
    scheduler = Scheduler(
        store,
        options=options,
        concurrency=concurrency,
        retry_base_delay=args.retry_delay,
        lease_ttl=args.lease_ttl,
        quarantine_after=args.requeue_cap,
    )
    # Bind the port *before* recovery/worker startup: the port doubles as the
    # mutual-exclusion guard, so a second `repro serve` on the same DB dies
    # here without having requeued (and re-run) a live service's jobs.
    try:
        server = ExperimentServer(
            scheduler,
            host=args.host,
            port=args.port,
            max_queue_depth=args.max_queue,
        )
    except OSError as exc:
        store.close()
        telemetry.stop()
        set_trace_defaults(worker_id=None)
        print(
            f"error: cannot bind {args.host}:{args.port} ({exc}); "
            "is another repro serve already running?",
            file=sys.stderr,
        )
        return 2
    recovered = scheduler.start()

    supervisor = None
    if args.fleet:
        supervisor = WorkerSupervisor(
            db=args.db,
            count=args.fleet,
            lease_ttl=args.lease_ttl,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            job_workers=args.workers,
            quarantine_after=args.requeue_cap,
        )
        supervisor.start()
        server.supervisor = supervisor

    stop = threading.Event()

    def _request_shutdown(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    http_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    http_thread.start()
    execution = (
        f"fleet={args.fleet} worker process(es), lease_ttl={args.lease_ttl}s"
        if args.fleet
        else f"concurrency={args.concurrency}"
    )
    service_log(
        f"repro serve: listening on {server.url} "
        f"(db={args.db}, {execution}, "
        f"workers={args.workers or 'serial'})"
    )
    if recovered:
        service_log(
            f"recovered {recovered} interrupted job(s) back into the queue",
            recovered=recovered,
        )
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        service_log("repro serve: draining (running jobs finish, queue persists)")
        server.shutdown()
        server.server_close()
        drained = True
        if supervisor is not None:
            drained = supervisor.stop(timeout=args.drain_timeout)
        drained = scheduler.stop(timeout=args.drain_timeout) and drained
        if drained:
            # With a job still running past --drain-timeout, the store stays
            # open: the worker (a daemon thread) may yet persist its result,
            # and the job is requeued by crash recovery on the next start.
            store.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        telemetry.stop()
        # Drop the process-wide identity: in-process callers (tests, library
        # embedding) must not keep stamping spans as this service.
        set_trace_defaults(worker_id=None)
        service_log(
            "repro serve: drained cleanly"
            if drained
            else "repro serve: drain timed out with jobs still running"
        )
    return 0 if drained else 1


# ---------------------------------------------------------------------------
# repro worker
# ---------------------------------------------------------------------------

def cmd_worker(args: argparse.Namespace) -> int:
    """Run one lease-based worker process against a shared job store."""
    from repro.api.request import RunOptions
    from repro.obs import set_trace_defaults
    from repro.obs.sink import ProcessTelemetry
    from repro.serve.store import JobStore, default_worker_id
    from repro.serve.worker import Worker
    from repro.utils.logging import service_log

    worker_id = args.worker_id or default_worker_id()
    # Process-wide identity: spans recorded outside a job's trace context
    # (and JSON log lines) still carry this worker's id; the telemetry agent
    # spools every span into the per-DB obs directory.
    set_trace_defaults(worker_id=worker_id)
    telemetry = ProcessTelemetry(args.db, worker_id=worker_id).start()

    store = JobStore(args.db)
    options = RunOptions(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    worker = Worker(
        store,
        options=options,
        worker_id=worker_id,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        poll_interval=args.poll_interval,
        retry_base_delay=args.retry_delay,
        quarantine_after=args.requeue_cap,
        log=service_log,
    )

    stop = threading.Event()

    def _request_shutdown(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        worker.run(stop=stop, max_jobs=args.max_jobs, idle_exit=args.idle_exit)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        store.close()
        telemetry.stop()
        set_trace_defaults(worker_id=None)
    return 0


# ---------------------------------------------------------------------------
# repro submit
# ---------------------------------------------------------------------------

def cmd_submit(args: argparse.Namespace) -> int:
    from repro.cli import request_from_args
    from repro.serve.client import ServeClient, ServeError

    try:
        request = request_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(args.url)
    try:
        response = client.submit(
            request,
            priority=args.priority,
            max_retries=args.max_retries,
            deadline_s=args.deadline,
        )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    job = response["job"]
    how = (
        "deduped (attached to existing job)"
        if response["deduped"]
        else "queued (new job)"
    )
    print(
        f"job {job['id'][:12]} [{request.experiment}] {job['state']} — {how}; "
        f"submissions={job['submissions']} executions={job['executions']}"
    )
    if not args.wait:
        return 0
    try:
        job = client.wait(job["id"], timeout=args.timeout)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 124
    if job["state"] == "done":
        result = job.get("result") or {}
        summary = result.get("summary")
        if summary:
            print(summary)
        print(f"job {job['id'][:12]} done in {_elapsed(job)}")
        return 0
    print(
        f"job {job['id'][:12]} {job['state']}"
        + (f": {job['error']}" if job.get("error") else ""),
        file=sys.stderr,
    )
    return 1


def _elapsed(job: dict[str, Any]) -> str:
    started, finished = job.get("started_at"), job.get("finished_at")
    if started is None or finished is None:
        return "?"
    return f"{finished - started:.2f}s"


# ---------------------------------------------------------------------------
# repro status / cancel
# ---------------------------------------------------------------------------

def _format_job_line(job: dict[str, Any]) -> str:
    timings = job.get("timings") or {}
    stage = f" [{'/'.join(timings)}]" if timings and job["state"] == "running" else ""
    error = f" error={job['error']!r}" if job.get("error") else ""
    return (
        f"{job['id'][:12]}  {job['experiment']:<12} {job['state']:<9} "
        f"prio={job['priority']:<3} subs={job['submissions']} "
        f"execs={job['executions']}{stage}{error}"
    )


def cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        if args.job:
            job = client.job(args.job)
            if args.json:
                print(json.dumps(job, indent=2))
            else:
                print(_format_job_line(job))
                for stage, seconds in (job.get("timings") or {}).items():
                    print(f"  {stage:<10} {seconds:.3f}s")
                result = job.get("result") or {}
                if result.get("summary"):
                    print()
                    print(result["summary"])
            return 0
        health = client.health()
        jobs = client.jobs(state=args.state, limit=args.limit)
        if args.json:
            print(json.dumps({"health": health, "jobs": jobs}, indent=2))
            return 0
        counts = " ".join(
            f"{state}={n}" for state, n in health["jobs"].items() if n
        )
        print(
            f"service up {health['uptime_s']:.0f}s, "
            f"concurrency={health['scheduler']['concurrency']}: "
            f"{counts or 'no jobs'}"
        )
        for job in jobs:
            print(_format_job_line(job))
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _format_stats(
    stats: dict[str, Any],
    previous: dict[str, Any] | None = None,
    interval: float | None = None,
) -> str:
    """Human-readable rendering of the ``/stats`` snapshot.

    With a ``previous`` snapshot and the ``interval`` that separates the
    two, a ``rate:`` line shows per-second deltas of the job counters — so
    ``repro stats --watch`` reports what happened *this interval*, not just
    the monotonic totals.
    """
    from repro.serve.top import format_rates, job_rates

    lines = [
        f"service v{stats.get('version', '?')} up {stats.get('uptime_s', 0):.0f}s"
    ]
    queue = stats.get("queue") or {}
    lines.append(
        "queue: " + " ".join(f"{state}={n}" for state, n in queue.items())
    )
    jobs = stats.get("jobs") or {}
    lines.append(
        "jobs:  "
        + " ".join(f"{name}={value}" for name, value in jobs.items())
    )
    rates = job_rates(stats, previous, interval)
    if rates:
        lines.append("rate:  " + format_rates(rates))
    scheduler = stats.get("scheduler") or {}
    last = scheduler.get("last_dequeue_at")
    lines.append(
        f"sched: workers_alive={scheduler.get('workers_alive', '?')} "
        f"concurrency={scheduler.get('concurrency', '?')} "
        f"last_dequeue={'never' if last is None else f'{last:.0f}'}"
    )
    stages = stats.get("stages") or {}
    if stages:
        lines.append(f"{'stage':<10} {'count':>6} {'p50':>10} {'p95':>10}")
        for stage, info in stages.items():
            p50, p95 = info.get("p50"), info.get("p95")
            lines.append(
                f"{stage:<10} {info.get('count', 0):>6} "
                f"{p50 if p50 is None else f'{p50:.3f}s':>10} "
                f"{p95 if p95 is None else f'{p95:.3f}s':>10}"
            )
    caches = stats.get("caches") or {}
    for cache, info in caches.items():
        rate = info.get("hit_rate")
        lines.append(
            f"cache {cache}: hits={info.get('hits', 0)} "
            f"misses={info.get('misses', 0)} "
            f"hit_rate={'n/a' if rate is None else f'{rate:.0%}'}"
        )
    analytic = stats.get("analytic") or {}
    if analytic:
        error = analytic.get("validate_max_rel_error")
        lines.append(
            f"analytic: points_evaluated={analytic.get('points_evaluated', 0)} "
            f"validate_max_rel_error="
            f"{'n/a' if error is None else f'{error:.3e}'}"
        )
    return "\n".join(lines)


def cmd_stats(args: argparse.Namespace) -> int:
    """Show (or watch) a running service's telemetry snapshot."""
    import time as _time

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    previous: dict[str, Any] | None = None
    try:
        while True:
            stats = client.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
            else:
                print(_format_stats(stats, previous, args.interval))
            if not args.watch:
                return 0
            previous = stats
            _time.sleep(args.interval)
            print()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


# ---------------------------------------------------------------------------
# repro top
# ---------------------------------------------------------------------------

def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet dashboard: queue, rates, workers, stage latencies."""
    import time as _time

    from repro.serve.client import ServeClient, ServeError, ServeUnavailableError
    from repro.serve.top import ANSI_CLEAR, render_top

    client = ServeClient(args.url)
    previous: dict[str, Any] | None = None
    try:
        while True:
            try:
                stats = client.stats()
                health = client.health()
            except ServeUnavailableError as exc:
                if args.once:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                # The service blinking (restart, respawn) must not kill the
                # dashboard; show the outage and keep polling.
                print(f"{ANSI_CLEAR}repro top — {exc}", flush=True)
                _time.sleep(args.interval)
                continue
            frame = render_top(
                stats, health, previous, interval=args.interval
            )
            if args.once:
                print(frame)
                return 0
            print(f"{ANSI_CLEAR}{frame}", flush=True)
            previous = stats
            _time.sleep(args.interval)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        response = client.cancel(args.job)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    job = response["job"]
    if response["cancelled"]:
        print(f"job {job['id'][:12]} cancelled")
        return 0
    print(
        f"job {job['id'][:12]} is {job['state']} and was not cancelled "
        "(only queued jobs can be)",
        file=sys.stderr,
    )
    return 1


def cmd_requeue(args: argparse.Namespace) -> int:
    """Release a quarantined (or failed/cancelled) job back to the queue."""
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        response = client.requeue(args.job)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    job = response["job"]
    if response["requeued"]:
        print(
            f"job {job['id'][:12]} requeued "
            f"(crash-loop counter reset, retry budget fresh)"
        )
        return 0
    print(
        f"job {job['id'][:12]} is {job['state']} and was not requeued "
        "(only quarantined/failed/cancelled jobs can be)",
        file=sys.stderr,
    )
    return 1


# ---------------------------------------------------------------------------
# repro chaos
# ---------------------------------------------------------------------------

def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault-injection drill against a real worker fleet."""
    from repro.serve.chaos import run_chaos

    report = run_chaos(
        seed=args.seed,
        fleet=args.fleet,
        smoke=args.smoke,
        db=args.db,
        out=args.out,
        log=lambda message: print(message, flush=True),
    )
    return 0 if report["ok"] else 1


# ---------------------------------------------------------------------------
# Parser wiring
# ---------------------------------------------------------------------------

def register_serve_commands(
    sub: "argparse._SubParsersAction", default_cache_dir: str
) -> None:
    """Add the serve/submit/status/cancel subparsers to the main CLI."""
    from repro.serve.client import DEFAULT_URL
    from repro.serve.http_api import DEFAULT_HOST, DEFAULT_PORT
    from repro.serve.store import DEFAULT_REQUEUE_CAP

    serve = sub.add_parser(
        "serve", help="run the persistent experiment job service"
    )
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--db", default=DEFAULT_DB,
        help="SQLite job-store path (default: %(default)s)",
    )
    serve.add_argument(
        "--concurrency", type=int, default=1, metavar="N",
        help="jobs executed at once (default: %(default)s)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes per job's fan-out stages (default: serial)",
    )
    serve.add_argument(
        "--retry-delay", type=float, default=0.5, metavar="SECONDS",
        help="base delay of the exponential retry backoff (default: %(default)s)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="give up draining after this long (default: wait forever)",
    )
    serve.add_argument(
        "--cache-dir", default=default_cache_dir,
        help="persistent stage-cache directory (default: %(default)s)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent stage caches",
    )
    serve.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="spawn N `repro worker` processes and run front-end only "
             "(default: 0 — execute in-process with --concurrency threads)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="job-lease duration; a dead worker's jobs requeue after this "
             "long without heartbeats (default: %(default)s)",
    )
    serve.add_argument(
        "--requeue-cap", type=int, default=DEFAULT_REQUEUE_CAP, metavar="N",
        help="quarantine a job after its lease expires N+1 times "
             "(crash-loop guard; default: %(default)s)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="refuse new submissions (503 + Retry-After) once N jobs are "
             "queued (default: unbounded)",
    )
    serve.set_defaults(func=cmd_serve)

    worker = sub.add_parser(
        "worker", help="run one lease-based job worker process"
    )
    worker.add_argument(
        "--db", default=DEFAULT_DB,
        help="shared SQLite job-store path (default: %(default)s)",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="lease identity (default: <host>:<pid>)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="job-lease duration (default: %(default)s)",
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="lease-extension cadence (default: lease-ttl / 3)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="idle sleep between queue checks (default: %(default)s)",
    )
    worker.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes per job's fan-out stages (default: serial)",
    )
    worker.add_argument(
        "--retry-delay", type=float, default=0.5, metavar="SECONDS",
        help="base delay of the exponential retry backoff (default: %(default)s)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after executing N jobs (default: run until signalled)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long with an empty queue (default: never)",
    )
    worker.add_argument(
        "--cache-dir", default=default_cache_dir,
        help="persistent stage-cache directory (default: %(default)s)",
    )
    worker.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent stage caches",
    )
    worker.add_argument(
        "--requeue-cap", type=int, default=DEFAULT_REQUEUE_CAP, metavar="N",
        help="quarantine a job after its lease expires N+1 times "
             "(crash-loop guard; default: %(default)s)",
    )
    worker.set_defaults(func=cmd_worker)

    submit = sub.add_parser(
        "submit", help="submit an experiment to a running service"
    )
    submit.add_argument("experiment", help="registered experiment name")
    submit.add_argument(
        "--workloads", default=None,
        help="comma-separated <model>/<dataset> pairs (default: the experiment's grid)",
    )
    submit.add_argument("--pruning-rate", type=float, default=0.9)
    submit.add_argument(
        "--scale", choices=("quick", "thorough", "smoke"), default="quick"
    )
    submit.add_argument(
        "--smoke", action="store_true", help="shorthand for --scale smoke"
    )
    submit.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="experiment-specific parameter (JSON values accepted; repeatable)",
    )
    submit.add_argument(
        "--fidelity", choices=FIDELITY_CHOICES, default=DEFAULT_FIDELITY.value,
        help="cost-model tier (content-hash-affecting: tiers dedup separately)",
    )
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--max-retries", type=int, default=0,
        help="failed executions retried with exponential backoff",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes; exit 0 done / 1 failed",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="--wait deadline (default: wait forever)",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-execution wall-clock budget; the job fails with "
             "DeadlineExceeded at the next stage boundary past it "
             "(default: none)",
    )
    submit.add_argument("--url", default=DEFAULT_URL, help="service URL")
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status", help="show service health and job states"
    )
    status.add_argument(
        "job", nargs="?", default=None,
        help="job id (or unique prefix) for a detailed view",
    )
    status.add_argument(
        "--state", default=None,
        help="filter the listing by state (queued/running/done/failed/cancelled)",
    )
    status.add_argument("--limit", type=int, default=20)
    status.add_argument("--json", action="store_true")
    status.add_argument("--url", default=DEFAULT_URL, help="service URL")
    status.set_defaults(func=cmd_status)

    stats = sub.add_parser(
        "stats", help="show a running service's telemetry snapshot"
    )
    stats.add_argument(
        "--watch", action="store_true", help="refresh continuously until Ctrl-C"
    )
    stats.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="--watch refresh interval (default: %(default)s)",
    )
    stats.add_argument("--json", action="store_true", help="print the raw snapshot")
    stats.add_argument("--url", default=DEFAULT_URL, help="service URL")
    stats.set_defaults(func=cmd_stats)

    top = sub.add_parser(
        "top", help="live fleet dashboard (queue, rates, workers, latencies)"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default: %(default)s)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (no screen clearing; scriptable)",
    )
    top.add_argument("--url", default=DEFAULT_URL, help="service URL")
    top.set_defaults(func=cmd_top)

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job", help="job id (or unique prefix)")
    cancel.add_argument("--url", default=DEFAULT_URL, help="service URL")
    cancel.set_defaults(func=cmd_cancel)

    requeue = sub.add_parser(
        "requeue",
        help="release a quarantined job back to the queue",
    )
    requeue.add_argument("job", help="job id (or unique prefix)")
    requeue.add_argument("--url", default=DEFAULT_URL, help="service URL")
    requeue.set_defaults(func=cmd_requeue)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection drill: run a seeded fault plan against a "
             "real worker fleet and check the service's invariants",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="small fast plan suitable for CI (fewer jobs, short timeouts)",
    )
    chaos.add_argument(
        "--fleet", type=int, default=2, metavar="N",
        help="worker processes to run the drill against (default: %(default)s)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed — same seed, same faults (default: %(default)s)",
    )
    chaos.add_argument(
        "--db", default=None, metavar="PATH",
        help="job-store path for the drill (default: a fresh temp file)",
    )
    chaos.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON chaos report here (default: stdout only)",
    )
    chaos.set_defaults(func=cmd_chaos)


__all__ = [
    "DEFAULT_DB",
    "cmd_cancel",
    "cmd_chaos",
    "cmd_requeue",
    "cmd_serve",
    "cmd_stats",
    "cmd_status",
    "cmd_submit",
    "cmd_top",
    "cmd_worker",
    "register_serve_commands",
]
