"""The job scheduler: drain the queue through the shared pipeline runner.

A :class:`Scheduler` owns a :class:`~repro.serve.store.JobStore` and a small
team of worker threads.  Each worker atomically claims the next due job
(priority first, FIFO within a priority, retry-backoff gates respected),
executes it through :func:`repro.api.run_experiment` — i.e. through the
exact registered pipeline the CLI runs, including the shared
:class:`~repro.api.Runner` process-pool fan-out and the persistent density /
sweep disk caches, so a job whose stages were computed before short-circuits
to cached artifacts — and persists the outcome.

What the scheduler guarantees:

* **hash-level dedup** — submission goes through the store's content-hash
  key; an identical in-flight or completed request never executes twice
  (see :meth:`JobStore.submit`).
* **retry with exponential backoff** — a failed execution requeues the job
  gated behind ``retry_base_delay * 2**(execution-1)`` seconds until the
  job's retry budget (``max_retries``) is spent, then fails terminally.
* **graceful drain** — :meth:`Scheduler.stop` lets every claimed job finish
  (pipelines are not interrupted mid-stage), then joins the workers; jobs
  still queued stay queued in the store and survive to the next start.
  Combined with :meth:`JobStore.recover` on startup, a SIGKILL'd service
  loses no work either — ``running`` rows are requeued.
* **live progress** — each completed pipeline stage is streamed into the job
  row through the :class:`~repro.api.PipelineContext` ``on_stage`` hook.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.api.request import ExperimentRequest, ExperimentResult, RunOptions
from repro.obs import metrics
from repro.serve.store import TERMINAL_STATES, Job, JobStore

# Execution callable signature: (request, options, on_stage) -> result.
ExecuteFn = Callable[
    [ExperimentRequest, RunOptions, Callable[[str, float], None]],
    ExperimentResult,
]


class JobEvents:
    """In-memory per-job progress event log with long-poll support.

    Fed by the scheduler as jobs start, complete stages (the pipeline's
    ``on_stage`` hook) and finish; drained by ``GET /jobs/<id>/events``.
    Events are monotonically sequence-numbered per job, so a client resumes
    with ``since=<last seen seq>`` and never misses or re-reads one.  The log
    is bounded per job and process-local — it is a live progress feed, not a
    durable record (the store's ``timings`` column is the persistent part).
    """

    def __init__(self, per_job_limit: int = 512) -> None:
        self.per_job_limit = per_job_limit
        self._events: dict[str, list[dict[str, Any]]] = {}
        self._cond = threading.Condition()

    def emit(self, job_id: str, event: str, **data: Any) -> dict[str, Any]:
        """Append one event and wake every long-poll waiter."""
        with self._cond:
            log = self._events.setdefault(job_id, [])
            seq = (log[-1]["seq"] + 1) if log else 1
            entry = {"seq": seq, "ts": time.time(), "event": event, **data}
            log.append(entry)
            if len(log) > self.per_job_limit:
                del log[: len(log) - self.per_job_limit]
            self._cond.notify_all()
        return entry

    def since(self, job_id: str, since: int = 0) -> list[dict[str, Any]]:
        """Events for ``job_id`` with ``seq > since`` (no waiting)."""
        with self._cond:
            return [e for e in self._events.get(job_id, []) if e["seq"] > since]

    def wait(
        self, job_id: str, since: int = 0, timeout: float = 30.0
    ) -> list[dict[str, Any]]:
        """Long-poll: block until events past ``since`` exist or ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                fresh = [
                    e for e in self._events.get(job_id, []) if e["seq"] > since
                ]
                if fresh:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def forget(self, job_id: str) -> None:
        with self._cond:
            self._events.pop(job_id, None)


def _default_execute(
    request: ExperimentRequest,
    options: RunOptions,
    on_stage: Callable[[str, float], None],
) -> ExperimentResult:
    from repro.api.registry import run_experiment

    return run_experiment(request, options=options, on_stage=on_stage)


class Scheduler:
    """Concurrency-bounded queue drainer over a :class:`JobStore`.

    Parameters
    ----------
    store:
        The persistent job store (shared with the HTTP API).
    options:
        The :class:`RunOptions` every job executes with — worker-pool size
        for fan-out stages and the disk-cache location the pipelines
        short-circuit to.
    concurrency:
        How many jobs run at once (worker threads; each job may additionally
        fan out over worker *processes* through its pipeline's Runner).
    retry_base_delay / retry_max_delay:
        Exponential-backoff parameters for failed executions.
    poll_interval:
        How long an idle worker sleeps between queue checks; submissions
        wake the workers immediately, so this only bounds retry-gate latency.
    execute:
        The execution callable, replaceable in tests.
    """

    def __init__(
        self,
        store: JobStore,
        options: RunOptions | None = None,
        concurrency: int = 1,
        retry_base_delay: float = 0.5,
        retry_max_delay: float = 60.0,
        poll_interval: float = 0.2,
        execute: ExecuteFn | None = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.store = store
        self.options = options if options is not None else RunOptions()
        self.concurrency = concurrency
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.poll_interval = poll_interval
        self._execute = execute if execute is not None else _default_execute
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._wake = threading.Condition()
        self._started = False
        self.events = JobEvents()
        self.last_dequeue_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Recover interrupted jobs and start the worker threads.

        Returns the number of jobs requeued by crash recovery.
        """
        if self._started:
            raise RuntimeError("scheduler already started")
        recovered = self.store.recover()
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}", daemon=True
            )
            for i in range(self.concurrency)
        ]
        for thread in self._threads:
            thread.start()
        self._started = True
        return recovered

    def stop(self, timeout: float | None = None) -> bool:
        """Graceful drain: finish claimed jobs, keep the rest queued.

        Returns ``True`` when every worker joined within ``timeout``.
        """
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            drained = drained and not thread.is_alive()
        if drained:
            self._threads = []
            self._started = False
        return drained

    @property
    def running(self) -> bool:
        return self._started and any(t.is_alive() for t in self._threads)

    @property
    def workers_alive(self) -> int:
        """How many worker threads are currently alive (liveness probe)."""
        return sum(1 for t in self._threads if t.is_alive())

    # ------------------------------------------------------------------
    # Submission / waiting
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ExperimentRequest,
        priority: int = 0,
        max_retries: int | None = None,
        source: str | None = None,
    ) -> tuple[Job, bool]:
        """Submit through the store's dedup seam and wake a worker."""
        job, deduped = self.store.submit(
            request,
            priority=priority,
            max_retries=0 if max_retries is None else max_retries,
            source=source,
        )
        with self._wake:
            self._wake.notify_all()
        return job, deduped

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.05
    ) -> Job:
        """Block until the job reaches a terminal state (or ``timeout``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.store.get(job_id)
            if job.state in TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job.short_id} still {job.state} after {timeout}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.store.claim_next()
            if job is None:
                with self._wake:
                    if not self._stop.is_set():
                        self._wake.wait(self.poll_interval)
                continue
            self.last_dequeue_at = time.time()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        def on_stage(stage: str, seconds: float) -> None:
            self.store.record_stage(job.id, stage, seconds)
            self.events.emit(job.id, "stage", stage=stage, seconds=seconds)

        self.events.emit(
            job.id, "started", execution=job.executions, experiment=job.experiment
        )
        try:
            result = self._execute(job.request(), self.options, on_stage)
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            self._record_failure(job, exc)
        except BaseException:
            # Interrupt during drain: put the job back so the next start
            # (or the crash-recovery pass) re-runs it, then unwind.
            self.store.mark_failed(
                job.id, "interrupted during shutdown", retry_at=time.time()
            )
            self.events.emit(job.id, "interrupted")
            raise
        else:
            self.store.mark_done(job.id, result)
            self.events.emit(job.id, "done")

    def _record_failure(self, job: Job, exc: Exception) -> None:
        error = f"{type(exc).__name__}: {exc}"
        # ``claim_next`` already counted this execution; the budget is scoped
        # to the current incarnation (a resubmitted failed job retries with a
        # fresh budget, not one depleted by its history).
        attempts = job.executions_this_incarnation
        if attempts <= job.max_retries:
            delay = min(
                self.retry_max_delay,
                self.retry_base_delay * (2 ** (attempts - 1)),
            )
            self.store.mark_failed(job.id, error, retry_at=time.time() + delay)
            metrics().counter("serve.retries").inc()
            self.events.emit(
                job.id, "retry_scheduled", error=error, delay=delay
            )
        else:
            self.store.mark_failed(job.id, error)
            self.events.emit(job.id, "failed", error=error)


__all__ = ["ExecuteFn", "JobEvents", "Scheduler"]
