"""The job scheduler: drain the queue through the shared pipeline runner.

A :class:`Scheduler` owns a :class:`~repro.serve.store.JobStore` and a small
team of worker threads.  Each worker atomically *leases* the next due job
(priority first, FIFO within a priority, retry-backoff gates respected),
executes it through :func:`repro.api.run_experiment` — i.e. through the
exact registered pipeline the CLI runs, including the shared
:class:`~repro.api.Runner` process-pool fan-out and the persistent density /
sweep disk caches, so a job whose stages were computed before short-circuits
to cached artifacts — and persists the outcome.

What the scheduler guarantees:

* **hash-level dedup** — submission goes through the store's content-hash
  key; an identical in-flight or completed request never executes twice
  (see :meth:`JobStore.submit`).
* **retry with exponential backoff** — a failed execution requeues the job
  gated behind ``retry_base_delay * 2**(execution-1)`` seconds until the
  job's retry budget (``max_retries``) is spent, then fails terminally.
* **lease liveness** — a background *keeper* thread heartbeats every
  in-flight lease well inside its TTL and periodically reaps expired
  leases fleet-wide, so jobs leased by a SIGKILL'd worker **process**
  (this one or any `repro worker` sharing the store) requeue without
  operator intervention.
* **graceful drain** — :meth:`Scheduler.stop` lets every claimed job finish
  (pipelines are not interrupted mid-stage), then joins the workers; jobs
  still queued stay queued in the store and survive to the next start.
* **live progress** — each completed pipeline stage is streamed into the job
  row through the :class:`~repro.api.PipelineContext` ``on_stage`` hook, and
  into the process-local :class:`JobEvents` long-poll feed.

With ``concurrency=0`` the scheduler runs *front-end only*: it submits,
reaps, and serves events, while execution belongs entirely to external
worker processes (the ``repro serve --fleet N`` topology).
"""

from __future__ import annotations

import inspect
import os
import socket
import threading
import time
from typing import Any, Callable

from repro.api.request import ExperimentRequest, ExperimentResult, RunOptions
from repro.api.stages import DeadlineExceeded
from repro.faults import fault_point
from repro.obs import metrics, trace_context, trace_span
from repro.serve.store import (
    DEFAULT_LEASE_TTL,
    DEFAULT_REQUEUE_CAP,
    INACTIVE_STATES,
    Job,
    JobStore,
)

# Execution callable signature: (request, options, on_stage) -> result.
# Implementations may accept an optional fourth positional argument — the
# absolute epoch-seconds ``deadline`` — which :func:`call_execute` passes
# only when the callable's signature takes it, so three-argument test
# doubles keep working unchanged.
ExecuteFn = Callable[
    [ExperimentRequest, RunOptions, Callable[[str, float], None]],
    ExperimentResult,
]


def _deadline_style(execute: Callable[..., Any]) -> str | None:
    """How ``execute`` takes a deadline: "positional", "keyword", or None."""
    try:
        parameters = inspect.signature(execute).parameters.values()
    except (TypeError, ValueError):  # builtins/C callables: assume modern
        return "positional"
    positional = [
        p
        for p in parameters
        if p.kind
        in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
    ]
    if any(p.kind == p.VAR_POSITIONAL for p in positional):
        return "positional"
    if len(positional) >= 4:
        return "positional"
    if "deadline" in {
        p.name for p in parameters if p.kind == p.KEYWORD_ONLY
    }:
        return "keyword"
    return None


def _accepts_deadline(execute: Callable[..., Any]) -> bool:
    return _deadline_style(execute) is not None


def call_execute(
    execute: Callable[..., Any],
    request: ExperimentRequest,
    options: RunOptions,
    on_stage: Callable[[str, float], None],
    deadline: float | None,
) -> ExperimentResult:
    """Invoke an :data:`ExecuteFn`, passing ``deadline`` only if accepted."""
    if deadline is not None:
        style = _deadline_style(execute)
        if style == "positional":
            return execute(request, options, on_stage, deadline)
        if style == "keyword":
            return execute(request, options, on_stage, deadline=deadline)
    return execute(request, options, on_stage)


def plan_retry(
    job: Job,
    base_delay: float,
    max_delay: float,
    now: float | None = None,
) -> float | None:
    """The requeue-at timestamp for a failed execution, or ``None``.

    ``None`` means the retry budget of the job's current incarnation is
    spent and the failure is terminal.  Shared by the in-process scheduler
    and the standalone :class:`~repro.serve.worker.Worker` so both halves of
    the fleet apply identical backoff policy.
    """
    attempts = job.executions_this_incarnation
    if attempts > job.max_retries:
        return None
    delay = min(max_delay, base_delay * (2 ** (attempts - 1)))
    return (time.time() if now is None else now) + delay


class JobEvents:
    """In-memory per-job progress event log with long-poll support.

    Fed by the scheduler as jobs start, complete stages (the pipeline's
    ``on_stage`` hook) and finish; drained by ``GET /jobs/<id>/events``.
    Events are monotonically sequence-numbered per job, so a client resumes
    with ``since=<last seen seq>`` and never misses or re-reads one.  The log
    is bounded three ways — per job (a ring of ``per_job_limit`` events),
    per process (at most ``max_jobs`` tracked jobs, oldest evicted first),
    and in time (a job marked terminal is forgotten ``terminal_grace``
    seconds later, leaving late long-pollers a window to read the final
    event) — so a long-lived service never accumulates logs without bound.
    It is a live progress feed, not a durable record (the store's
    ``timings`` column is the persistent part).
    """

    def __init__(
        self,
        per_job_limit: int = 512,
        max_jobs: int = 1024,
        terminal_grace: float = 60.0,
    ) -> None:
        self.per_job_limit = per_job_limit
        self.max_jobs = max_jobs
        self.terminal_grace = terminal_grace
        self._events: dict[str, list[dict[str, Any]]] = {}
        self._terminal: dict[str, float] = {}
        self._cond = threading.Condition()

    def emit(self, job_id: str, event: str, **data: Any) -> dict[str, Any]:
        """Append one event and wake every long-poll waiter."""
        with self._cond:
            self._purge_locked(time.time())
            log = self._events.setdefault(job_id, [])
            seq = (log[-1]["seq"] + 1) if log else 1
            entry = {"seq": seq, "ts": time.time(), "event": event, **data}
            log.append(entry)
            if len(log) > self.per_job_limit:
                del log[: len(log) - self.per_job_limit]
            self._cond.notify_all()
        return entry

    def mark_terminal(self, job_id: str, now: float | None = None) -> None:
        """Start the eviction grace clock for a finished job's log."""
        with self._cond:
            if job_id in self._events:
                self._terminal[job_id] = time.time() if now is None else now

    def _purge_locked(self, now: float) -> None:
        expired = [
            job_id
            for job_id, at in self._terminal.items()
            if at + self.terminal_grace <= now
        ]
        for job_id in expired:
            del self._terminal[job_id]
            self._events.pop(job_id, None)
        if len(self._events) <= self.max_jobs:
            return
        # Over the cap even after the grace sweep: evict oldest logs,
        # terminal ones first (their readers had their window).
        overflow = len(self._events) - self.max_jobs
        doomed = [j for j in self._events if j in self._terminal][:overflow]
        remaining = overflow - len(doomed)
        if remaining > 0:
            doomed += [j for j in self._events if j not in self._terminal][
                :remaining
            ]
        for job_id in doomed:
            self._events.pop(job_id, None)
            self._terminal.pop(job_id, None)

    @property
    def tracked_jobs(self) -> int:
        with self._cond:
            return len(self._events)

    def since(self, job_id: str, since: int = 0) -> list[dict[str, Any]]:
        """Events for ``job_id`` with ``seq > since`` (no waiting)."""
        with self._cond:
            return [e for e in self._events.get(job_id, []) if e["seq"] > since]

    def wait(
        self, job_id: str, since: int = 0, timeout: float = 30.0
    ) -> list[dict[str, Any]]:
        """Long-poll: block until events past ``since`` exist or ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                fresh = [
                    e for e in self._events.get(job_id, []) if e["seq"] > since
                ]
                if fresh:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def forget(self, job_id: str) -> None:
        with self._cond:
            self._events.pop(job_id, None)
            self._terminal.pop(job_id, None)


def _default_execute(
    request: ExperimentRequest,
    options: RunOptions,
    on_stage: Callable[[str, float], None],
    deadline: float | None = None,
) -> ExperimentResult:
    from repro.api.registry import run_experiment

    return run_experiment(
        request, options=options, on_stage=on_stage, deadline=deadline
    )


class Scheduler:
    """Concurrency-bounded queue drainer over a :class:`JobStore`.

    Parameters
    ----------
    store:
        The persistent job store (shared with the HTTP API and any external
        ``repro worker`` processes).
    options:
        The :class:`RunOptions` every job executes with — worker-pool size
        for fan-out stages and the disk-cache location the pipelines
        short-circuit to.
    concurrency:
        How many jobs run at once (worker threads; each job may additionally
        fan out over worker *processes* through its pipeline's Runner).
        ``0`` runs no local execution at all — submissions, the reaper, and
        the events feed still work, execution is left to external workers.
    retry_base_delay / retry_max_delay:
        Exponential-backoff parameters for failed executions.
    poll_interval:
        How long an idle worker sleeps between queue checks; submissions
        wake the workers immediately, so this only bounds retry-gate latency.
    lease_ttl / heartbeat_interval:
        Lease duration stamped on claims and how often the keeper thread
        extends in-flight leases (default: a third of the TTL).  Expired
        leases anywhere in the fleet are reaped every ``lease_ttl / 2``.
    quarantine_after:
        The crash-loop bound the reaper applies: a job whose lease expired
        this many times is quarantined instead of requeued.
    execute:
        The execution callable, replaceable in tests.
    """

    def __init__(
        self,
        store: JobStore,
        options: RunOptions | None = None,
        concurrency: int = 1,
        retry_base_delay: float = 0.5,
        retry_max_delay: float = 60.0,
        poll_interval: float = 0.2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: float | None = None,
        quarantine_after: int = DEFAULT_REQUEUE_CAP,
        execute: ExecuteFn | None = None,
    ) -> None:
        if concurrency < 0:
            raise ValueError(f"concurrency must be >= 0, got {concurrency}")
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        self.store = store
        self.options = options if options is not None else RunOptions()
        self.concurrency = concurrency
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.poll_interval = poll_interval
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, lease_ttl / 3.0)
        )
        self.reap_interval = max(self.heartbeat_interval, lease_ttl / 2.0)
        self._execute = execute if execute is not None else _default_execute
        self._threads: list[threading.Thread] = []
        self._keeper: threading.Thread | None = None
        self._stop = threading.Event()
        self._wake = threading.Condition()
        self._started = False
        self.events = JobEvents()
        self.worker_id_base = f"{socket.gethostname()}:{os.getpid()}"
        # Per-worker liveness, guarded by its own lock (worker threads write
        # concurrently — the old single unsynchronized ``last_dequeue_at``
        # scalar raced here).
        self._state_lock = threading.Lock()
        self._worker_state: dict[str, dict[str, Any]] = {}
        # In-flight leases the keeper thread must heartbeat.
        self._inflight: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Recover interrupted jobs and start the worker + keeper threads.

        Returns the number of jobs requeued by crash recovery (expired or
        missing leases only — jobs leased by live external workers are not
        touched).
        """
        if self._started:
            raise RuntimeError("scheduler already started")
        recovered = self.store.recover(quarantine_after=self.quarantine_after)
        self._stop.clear()
        self._threads = []
        with self._state_lock:
            self._worker_state = {}
        for index in range(self.concurrency):
            worker_id = f"{self.worker_id_base}:t{index}"
            with self._state_lock:
                self._worker_state[worker_id] = {
                    "last_dequeue_at": None,
                    "current_job": None,
                    "jobs_done": 0,
                }
            self.store.register_worker(worker_id)
            self._threads.append(
                threading.Thread(
                    target=self._worker_loop,
                    args=(worker_id,),
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()
        self._keeper = threading.Thread(
            target=self._keeper_loop, name="repro-serve-keeper", daemon=True
        )
        self._keeper.start()
        self._started = True
        return recovered

    def stop(self, timeout: float | None = None) -> bool:
        """Graceful drain: finish claimed jobs, keep the rest queued.

        Returns ``True`` when every worker joined within ``timeout``.
        """
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            drained = drained and not thread.is_alive()
        if self._keeper is not None:
            self._keeper.join(
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
        if drained:
            with self._state_lock:
                worker_ids = list(self._worker_state)
            for worker_id in worker_ids:
                self.store.deregister_worker(worker_id)
            self._threads = []
            self._keeper = None
            self._started = False
        return drained

    @property
    def running(self) -> bool:
        if not self._started:
            return False
        if not self._threads:  # front-end-only mode: alive once started
            return True
        return any(t.is_alive() for t in self._threads)

    @property
    def workers_alive(self) -> int:
        """How many worker threads are currently alive (liveness probe)."""
        return sum(1 for t in self._threads if t.is_alive())

    @property
    def last_dequeue_at(self) -> float | None:
        """The most recent claim across all worker threads."""
        with self._state_lock:
            stamps = [
                state["last_dequeue_at"]
                for state in self._worker_state.values()
                if state["last_dequeue_at"] is not None
            ]
        return max(stamps) if stamps else None

    def worker_liveness(self) -> dict[str, dict[str, Any]]:
        """Per-worker-thread liveness: last dequeue, current job, tallies."""
        with self._state_lock:
            return {
                worker_id: dict(state)
                for worker_id, state in self._worker_state.items()
            }

    # ------------------------------------------------------------------
    # Submission / waiting / cancellation
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ExperimentRequest,
        priority: int = 0,
        max_retries: int | None = None,
        source: str | None = None,
        deadline_s: float | None = None,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Submit through the store's dedup seam and wake a worker."""
        job, deduped = self.store.submit(
            request,
            priority=priority,
            max_retries=0 if max_retries is None else max_retries,
            source=source,
            deadline_s=deadline_s,
            trace_id=trace_id,
        )
        with self._wake:
            self._wake.notify_all()
        return job, deduped

    def requeue(self, job_id: str) -> tuple[Job, bool]:
        """The quarantine escape hatch: release a resting job and wake a
        worker; the events feed learns about the transition immediately."""
        job, requeued = self.store.requeue(job_id)
        if requeued:
            self.events.emit(job.id, "requeued", reason="manual")
            with self._wake:
                self._wake.notify_all()
        return job, requeued

    def cancel(self, job_id: str) -> tuple[Job, bool]:
        """Cancel a queued job *and* tell the events feed about it.

        Routing cancellation through the scheduler (instead of straight at
        the store) is what lets a ``/jobs/<id>/events`` long-poller learn the
        job is terminal immediately instead of blocking out its timeout.
        """
        job, cancelled = self.store.cancel(job_id)
        if cancelled:
            self.events.emit(job.id, "cancelled")
            self.events.mark_terminal(job.id)
        return job, cancelled

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.05
    ) -> Job:
        """Block until the job is terminal or quarantined (or ``timeout``).

        Quarantine counts as an answer: the job will not run again without
        operator intervention, so a waiter must not block out its timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.store.get(job_id)
            if job.state in INACTIVE_STATES:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job.short_id} still {job.state} after {timeout}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            job = self.store.claim_next(
                worker_id=worker_id, lease_ttl=self.lease_ttl
            )
            if job is None:
                with self._wake:
                    if not self._stop.is_set():
                        self._wake.wait(self.poll_interval)
                continue
            with self._state_lock:
                state = self._worker_state[worker_id]
                state["last_dequeue_at"] = time.time()
                state["current_job"] = job.id
                self._inflight[worker_id] = job.id
            try:
                self._run_job(job, worker_id)
            finally:
                with self._state_lock:
                    self._inflight.pop(worker_id, None)
                    state = self._worker_state[worker_id]
                    state["current_job"] = None
                    state["jobs_done"] += 1

    def _keeper_loop(self) -> None:
        """Heartbeat in-flight leases; reap expired leases fleet-wide."""
        next_reap = time.monotonic() + self.reap_interval
        while not self._stop.wait(self.heartbeat_interval):
            now = time.time()
            with self._state_lock:
                inflight = dict(self._inflight)
                worker_ids = list(self._worker_state)
            for worker_id, job_id in inflight.items():
                self.store.heartbeat(
                    job_id, worker_id, lease_ttl=self.lease_ttl, now=now
                )
            for worker_id in worker_ids:
                self.store.worker_heartbeat(
                    worker_id, current_job=inflight.get(worker_id), now=now
                )
            if time.monotonic() >= next_reap:
                outcome = self.store.reap_expired(
                    now=now, quarantine_after=self.quarantine_after
                )
                for job_id in outcome.requeued:
                    self.events.emit(job_id, "requeued", reason="lease expired")
                for job_id in outcome.quarantined:
                    self.events.emit(
                        job_id,
                        "quarantined",
                        reason=(
                            f"lease expired more than {self.quarantine_after}"
                            " times (crash loop?)"
                        ),
                    )
                    self.events.mark_terminal(job_id)
                next_reap = time.monotonic() + self.reap_interval

    def _run_job(self, job: Job, worker_id: str) -> None:
        def on_stage(stage: str, seconds: float) -> None:
            self.store.record_stage(job.id, stage, seconds)
            self.events.emit(job.id, "stage", stage=stage, seconds=seconds)

        self.events.emit(
            job.id,
            "started",
            execution=job.executions,
            experiment=job.experiment,
            worker=worker_id,
        )
        # ``started_at`` was stamped by the claim, so the deadline covers
        # execution only — queue wait does not eat a job's budget.
        deadline = (
            None
            if job.deadline_s is None or job.started_at is None
            else job.started_at + job.deadline_s
        )
        try:
            # The whole execution runs under the job's trace context, so
            # every span below (pipeline, stages, the execute wrapper) is
            # stamped with the ids a cross-process merge needs.
            with trace_context(
                trace_id=job.trace_id, job_id=job.id, worker_id=worker_id
            ):
                fault_point(
                    "worker.claim",
                    job=job.id,
                    experiment=job.experiment,
                    execution=job.executions,
                )
                with trace_span(
                    "scheduler.execute",
                    experiment=job.experiment,
                    execution=job.executions,
                ):
                    result = call_execute(
                        self._execute,
                        job.request(),
                        self.options,
                        on_stage,
                        deadline,
                    )
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            self._record_failure(job, exc, worker_id)
        except BaseException:
            # Interrupt during drain: put the job back so the next start
            # (or the lease reaper) re-runs it, then unwind.
            self.store.mark_failed(
                job.id,
                "interrupted during shutdown",
                retry_at=time.time(),
                worker_id=worker_id,
            )
            self.events.emit(job.id, "interrupted")
            raise
        else:
            self.store.mark_done(job.id, result, worker_id=worker_id)
            self.events.emit(job.id, "done")
            self.events.mark_terminal(job.id)

    def _record_failure(self, job: Job, exc: Exception, worker_id: str) -> None:
        error = f"{type(exc).__name__}: {exc}"
        # ``claim_next`` already counted this execution; the budget is scoped
        # to the current incarnation (a resubmitted failed job retries with a
        # fresh budget, not one depleted by its history).  A blown deadline
        # is terminal regardless of budget: retrying an over-budget job just
        # blows the same budget again and wastes another worker-deadline.
        if isinstance(exc, DeadlineExceeded):
            metrics().counter("serve.deadline_exceeded").inc()
            self.store.mark_failed(job.id, error, worker_id=worker_id)
            self.events.emit(job.id, "failed", error=error, deadline=True)
            self.events.mark_terminal(job.id)
            return
        retry_at = plan_retry(job, self.retry_base_delay, self.retry_max_delay)
        if retry_at is not None:
            self.store.mark_failed(
                job.id, error, retry_at=retry_at, worker_id=worker_id
            )
            metrics().counter("serve.retries").inc()
            self.events.emit(
                job.id,
                "retry_scheduled",
                error=error,
                delay=max(0.0, retry_at - time.time()),
            )
        else:
            self.store.mark_failed(job.id, error, worker_id=worker_id)
            self.events.emit(job.id, "failed", error=error)
            self.events.mark_terminal(job.id)


__all__ = [
    "ExecuteFn",
    "JobEvents",
    "Scheduler",
    "call_execute",
    "plan_retry",
]
