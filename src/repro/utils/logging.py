"""Lightweight structured logging used by trainers and simulators.

We avoid configuring the root logger so the library behaves well when
embedded.  ``get_logger`` returns namespaced loggers; ``ProgressPrinter`` is a
tiny helper for example scripts that want human-readable progress lines
without pulling in a progress-bar dependency.

``service_log`` is the fleet's operator-log seam: plain one-line messages by
default, but with ``REPRO_LOG_FORMAT=json`` in the environment every line
becomes one JSON object stamped with the ambient trace context
(``worker_id`` / ``job_id`` / ``trace_id`` when available), so fleet logs
are machine-correlatable with the distributed traces the span store holds.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

#: Environment variable selecting the log format ("json" or default text).
LOG_FORMAT_ENV = "REPRO_LOG_FORMAT"


def get_logger(name: str) -> logging.Logger:
    """Return a library-namespaced logger (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


def json_logs_enabled() -> bool:
    """Whether ``REPRO_LOG_FORMAT=json`` selected structured log output."""
    return os.environ.get(LOG_FORMAT_ENV, "").strip().lower() == "json"


def log_record(message: str, level: str = "info", **fields) -> dict:
    """One structured log record stamped with the ambient trace context.

    Context fields are only present when bound (no ``null`` noise), and
    explicit ``fields`` win over ambient ones.
    """
    from repro.obs.context import current_trace

    record: dict = {
        "ts": round(time.time(), 6),
        "level": level,
        "message": message,
    }
    record.update(current_trace().to_dict())
    record.update({key: value for key, value in fields.items() if value is not None})
    return record


def service_log(message: str, *, level: str = "info", stream=None, **fields) -> None:
    """Emit one operator-facing log line (text, or JSON when selected).

    The seam every ``repro serve`` / ``repro worker`` message goes through:
    default output is the bare ``message`` (unchanged human behaviour);
    under ``REPRO_LOG_FORMAT=json`` it is one compact JSON object per line
    carrying ``ts``/``level``/``message`` plus the trace context and any
    extra ``fields``.
    """
    stream = sys.stdout if stream is None else stream
    if not json_logs_enabled():
        print(message, file=stream, flush=True)
        return
    record = log_record(message, level=level, **fields)
    print(json.dumps(record, separators=(",", ":")), file=stream, flush=True)


class ProgressPrinter:
    """Print periodic progress lines for long-running loops.

    Parameters
    ----------
    total:
        Total number of steps, used to print percentages.  ``None`` disables
        percentage display.
    every:
        Minimum number of seconds between printed lines.
    stream:
        Output stream; defaults to stderr so stdout stays machine-parsable.
    """

    def __init__(self, total: int | None = None, every: float = 2.0, stream=None) -> None:
        self.total = total
        self.every = float(every)
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        self._last = self._start

    def update(self, step: int, message: str = "") -> None:
        """Print a progress line for ``step`` if enough time has elapsed."""
        now = time.monotonic()
        if now - self._last < self.every and step != self.total:
            return
        self._last = now
        elapsed = now - self._start
        if self.total:
            frac = 100.0 * step / self.total
            prefix = f"[{step}/{self.total} {frac:5.1f}% {elapsed:7.1f}s]"
        else:
            prefix = f"[step {step} {elapsed:7.1f}s]"
        line = f"{prefix} {message}" if message else prefix
        print(line, file=self.stream, flush=True)
