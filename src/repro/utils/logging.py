"""Lightweight structured logging used by trainers and simulators.

We avoid configuring the root logger so the library behaves well when
embedded.  ``get_logger`` returns namespaced loggers; ``ProgressPrinter`` is a
tiny helper for example scripts that want human-readable progress lines
without pulling in a progress-bar dependency.
"""

from __future__ import annotations

import logging
import sys
import time


def get_logger(name: str) -> logging.Logger:
    """Return a library-namespaced logger (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


class ProgressPrinter:
    """Print periodic progress lines for long-running loops.

    Parameters
    ----------
    total:
        Total number of steps, used to print percentages.  ``None`` disables
        percentage display.
    every:
        Minimum number of seconds between printed lines.
    stream:
        Output stream; defaults to stderr so stdout stays machine-parsable.
    """

    def __init__(self, total: int | None = None, every: float = 2.0, stream=None) -> None:
        self.total = total
        self.every = float(every)
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        self._last = self._start

    def update(self, step: int, message: str = "") -> None:
        """Print a progress line for ``step`` if enough time has elapsed."""
        now = time.monotonic()
        if now - self._last < self.every and step != self.total:
            return
        self._last = now
        elapsed = now - self._start
        if self.total:
            frac = 100.0 * step / self.total
            prefix = f"[{step}/{self.total} {frac:5.1f}% {elapsed:7.1f}s]"
        else:
            prefix = f"[step {step} {elapsed:7.1f}s]"
        line = f"{prefix} {message}" if message else prefix
        print(line, file=self.stream, flush=True)
