"""Small argument-validation helpers used across the library.

The simulator and NN substrate are configuration-heavy; failing early with a
clear message is much cheaper than debugging a shape error three layers deep.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive_float(value: float, name: str) -> float:
    """Validate that ``value`` is a strictly positive finite float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_group_split(
    channels: int, out_channels: int, groups: int, name: str | None = None
) -> tuple[int, int]:
    """Validate a grouped-convolution channel split; returns (C/g, F/g).

    ``name`` (e.g. a layer name) prefixes the error message for context.
    """
    prefix = f"{name}: " if name else ""
    if groups <= 0:
        raise ValueError(f"{prefix}groups must be positive, got {groups}")
    if channels % groups or out_channels % groups:
        raise ValueError(
            f"{prefix}groups={groups} must divide in_channels={channels} "
            f"and out_channels={out_channels}"
        )
    return channels // groups, out_channels // groups


def check_shape(array: np.ndarray, expected: Sequence[int | None], name: str) -> np.ndarray:
    """Validate the shape of ``array``; ``None`` entries are wildcards."""
    if array.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got shape {array.shape}"
        )
    for axis, (got, want) in enumerate(zip(array.shape, expected)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {tuple(expected)} "
                f"(mismatch at axis {axis})"
            )
    return array
