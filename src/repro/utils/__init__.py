"""Shared utilities: deterministic RNG handling, validation helpers, logging."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_shape,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "check_positive_int",
    "check_probability",
    "check_shape",
]
