"""Deterministic random number generation helpers.

Every stochastic component in the library (weight initialisation, synthetic
datasets, stochastic pruning) takes an explicit ``numpy.random.Generator`` so
experiments are reproducible bit-for-bit given a seed.  These helpers keep the
seeding discipline in one place.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a fresh :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Seed for the generator.  ``None`` draws entropy from the OS, which is
        only appropriate for exploratory use; experiments should always pass a
        seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the child streams are
    statistically independent, which matters when e.g. every layer of a model
    carries its own pruning RNG.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_rng(rng: np.random.Generator | None, seed: int | None = None) -> np.random.Generator:
    """Return ``rng`` if given, otherwise a new generator seeded with ``seed``."""
    if rng is not None:
        return rng
    return new_rng(seed)


def stable_hash_seed(*parts: Iterable) -> int:
    """Derive a 32-bit seed from arbitrary hashable parts (model name, layer id...).

    Python's built-in ``hash`` is salted per process for strings, so we build a
    deterministic FNV-1a hash over the ``repr`` of the parts instead.
    """
    acc = 0x811C9DC5
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc
