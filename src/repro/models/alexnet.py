"""AlexNet: full-size shape specs for the simulator and a runnable reduced model.

Two faces of the same network:

* :func:`alexnet_imagenet_spec` / :func:`alexnet_cifar_spec` describe the
  exact convolution geometries used in the paper's evaluation so the
  dataflow/architecture simulator works on realistic layer shapes.
* :func:`build_alexnet` constructs a runnable (optionally width-reduced)
  numpy model with the same Conv-ReLU-MaxPool structure, used for the
  accuracy/density experiments on synthetic data.

AlexNet has no batch-norm layers, so every convolution is a Conv-ReLU
structure: the natural sparsity of ``dO`` comes straight from the ReLU mask
and the pruning algorithm targets the propagated gradient ``dI`` (paper
Fig. 4, left).
"""

from __future__ import annotations

import numpy as np

from repro.models.spec import ConvLayerSpec, ConvStructure, LinearLayerSpec, ModelSpec
from repro.nn.layers import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.utils.rng import derive_rng


def alexnet_imagenet_spec() -> ModelSpec:
    """AlexNet convolution geometry for 3x224x224 inputs (torchvision layout)."""
    conv = ConvStructure.CONV_RELU
    layers = (
        ConvLayerSpec("conv1", 3, 64, 11, 4, 2, 224, 224, conv),
        ConvLayerSpec("conv2", 64, 192, 5, 1, 2, 27, 27, conv),
        ConvLayerSpec("conv3", 192, 384, 3, 1, 1, 13, 13, conv),
        ConvLayerSpec("conv4", 384, 256, 3, 1, 1, 13, 13, conv),
        ConvLayerSpec("conv5", 256, 256, 3, 1, 1, 13, 13, conv),
    )
    linears = (
        LinearLayerSpec("fc6", 256 * 6 * 6, 4096),
        LinearLayerSpec("fc7", 4096, 4096),
        LinearLayerSpec("fc8", 4096, 1000),
    )
    return ModelSpec("AlexNet", "ImageNet", (3, 224, 224), layers, linears)


def alexnet_cifar_spec(num_classes: int = 10) -> ModelSpec:
    """CIFAR-adapted AlexNet geometry for 3x32x32 inputs.

    The adaptation follows the common practice of shrinking the stem kernel
    and removing the aggressive stride so the feature maps survive five conv
    stages on 32x32 inputs.
    """
    conv = ConvStructure.CONV_RELU
    layers = (
        ConvLayerSpec("conv1", 3, 64, 3, 1, 1, 32, 32, conv),
        ConvLayerSpec("conv2", 64, 192, 3, 1, 1, 16, 16, conv),
        ConvLayerSpec("conv3", 192, 384, 3, 1, 1, 8, 8, conv),
        ConvLayerSpec("conv4", 384, 256, 3, 1, 1, 8, 8, conv),
        ConvLayerSpec("conv5", 256, 256, 3, 1, 1, 8, 8, conv),
    )
    linears = (
        LinearLayerSpec("fc6", 256 * 4 * 4, 1024),
        LinearLayerSpec("fc7", 1024, 512),
        LinearLayerSpec("fc8", 512, num_classes),
    )
    dataset = "CIFAR-10" if num_classes == 10 else f"CIFAR-{num_classes}"
    return ModelSpec("AlexNet", dataset, (3, 32, 32), layers, linears)


def build_alexnet(
    num_classes: int = 4,
    image_size: int = 16,
    in_channels: int = 3,
    width_scale: float = 0.25,
    dropout: float = 0.0,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Build a runnable (reduced) AlexNet-style numpy model.

    Parameters
    ----------
    num_classes, image_size, in_channels:
        Task geometry; the defaults match :func:`repro.data.make_cifar_like`.
    width_scale:
        Multiplier applied to every channel count.  ``1.0`` gives the CIFAR
        AlexNet widths (64/192/384/256/256), the default ``0.25`` keeps numpy
        training fast while preserving the layer structure.
    dropout:
        Dropout rate in the classifier head (0 disables dropout).
    """
    if image_size % 8 != 0:
        raise ValueError(f"image_size must be divisible by 8, got {image_size}")
    rng = derive_rng(rng, seed=0)

    def width(base: int) -> int:
        return max(int(round(base * width_scale)), 4)

    w1, w2, w3, w4, w5 = width(64), width(192), width(384), width(256), width(256)
    final_spatial = image_size // 8
    classifier_in = w5 * final_spatial * final_spatial
    hidden = max(width(1024), 32)

    layers = [
        Conv2D(in_channels, w1, 3, stride=1, padding=1, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(w1, w2, 3, stride=1, padding=1, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Conv2D(w2, w3, 3, stride=1, padding=1, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        Conv2D(w3, w4, 3, stride=1, padding=1, rng=rng, name="conv4"),
        ReLU(name="relu4"),
        Conv2D(w4, w5, 3, stride=1, padding=1, rng=rng, name="conv5"),
        ReLU(name="relu5"),
        MaxPool2D(2, name="pool5"),
        Flatten(name="flatten"),
    ]
    if dropout > 0.0:
        layers.append(Dropout(dropout, rng=rng, name="drop6"))
    layers.extend(
        [
            Linear(classifier_in, hidden, rng=rng, name="fc6"),
            ReLU(name="relu6"),
            Linear(hidden, num_classes, rng=rng, name="fc8"),
        ]
    )
    return Sequential(layers, name="AlexNet")
