"""MobileNetV1: full-size shape specs and a runnable reduced model.

MobileNetV1 replaces standard convolutions with depthwise-separable pairs —
a depthwise 3x3 convolution (``groups == channels``) followed by a pointwise
1x1 convolution — cutting MACs and weights by roughly the kernel area.  Every
convolution sits in a Conv-BN-ReLU structure, so — like ResNet — the pruning
algorithm targets ``dO`` (paper Fig. 4, right).

* :func:`mobilenet_spec` produces the exact convolution geometry of
  MobileNetV1 (optionally width-multiplied) for CIFAR or ImageNet inputs.
* :func:`build_mobilenet` builds a runnable reduced depthwise-separable model
  in numpy for the accuracy/density experiments.
"""

from __future__ import annotations

import numpy as np

from repro.models.spec import (
    ConvLayerSpec,
    ConvStructure,
    LinearLayerSpec,
    ModelSpec,
    dataset_geometry,
)
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    DepthwiseSeparableBlock,
    GlobalAvgPool2D,
    Linear,
    ReLU,
    Sequential,
)
from repro.utils.rng import derive_rng

# (depthwise stride, pointwise output channels) of the 13 separable blocks.
_MOBILENET_BLOCKS: tuple[tuple[int, int], ...] = (
    (1, 64),
    (2, 128), (1, 128),
    (2, 256), (1, 256),
    (2, 512), (1, 512), (1, 512), (1, 512), (1, 512), (1, 512),
    (2, 1024), (1, 1024),
)

_STEM_CHANNELS = 32


def _scaled(base: int, width_multiplier: float) -> int:
    """Width-multiplied channel count (floored at 8, MobileNet convention)."""
    return max(int(round(base * width_multiplier)), 8)


def mobilenet_spec(
    dataset: str = "CIFAR-10",
    width_multiplier: float = 1.0,
    num_classes: int | None = None,
) -> ModelSpec:
    """Build the convolution geometry of MobileNetV1.

    Parameters
    ----------
    dataset:
        ``"CIFAR-10"``, ``"CIFAR-100"`` or ``"ImageNet"``.  The ImageNet stem
        strides by 2 (224 -> 7 after the four stride-2 depthwise stages); the
        CIFAR adaptation keeps the stem at stride 1 (32 -> 2).
    width_multiplier:
        MobileNet's alpha: every channel count is scaled by this factor
        (floored at 8).  ``1.0`` gives the standard network.
    num_classes:
        Overrides the classifier width (defaults follow the dataset).
    """
    if width_multiplier <= 0:
        raise ValueError(f"width_multiplier must be positive, got {width_multiplier}")
    input_shape, default_classes = dataset_geometry(dataset)
    num_classes = num_classes if num_classes is not None else default_classes
    # The CIFAR adaptation keeps the stem at stride 1 (32x32 inputs cannot
    # afford the ImageNet stem's /2).
    stem_stride = 2 if dataset.lower() == "imagenet" else 1

    bn_relu = ConvStructure.CONV_BN_RELU
    channels = _scaled(_STEM_CHANNELS, width_multiplier)
    size = input_shape[1]
    stem = ConvLayerSpec("stem.conv", 3, channels, 3, stem_stride, 1, size, size, bn_relu)
    size = stem.out_height

    conv_layers: list[ConvLayerSpec] = [stem]
    for index, (stride, out_base) in enumerate(_MOBILENET_BLOCKS):
        out_channels = _scaled(out_base, width_multiplier)
        name = f"block{index + 1}"
        depthwise = ConvLayerSpec(
            f"{name}.dw", channels, channels, 3, stride, 1, size, size, bn_relu,
            groups=channels,
        )
        size = depthwise.out_height
        pointwise = ConvLayerSpec(
            f"{name}.pw", channels, out_channels, 1, 1, 0, size, size, bn_relu
        )
        conv_layers.extend((depthwise, pointwise))
        channels = out_channels

    linears = (LinearLayerSpec("fc", channels, num_classes),)
    suffix = "" if width_multiplier == 1.0 else f"-{width_multiplier:g}x"
    return ModelSpec(
        name=f"MobileNetV1{suffix}",
        dataset=dataset,
        input_shape=input_shape,
        conv_layers=tuple(conv_layers),
        linear_layers=linears,
    )


def build_mobilenet(
    num_classes: int = 4,
    image_size: int = 16,
    in_channels: int = 3,
    width_multiplier: float = 0.25,
    blocks: tuple[tuple[int, int], ...] = ((1, 64), (2, 128), (1, 128)),
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Sequential:
    """Build a runnable reduced MobileNetV1-style numpy model.

    ``blocks`` lists (depthwise stride, pointwise base channels) pairs; base
    channel counts are scaled by ``width_multiplier`` exactly like the
    full-size spec, so the reduced model exercises the same depthwise ->
    pointwise structure the density measurements need.
    """
    if not blocks:
        raise ValueError("blocks must not be empty")
    total_stride = 2 ** sum(1 for stride, _ in blocks if stride == 2)
    if image_size < 2 * total_stride:
        raise ValueError(
            f"image_size={image_size} too small for total stride {total_stride}"
        )
    rng = derive_rng(rng, seed=0)

    channels = _scaled(_STEM_CHANNELS, width_multiplier)
    layers: list = [
        Conv2D(in_channels, channels, 3, stride=1, padding=1, bias=False, rng=rng, name="stem.conv"),
        BatchNorm2D(channels, name="stem.bn"),
        ReLU(name="stem.relu"),
    ]
    for index, (stride, out_base) in enumerate(blocks):
        out_channels = _scaled(out_base, width_multiplier)
        layers.append(
            DepthwiseSeparableBlock(
                channels, out_channels, stride=stride, rng=rng,
                name=f"block{index + 1}",
            )
        )
        channels = out_channels
    layers.extend(
        [
            GlobalAvgPool2D(name="gap"),
            Linear(channels, num_classes, rng=rng, name="fc"),
        ]
    )
    return Sequential(layers, name=name or "MobileNetV1-mini")
