"""ResNet: full-size shape specs (18/34/152) and a runnable reduced model.

ResNet convolutions sit inside Conv-BN-ReLU structures (paper Fig. 4, right):
batch norm re-densifies the backward gradient, so the pruning algorithm
targets ``dO`` of every convolution.  The spec generators mark them
accordingly so the dataflow compiler knows which operand densities apply.

* :func:`resnet_spec` produces the exact convolution geometry of
  ResNet-18/34 (basic blocks) and ResNet-152 (bottleneck blocks) for either
  CIFAR (3x32x32, 3x3 stem) or ImageNet (3x224x224, 7x7 stem + maxpool)
  inputs.
* :func:`build_resnet` builds a runnable reduced basic-block ResNet in numpy
  for the accuracy/density experiments.
"""

from __future__ import annotations

import numpy as np

from repro.models.spec import (
    ConvLayerSpec,
    ConvStructure,
    LinearLayerSpec,
    ModelSpec,
    dataset_geometry,
)
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    GlobalAvgPool2D,
    Linear,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
)
from repro.utils.rng import derive_rng

# Stage configurations: depth -> (block type, blocks per stage)
_RESNET_CONFIGS: dict[int, tuple[str, tuple[int, int, int, int]]] = {
    18: ("basic", (2, 2, 2, 2)),
    34: ("basic", (3, 4, 6, 3)),
    50: ("bottleneck", (3, 4, 6, 3)),
    101: ("bottleneck", (3, 4, 23, 3)),
    152: ("bottleneck", (3, 8, 36, 3)),
}

_STAGE_CHANNELS = (64, 128, 256, 512)
_BOTTLENECK_EXPANSION = 4


def supported_depths() -> tuple[int, ...]:
    """Depths accepted by :func:`resnet_spec`."""
    return tuple(sorted(_RESNET_CONFIGS))


def _basic_block_specs(
    name: str,
    in_channels: int,
    out_channels: int,
    stride: int,
    height: int,
    width: int,
) -> tuple[list[ConvLayerSpec], int, int, int]:
    """Conv specs of one basic block; returns (specs, out_channels, out_h, out_w)."""
    bn_relu = ConvStructure.CONV_BN_RELU
    specs = [
        ConvLayerSpec(f"{name}.conv1", in_channels, out_channels, 3, stride, 1, height, width, bn_relu),
    ]
    out_h, out_w = specs[0].out_height, specs[0].out_width
    specs.append(
        ConvLayerSpec(f"{name}.conv2", out_channels, out_channels, 3, 1, 1, out_h, out_w, bn_relu)
    )
    if stride != 1 or in_channels != out_channels:
        specs.append(
            ConvLayerSpec(
                f"{name}.downsample", in_channels, out_channels, 1, stride, 0, height, width,
                ConvStructure.CONV_ONLY,
            )
        )
    return specs, out_channels, out_h, out_w


def _bottleneck_block_specs(
    name: str,
    in_channels: int,
    base_channels: int,
    stride: int,
    height: int,
    width: int,
) -> tuple[list[ConvLayerSpec], int, int, int]:
    """Conv specs of one bottleneck block (1x1 reduce, 3x3, 1x1 expand)."""
    bn_relu = ConvStructure.CONV_BN_RELU
    out_channels = base_channels * _BOTTLENECK_EXPANSION
    specs = [
        ConvLayerSpec(f"{name}.conv1", in_channels, base_channels, 1, 1, 0, height, width, bn_relu),
        ConvLayerSpec(f"{name}.conv2", base_channels, base_channels, 3, stride, 1, height, width, bn_relu),
    ]
    out_h, out_w = specs[1].out_height, specs[1].out_width
    specs.append(
        ConvLayerSpec(f"{name}.conv3", base_channels, out_channels, 1, 1, 0, out_h, out_w, bn_relu)
    )
    if stride != 1 or in_channels != out_channels:
        specs.append(
            ConvLayerSpec(
                f"{name}.downsample", in_channels, out_channels, 1, stride, 0, height, width,
                ConvStructure.CONV_ONLY,
            )
        )
    return specs, out_channels, out_h, out_w


def resnet_spec(depth: int, dataset: str = "CIFAR-10", num_classes: int | None = None) -> ModelSpec:
    """Build the convolution geometry of a ResNet.

    Parameters
    ----------
    depth:
        One of 18, 34, 50, 101, 152.
    dataset:
        ``"CIFAR-10"``, ``"CIFAR-100"`` or ``"ImageNet"``; selects the input
        geometry and the stem.
    num_classes:
        Overrides the classifier width (defaults follow the dataset).
    """
    if depth not in _RESNET_CONFIGS:
        raise ValueError(f"unsupported ResNet depth {depth}; choose from {supported_depths()}")
    block_type, blocks_per_stage = _RESNET_CONFIGS[depth]

    input_shape, default_classes = dataset_geometry(dataset)
    if dataset.lower() == "imagenet":
        stem = ConvLayerSpec("stem.conv", 3, 64, 7, 2, 3, 224, 224, ConvStructure.CONV_BN_RELU)
        # A 3x3/2 max-pool follows the stem on ImageNet.
        height = width = (stem.out_height - 3) // 2 + 1
    else:
        stem = ConvLayerSpec("stem.conv", 3, 64, 3, 1, 1, 32, 32, ConvStructure.CONV_BN_RELU)
        height = width = 32
    num_classes = num_classes if num_classes is not None else default_classes

    conv_layers: list[ConvLayerSpec] = [stem]
    channels = 64
    for stage_index, (num_blocks, stage_channels) in enumerate(
        zip(blocks_per_stage, _STAGE_CHANNELS)
    ):
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            name = f"stage{stage_index + 1}.block{block_index + 1}"
            if block_type == "basic":
                specs, channels, height, width = _basic_block_specs(
                    name, channels, stage_channels, stride, height, width
                )
            else:
                specs, channels, height, width = _bottleneck_block_specs(
                    name, channels, stage_channels, stride, height, width
                )
            conv_layers.extend(specs)

    linears = (LinearLayerSpec("fc", channels, num_classes),)
    return ModelSpec(
        name=f"ResNet-{depth}",
        dataset=dataset,
        input_shape=input_shape,
        conv_layers=tuple(conv_layers),
        linear_layers=linears,
    )


def build_resnet(
    num_classes: int = 4,
    image_size: int = 16,
    in_channels: int = 3,
    blocks_per_stage: tuple[int, ...] = (1, 1),
    base_width: int = 16,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Sequential:
    """Build a runnable reduced basic-block ResNet.

    The default configuration (two stages of one block each, width 16) trains
    in seconds on the synthetic datasets while exercising the exact layer
    structure the pruning algorithm cares about: every convolution sits in a
    Conv-BN-ReLU structure with residual additions.
    """
    if not blocks_per_stage:
        raise ValueError("blocks_per_stage must not be empty")
    rng = derive_rng(rng, seed=0)

    layers: list = [
        Conv2D(in_channels, base_width, 3, stride=1, padding=1, bias=False, rng=rng, name="stem.conv"),
        BatchNorm2D(base_width, name="stem.bn"),
        ReLU(name="stem.relu"),
    ]
    channels = base_width
    for stage_index, num_blocks in enumerate(blocks_per_stage):
        stage_channels = base_width * (2**stage_index)
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            block_name = f"stage{stage_index + 1}.block{block_index + 1}"
            layers.append(
                ResidualBlock(channels, stage_channels, stride=stride, rng=rng, name=block_name)
            )
            channels = stage_channels
    layers.extend(
        [
            GlobalAvgPool2D(name="gap"),
            Linear(channels, num_classes, rng=rng, name="fc"),
        ]
    )
    depth_name = name or f"ResNet-mini-{sum(blocks_per_stage) * 2 + 2}"
    model = Sequential(layers, name=depth_name)
    # MaxPool is not used in the reduced model; image_size only documents intent.
    if image_size < 2 ** (len(blocks_per_stage) - 1) * 2:
        raise ValueError(
            f"image_size={image_size} too small for {len(blocks_per_stage)} stages"
        )
    return model
