"""VGG: full-size shape specs (VGG-11/16) and a runnable reduced model.

VGG stacks uniform 3x3 convolutions separated by max-pooling, with no batch
norm in the classic configuration — every convolution is a Conv-ReLU
structure (paper Fig. 4, left), so the pruning algorithm targets the
propagated gradient ``dI``, exactly like AlexNet.

* :func:`vgg_spec` produces the exact convolution geometry of VGG-11 ("A")
  and VGG-16 ("D") for CIFAR (3x32x32) or ImageNet (3x224x224) inputs.
* :func:`build_vgg` builds a runnable reduced VGG-style numpy model for the
  accuracy/density experiments on synthetic data.
"""

from __future__ import annotations

import numpy as np

from repro.models.spec import (
    ConvLayerSpec,
    ConvStructure,
    LinearLayerSpec,
    ModelSpec,
    dataset_geometry,
)
from repro.nn.layers import Conv2D, Dropout, Flatten, Linear, MaxPool2D, ReLU, Sequential
from repro.utils.rng import derive_rng

# Configuration strings of Simonyan & Zisserman: channel counts with "M" for
# a 2x2/2 max-pool.
_VGG_CONFIGS: dict[int, tuple[object, ...]] = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    16: (
        64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
        512, 512, 512, "M", 512, 512, 512, "M",
    ),
}


def supported_vgg_depths() -> tuple[int, ...]:
    """Depths accepted by :func:`vgg_spec`."""
    return tuple(sorted(_VGG_CONFIGS))


def vgg_spec(depth: int, dataset: str = "CIFAR-10", num_classes: int | None = None) -> ModelSpec:
    """Build the convolution geometry of a VGG network.

    Parameters
    ----------
    depth:
        11 (configuration "A") or 16 (configuration "D").
    dataset:
        ``"CIFAR-10"``, ``"CIFAR-100"`` or ``"ImageNet"``; selects the input
        size and the classifier head (the five max-pools shrink 224 -> 7 on
        ImageNet and 32 -> 1 on CIFAR).
    num_classes:
        Overrides the classifier width (defaults follow the dataset).
    """
    if depth not in _VGG_CONFIGS:
        raise ValueError(
            f"unsupported VGG depth {depth}; choose from {supported_vgg_depths()}"
        )
    input_shape, default_classes = dataset_geometry(dataset)
    num_classes = num_classes if num_classes is not None else default_classes
    is_imagenet = dataset.lower() == "imagenet"

    conv = ConvStructure.CONV_RELU
    conv_layers: list[ConvLayerSpec] = []
    channels = input_shape[0]
    size = input_shape[1]
    stage = 0
    index_in_stage = 0
    for entry in _VGG_CONFIGS[depth]:
        if entry == "M":
            size //= 2
            stage += 1
            index_in_stage = 0
            continue
        index_in_stage += 1
        conv_layers.append(
            ConvLayerSpec(
                f"stage{stage + 1}.conv{index_in_stage}",
                channels, int(entry), 3, 1, 1, size, size, conv,
            )
        )
        channels = int(entry)

    final_features = channels * size * size
    if is_imagenet:
        linears = (
            LinearLayerSpec("fc6", final_features, 4096),
            LinearLayerSpec("fc7", 4096, 4096),
            LinearLayerSpec("fc8", 4096, num_classes),
        )
    else:
        linears = (
            LinearLayerSpec("fc6", final_features, 512),
            LinearLayerSpec("fc7", 512, num_classes),
        )
    return ModelSpec(
        name=f"VGG-{depth}",
        dataset=dataset,
        input_shape=input_shape,
        conv_layers=tuple(conv_layers),
        linear_layers=linears,
    )


def build_vgg(
    num_classes: int = 4,
    image_size: int = 16,
    in_channels: int = 3,
    width_scale: float = 0.25,
    convs_per_stage: tuple[int, ...] = (1, 2, 2),
    dropout: float = 0.0,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Sequential:
    """Build a runnable (reduced) VGG-style numpy model.

    ``convs_per_stage`` lists how many 3x3 Conv-ReLU layers precede each
    max-pool; the default three-stage layout mirrors VGG's uniform structure
    while staying fast enough for synthetic-data training.  Channel widths
    double per stage starting from ``64 * width_scale``.
    """
    if not convs_per_stage:
        raise ValueError("convs_per_stage must not be empty")
    if image_size % (2 ** len(convs_per_stage)) != 0:
        raise ValueError(
            f"image_size={image_size} must be divisible by 2^{len(convs_per_stage)}"
        )
    rng = derive_rng(rng, seed=0)

    def width(base: int) -> int:
        return max(int(round(base * width_scale)), 4)

    layers: list = []
    channels = in_channels
    for stage_index, num_convs in enumerate(convs_per_stage):
        stage_channels = width(64 * (2**stage_index))
        for conv_index in range(num_convs):
            layers.append(
                Conv2D(
                    channels, stage_channels, 3, stride=1, padding=1, rng=rng,
                    name=f"stage{stage_index + 1}.conv{conv_index + 1}",
                )
            )
            layers.append(ReLU(name=f"stage{stage_index + 1}.relu{conv_index + 1}"))
            channels = stage_channels
        layers.append(MaxPool2D(2, name=f"pool{stage_index + 1}"))
    layers.append(Flatten(name="flatten"))

    final_spatial = image_size // (2 ** len(convs_per_stage))
    classifier_in = channels * final_spatial * final_spatial
    hidden = max(width(512), 32)
    if dropout > 0.0:
        layers.append(Dropout(dropout, rng=rng, name="drop6"))
    layers.extend(
        [
            Linear(classifier_in, hidden, rng=rng, name="fc6"),
            ReLU(name="relu6"),
            Linear(hidden, num_classes, rng=rng, name="fc7"),
        ]
    )
    return Sequential(layers, name=name or "VGG-mini")
