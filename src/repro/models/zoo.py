"""Model zoo: the named model/dataset combinations evaluated in the paper.

The paper's Fig. 8 / Fig. 9 sweep AlexNet and ResNet-18/34 over CIFAR-10,
CIFAR-100 and ImageNet (Table II additionally includes ResNet-152 on CIFAR).
``paper_workloads`` enumerates those combinations as :class:`ModelSpec`
objects so the latency/energy harness can iterate over them;
``extended_workloads`` adds the VGG and MobileNet families this reproduction
grows beyond the paper, and ``model_family`` groups every supported model
name into the family whose reduced model measures its densities.

Every supported model is registered into the :mod:`repro.api` workload
registry (``@register_workload``); :func:`get_model_spec` and the experiment
pipelines resolve names through that registry, so adding a model family is a
registry entry here rather than new dispatch code in every harness.
"""

from __future__ import annotations

from repro.api.registry import WORKLOADS, register_workload
from repro.models.alexnet import alexnet_cifar_spec, alexnet_imagenet_spec
from repro.models.mobilenet import mobilenet_spec
from repro.models.resnet import resnet_spec, supported_depths
from repro.models.spec import ModelSpec
from repro.models.vgg import supported_vgg_depths, vgg_spec

# The dataset grid every registered workload supports.
KNOWN_DATASETS: tuple[str, ...] = ("CIFAR-10", "CIFAR-100", "ImageNet")


def normalize_model_name(model: str) -> str:
    """Canonicalise a model name: ``"resnet18"``/``"ResNet_18"`` -> ``"ResNet-18"``.

    Lookup helpers across the codebase accept slightly different spellings
    (``eval.common`` takes ``resnet-18``, older callers wrote ``ResNet18``);
    this collapses case, separators (``-``, ``_``, spaces) and returns the
    canonical paper spelling.  ``vgg16``/``VGG-16`` map to ``"VGG-16"`` and
    ``mobilenet``/``mobilenet_v1``/``MobileNetV1`` to ``"MobileNetV1"``.
    Unknown names are returned stripped so callers raise their own, more
    specific errors.
    """
    key = "".join(ch for ch in model.strip().lower() if ch not in "-_ ")
    if key == "alexnet":
        return "AlexNet"
    if key.startswith("resnet") and key[len("resnet"):].isdigit():
        return f"ResNet-{int(key[len('resnet'):])}"
    if key.startswith("vgg") and key[len("vgg"):].isdigit():
        return f"VGG-{int(key[len('vgg'):])}"
    if key in ("mobilenet", "mobilenetv1"):
        return "MobileNetV1"
    return model.strip()


def model_family(model: str) -> str:
    """The density-measurement family of a model name.

    Fig. 8 / Fig. 9 measure per-layer densities once per *family* on a
    reduced model and map them onto every full-size member by relative depth.
    """
    name = normalize_model_name(model)
    if name in WORKLOADS:
        return WORKLOADS.get(name).family
    # Unregistered depths of a registered family still map onto it.
    if name.startswith("ResNet-"):
        return "ResNet"
    if name.startswith("VGG-"):
        return "VGG"
    raise ValueError(f"unknown model {model!r}; no density-measurement family")


def normalize_dataset_name(dataset: str) -> str:
    """Canonicalise a dataset name: ``"cifar10"`` -> ``"CIFAR-10"`` etc."""
    key = "".join(ch for ch in dataset.strip().lower() if ch not in "-_ ")
    if key == "cifar10":
        return "CIFAR-10"
    if key == "cifar100":
        return "CIFAR-100"
    if key == "imagenet":
        return "ImageNet"
    return dataset.strip()


# ---------------------------------------------------------------------------
# Workload registry entries
# ---------------------------------------------------------------------------

def _alexnet_workload(dataset: str) -> ModelSpec:
    if dataset == "ImageNet":
        return alexnet_imagenet_spec()
    if dataset == "CIFAR-10":
        return alexnet_cifar_spec(10)
    if dataset == "CIFAR-100":
        return alexnet_cifar_spec(100)
    raise ValueError(f"unknown dataset {dataset!r} for AlexNet")


register_workload(
    "AlexNet",
    family="AlexNet",
    datasets=KNOWN_DATASETS,
    description="Conv-ReLU, prunes dI (paper Section IV-A)",
)(_alexnet_workload)

for _depth in supported_depths():
    register_workload(
        f"ResNet-{_depth}",
        family="ResNet",
        datasets=KNOWN_DATASETS,
        description="Conv-BN-ReLU, prunes dO",
    )(lambda dataset, _depth=_depth: resnet_spec(_depth, dataset))

for _depth in supported_vgg_depths():
    register_workload(
        f"VGG-{_depth}",
        family="VGG",
        datasets=KNOWN_DATASETS,
        description="uniform 3x3 Conv-ReLU stacks, prunes dI",
    )(lambda dataset, _depth=_depth: vgg_spec(_depth, dataset))

register_workload(
    "MobileNetV1",
    family="MobileNet",
    datasets=KNOWN_DATASETS,
    description="depthwise-separable Conv-BN-ReLU, prunes dO",
)(lambda dataset: mobilenet_spec(dataset))


def get_model_spec(model: str, dataset: str) -> ModelSpec:
    """Look up a model/dataset combination through the workload registry.

    Parameters
    ----------
    model:
        ``"AlexNet"``, ``"ResNet-<depth>"`` (depth in 18/34/50/101/152),
        ``"VGG-<depth>"`` (11 or 16) or ``"MobileNetV1"``.  Name matching is
        forgiving: case, hyphens and underscores are ignored, so
        ``"resnet18"``, ``"vgg16"`` and ``"mobilenet_v1"`` all resolve.
    dataset:
        ``"CIFAR-10"``, ``"CIFAR-100"`` or ``"ImageNet"`` (same forgiving
        matching: ``"cifar10"`` works too).
    """
    model_name = normalize_model_name(model)
    dataset_name = normalize_dataset_name(dataset)
    if model_name not in WORKLOADS:
        # Keep the specific parse errors for family-prefixed names so typos
        # like "ResNet-abc" name the model instead of listing the registry.
        key = model_name.lower()
        if key.startswith("resnet"):
            depth = key.partition("-")[2]
            if depth.isdigit():
                raise ValueError(
                    f"unsupported ResNet depth {depth}; choose from {supported_depths()}"
                )
            raise ValueError(f"cannot parse ResNet depth from {model!r}")
        if key.startswith("vgg"):
            depth = key.partition("-")[2]
            if depth.isdigit():
                raise ValueError(
                    f"unsupported VGG depth {depth}; choose from {supported_vgg_depths()}"
                )
            raise ValueError(f"cannot parse VGG depth from {model!r}")
        raise ValueError(
            f"unknown model {model!r}; registered workload models: "
            f"{', '.join(WORKLOADS.names())}"
        )
    workload = WORKLOADS.get(model_name)
    if dataset_name not in workload.datasets:
        raise ValueError(
            f"unknown dataset {dataset!r} for {model_name}; known datasets: "
            f"{', '.join(workload.datasets)}"
        )
    return workload.spec(dataset_name)


def paper_workloads(include_imagenet: bool = True) -> list[ModelSpec]:
    """The model/dataset grid of the paper's Fig. 8 and Fig. 9."""
    combinations = [
        ("AlexNet", "CIFAR-10"),
        ("AlexNet", "CIFAR-100"),
        ("ResNet-18", "CIFAR-10"),
        ("ResNet-18", "CIFAR-100"),
        ("ResNet-34", "CIFAR-10"),
        ("ResNet-34", "CIFAR-100"),
    ]
    if include_imagenet:
        combinations.extend(
            [
                ("AlexNet", "ImageNet"),
                ("ResNet-18", "ImageNet"),
                ("ResNet-34", "ImageNet"),
            ]
        )
    return [get_model_spec(model, dataset) for model, dataset in combinations]


def extended_workloads(include_imagenet: bool = True) -> list[ModelSpec]:
    """The paper grid plus the VGG-16 and MobileNetV1 efficiency workloads."""
    combinations = [("VGG-16", "CIFAR-10"), ("MobileNetV1", "CIFAR-10")]
    if include_imagenet:
        combinations.extend([("VGG-16", "ImageNet"), ("MobileNetV1", "ImageNet")])
    return paper_workloads(include_imagenet) + [
        get_model_spec(model, dataset) for model, dataset in combinations
    ]


def table2_workloads() -> list[tuple[str, str]]:
    """The (model, dataset) rows of the paper's Table II."""
    rows: list[tuple[str, str]] = []
    for dataset in ("CIFAR-10", "CIFAR-100", "ImageNet"):
        models = ["AlexNet", "ResNet-18", "ResNet-34"]
        if dataset.startswith("CIFAR"):
            models.append("ResNet-152")
        for model in models:
            rows.append((model, dataset))
    return rows
