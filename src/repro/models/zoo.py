"""Model zoo: the named model/dataset combinations evaluated in the paper.

The paper's Fig. 8 / Fig. 9 sweep AlexNet and ResNet-18/34 over CIFAR-10,
CIFAR-100 and ImageNet (Table II additionally includes ResNet-152 on CIFAR).
``paper_workloads`` enumerates those combinations as :class:`ModelSpec`
objects so the latency/energy harness can iterate over them.
"""

from __future__ import annotations

from repro.models.alexnet import alexnet_cifar_spec, alexnet_imagenet_spec
from repro.models.resnet import resnet_spec
from repro.models.spec import ModelSpec


def get_model_spec(model: str, dataset: str) -> ModelSpec:
    """Look up a model/dataset combination by name.

    Parameters
    ----------
    model:
        ``"AlexNet"`` or ``"ResNet-<depth>"`` (depth in 18/34/50/101/152).
    dataset:
        ``"CIFAR-10"``, ``"CIFAR-100"`` or ``"ImageNet"``.
    """
    model_key = model.lower().replace("_", "-")
    dataset_key = dataset.lower()
    if model_key == "alexnet":
        if dataset_key == "imagenet":
            return alexnet_imagenet_spec()
        if dataset_key in ("cifar-10", "cifar10"):
            return alexnet_cifar_spec(10)
        if dataset_key in ("cifar-100", "cifar100"):
            return alexnet_cifar_spec(100)
        raise ValueError(f"unknown dataset {dataset!r} for AlexNet")
    if model_key.startswith("resnet-"):
        try:
            depth = int(model_key.split("-", 1)[1])
        except ValueError as exc:
            raise ValueError(f"cannot parse ResNet depth from {model!r}") from exc
        return resnet_spec(depth, dataset)
    raise ValueError(f"unknown model {model!r}; expected AlexNet or ResNet-<depth>")


def paper_workloads(include_imagenet: bool = True) -> list[ModelSpec]:
    """The model/dataset grid of the paper's Fig. 8 and Fig. 9."""
    combinations = [
        ("AlexNet", "CIFAR-10"),
        ("AlexNet", "CIFAR-100"),
        ("ResNet-18", "CIFAR-10"),
        ("ResNet-18", "CIFAR-100"),
        ("ResNet-34", "CIFAR-10"),
        ("ResNet-34", "CIFAR-100"),
    ]
    if include_imagenet:
        combinations.extend(
            [
                ("AlexNet", "ImageNet"),
                ("ResNet-18", "ImageNet"),
                ("ResNet-34", "ImageNet"),
            ]
        )
    return [get_model_spec(model, dataset) for model, dataset in combinations]


def table2_workloads() -> list[tuple[str, str]]:
    """The (model, dataset) rows of the paper's Table II."""
    rows: list[tuple[str, str]] = []
    for dataset in ("CIFAR-10", "CIFAR-100", "ImageNet"):
        models = ["AlexNet", "ResNet-18", "ResNet-34"]
        if dataset.startswith("CIFAR"):
            models.append("ResNet-152")
        for model in models:
            rows.append((model, dataset))
    return rows
