"""Shape-level model descriptions used by the dataflow compiler and simulator.

Running full-size AlexNet/ResNet training in numpy is not feasible, but the
architecture evaluation (Fig. 8 / Fig. 9) does not need trained weights — it
needs the *shapes* of every convolution (channels, kernel, feature-map size)
plus per-layer operand densities.  ``ConvLayerSpec``/``ModelSpec`` capture the
shapes of the paper's exact models (AlexNet, ResNet-18/34/152, CIFAR and
ImageNet geometries); densities are supplied separately, either measured from
reduced numpy training runs or set analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.validation import (
    check_group_split,
    check_non_negative_int,
    check_positive_int,
)


def dataset_geometry(dataset: str) -> tuple[tuple[int, int, int], int]:
    """Input shape and default class count of a paper dataset.

    Returns ``((C, H, W), num_classes)`` for CIFAR-10/CIFAR-100/ImageNet;
    every spec generator resolves its dataset through this one ladder.
    """
    key = dataset.lower()
    if key.startswith("cifar"):
        return (3, 32, 32), (100 if "100" in key else 10)
    if key == "imagenet":
        return (3, 224, 224), 1000
    raise ValueError(
        f"unknown dataset {dataset!r}; expected CIFAR-10/CIFAR-100/ImageNet"
    )


class ConvStructure(Enum):
    """Structural class of a convolution (the paper's Fig. 4)."""

    CONV_RELU = "conv_relu"        # AlexNet style — prune dI, mask available
    CONV_BN_RELU = "conv_bn_relu"  # ResNet style — prune dO, mask available
    CONV_ONLY = "conv_only"        # projection/shortcut conv — no ReLU mask


@dataclass(frozen=True)
class ConvLayerSpec:
    """Geometry of one convolution layer.

    All sizes refer to a single sample (batch handling is the scheduler's
    job).  ``in_height``/``in_width`` are the *input* feature-map size.

    ``groups`` splits the channels into independent convolutions: output
    channel ``f`` only reads the ``in_channels / groups`` input channels of
    its group (``groups == in_channels == out_channels`` is a depthwise
    convolution, the defining op of MobileNet-style networks).  Weight and
    MAC accounting scale down by the group fan-in accordingly.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    in_height: int
    in_width: int
    structure: ConvStructure = ConvStructure.CONV_RELU
    groups: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.in_channels, "in_channels")
        check_positive_int(self.out_channels, "out_channels")
        check_positive_int(self.kernel, "kernel")
        check_positive_int(self.stride, "stride")
        check_non_negative_int(self.padding, "padding")
        check_positive_int(self.in_height, "in_height")
        check_positive_int(self.in_width, "in_width")
        check_positive_int(self.groups, "groups")
        check_group_split(
            self.in_channels, self.out_channels, self.groups, name=f"layer {self.name}"
        )
        if self.out_height <= 0 or self.out_width <= 0:
            raise ValueError(f"layer {self.name}: non-positive output size")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def group_in_channels(self) -> int:
        """Input channels each output channel actually reads (C / groups)."""
        return self.in_channels // self.groups

    @property
    def group_out_channels(self) -> int:
        """Output channels each input channel actually feeds (F / groups)."""
        return self.out_channels // self.groups

    @property
    def is_depthwise(self) -> bool:
        """Whether this is a depthwise convolution (one channel per group)."""
        return self.groups == self.in_channels == self.out_channels

    @property
    def weight_count(self) -> int:
        """Number of weight values (K*K*(C/groups)*F)."""
        return self.kernel * self.kernel * self.group_in_channels * self.out_channels

    @property
    def input_size(self) -> int:
        """Number of input activation values per sample (C*H*W)."""
        return self.in_channels * self.in_height * self.in_width

    @property
    def output_size(self) -> int:
        """Number of output activation values per sample (F*OH*OW)."""
        return self.out_channels * self.out_height * self.out_width

    # ------------------------------------------------------------------
    # Dense operation counts (per sample)
    # ------------------------------------------------------------------
    @property
    def forward_macs(self) -> int:
        """Dense multiply-accumulates of the Forward step.

        Every output value accumulates over the K*K window of the
        ``in_channels / groups`` input channels in its group, so grouped and
        depthwise convolutions cost proportionally fewer MACs.
        """
        return self.output_size * self.kernel * self.kernel * self.group_in_channels

    @property
    def gta_macs(self) -> int:
        """Dense MACs of the GTA step (dI = dO * W+), same count as forward."""
        return self.forward_macs

    @property
    def gtw_macs(self) -> int:
        """Dense MACs of the GTW step (dW = dO * I), same count as forward."""
        return self.forward_macs

    @property
    def training_macs(self) -> int:
        """Total dense MACs for one training sample (forward + GTA + GTW)."""
        return self.forward_macs + self.gta_macs + self.gtw_macs

    @property
    def has_relu_mask(self) -> bool:
        """Whether a forward ReLU/MaxPool mask exists for MSRC skipping."""
        return self.structure in (ConvStructure.CONV_RELU, ConvStructure.CONV_BN_RELU)


@dataclass(frozen=True)
class LinearLayerSpec:
    """Geometry of a fully connected layer (treated as a 1x1x1 convolution)."""

    name: str
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        check_positive_int(self.in_features, "in_features")
        check_positive_int(self.out_features, "out_features")

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    @property
    def forward_macs(self) -> int:
        return self.weight_count

    @property
    def training_macs(self) -> int:
        return 3 * self.weight_count

    def as_conv(self) -> ConvLayerSpec:
        """View the linear layer as a 1x1 convolution over a 1x1 feature map."""
        return ConvLayerSpec(
            name=self.name,
            in_channels=self.in_features,
            out_channels=self.out_features,
            kernel=1,
            stride=1,
            padding=0,
            in_height=1,
            in_width=1,
            structure=ConvStructure.CONV_RELU,
        )


@dataclass(frozen=True)
class ModelSpec:
    """A whole model: ordered convolution layers plus the classifier head."""

    name: str
    dataset: str
    input_shape: tuple[int, int, int]
    conv_layers: tuple[ConvLayerSpec, ...]
    linear_layers: tuple[LinearLayerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.conv_layers:
            raise ValueError(f"model {self.name} has no convolution layers")

    @property
    def num_conv_layers(self) -> int:
        return len(self.conv_layers)

    @property
    def total_weights(self) -> int:
        conv = sum(layer.weight_count for layer in self.conv_layers)
        linear = sum(layer.weight_count for layer in self.linear_layers)
        return conv + linear

    @property
    def total_training_macs(self) -> int:
        """Dense training MACs per sample, conv plus classifier head."""
        conv = sum(layer.training_macs for layer in self.conv_layers)
        linear = sum(layer.training_macs for layer in self.linear_layers)
        return conv + linear

    @property
    def conv_training_macs(self) -> int:
        return sum(layer.training_macs for layer in self.conv_layers)

    def layer_by_name(self, name: str) -> ConvLayerSpec:
        for layer in self.conv_layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name} has no conv layer named {name!r}")

    def describe(self) -> str:
        """Multi-line human-readable description of the model."""
        lines = [
            f"{self.name} ({self.dataset}), input {self.input_shape}",
            f"  {self.num_conv_layers} conv layers, {len(self.linear_layers)} linear layers",
            f"  {self.total_weights / 1e6:.2f}M weights, "
            f"{self.total_training_macs / 1e9:.2f} GMAC per training sample (dense)",
        ]
        for layer in self.conv_layers:
            grouping = f" g{layer.groups}" if layer.groups > 1 else ""
            lines.append(
                f"    {layer.name}: {layer.in_channels}x{layer.in_height}x{layer.in_width}"
                f" -> {layer.out_channels}x{layer.out_height}x{layer.out_width}"
                f" k{layer.kernel} s{layer.stride} p{layer.padding}{grouping}"
                f" [{layer.structure.value}]"
            )
        return "\n".join(lines)
