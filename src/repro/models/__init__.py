"""Model zoo: runnable reduced models and full-size shape specifications."""

from repro.models.alexnet import (
    alexnet_cifar_spec,
    alexnet_imagenet_spec,
    build_alexnet,
)
from repro.models.resnet import build_resnet, resnet_spec, supported_depths
from repro.models.spec import (
    ConvLayerSpec,
    ConvStructure,
    LinearLayerSpec,
    ModelSpec,
)
from repro.models.zoo import (
    get_model_spec,
    normalize_dataset_name,
    normalize_model_name,
    paper_workloads,
    table2_workloads,
)

__all__ = [
    "ConvLayerSpec",
    "ConvStructure",
    "LinearLayerSpec",
    "ModelSpec",
    "alexnet_cifar_spec",
    "alexnet_imagenet_spec",
    "build_alexnet",
    "build_resnet",
    "resnet_spec",
    "supported_depths",
    "get_model_spec",
    "normalize_dataset_name",
    "normalize_model_name",
    "paper_workloads",
    "table2_workloads",
]
