"""Sparsity statistics for tensors and per-row vectors.

These helpers are shared by the pruning reports (Table II), the Table I
summary and the dataflow/architecture simulators (which consume per-layer
densities to decide how many operands a PE actually processes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def density(array: np.ndarray) -> float:
    """Fraction of non-zero elements (``rho_nnz`` in the paper)."""
    array = np.asarray(array)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array) / array.size)


def sparsity(array: np.ndarray) -> float:
    """Fraction of exactly-zero elements (``1 - density``)."""
    return 1.0 - density(array)


def nnz(array: np.ndarray) -> int:
    """Number of non-zero elements."""
    return int(np.count_nonzero(np.asarray(array)))


@dataclass(frozen=True)
class TensorSparsityStats:
    """Summary statistics of one tensor's sparsity structure."""

    shape: tuple[int, ...]
    size: int
    nnz: int
    density: float
    mean_abs: float
    max_abs: float

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density


def tensor_stats(array: np.ndarray) -> TensorSparsityStats:
    """Compute :class:`TensorSparsityStats` for ``array``."""
    array = np.asarray(array, dtype=np.float64)
    count = int(np.count_nonzero(array))
    abs_values = np.abs(array)
    return TensorSparsityStats(
        shape=tuple(array.shape),
        size=int(array.size),
        nnz=count,
        density=count / array.size if array.size else 0.0,
        mean_abs=float(abs_values.mean()) if array.size else 0.0,
        max_abs=float(abs_values.max()) if array.size else 0.0,
    )


def row_densities(feature_map: np.ndarray) -> np.ndarray:
    """Per-row densities of an activation/gradient tensor.

    The SparseTrain dataflow operates on rows of feature maps (1-D
    convolutions), so the distribution of *row* densities — not just the
    scalar average — determines PE load balance.  Accepts tensors of shape
    ``(..., W)``; every leading dimension indexes a row.
    """
    feature_map = np.asarray(feature_map)
    if feature_map.ndim == 0:
        raise ValueError("row_densities requires at least a 1-D array")
    width = feature_map.shape[-1]
    rows = feature_map.reshape(-1, width)
    if width == 0:
        return np.zeros(rows.shape[0])
    return np.count_nonzero(rows, axis=1) / width


def classify(density_value: float, dense_cutoff: float = 0.75) -> str:
    """Classify a density value as 'dense' or 'sparse' (Table I style).

    The cutoff is deliberately coarse: a tensor counts as *dense* when at
    least three quarters of its values are non-zero (compression and zero
    skipping would not pay off), and *sparse* otherwise.
    """
    if not 0.0 <= density_value <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density_value}")
    return "dense" if density_value >= dense_cutoff else "sparse"
