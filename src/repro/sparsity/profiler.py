"""Per-layer, per-batch sparsity profiling of a training run.

The profiler instruments every convolution of a model with

* a forward hook measuring the density of the convolution's input activations
  ``I`` (the natural sparsity produced by preceding ReLU/MaxPool layers), and
* a gradient-output hook measuring the density of the gradient ``dO`` entering
  the convolution's backward pass (after any pruning hooks that were attached
  *before* the profiler), and
* a gradient-input hook measuring the density of the propagated gradient
  ``dI``.

The resulting :class:`LayerSparsityTrace` objects feed the architecture
simulator (which needs per-layer densities) and the Table I summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.trainer import Callback
from repro.sparsity.stats import density


@dataclass
class LayerSparsityTrace:
    """Densities observed for one convolution layer across training batches."""

    layer_name: str
    input_densities: list[float] = field(default_factory=list)
    grad_output_densities: list[float] = field(default_factory=list)
    grad_input_densities: list[float] = field(default_factory=list)
    relu_mask_densities: list[float] = field(default_factory=list)

    def mean_input_density(self) -> float:
        """Average density of input activations ``I``."""
        return float(np.mean(self.input_densities)) if self.input_densities else 1.0

    def mean_grad_output_density(self) -> float:
        """Average density of ``dO`` (post-pruning if pruning is attached)."""
        return (
            float(np.mean(self.grad_output_densities))
            if self.grad_output_densities
            else 1.0
        )

    def mean_grad_input_density(self) -> float:
        """Average density of the propagated gradient ``dI``."""
        return (
            float(np.mean(self.grad_input_densities))
            if self.grad_input_densities
            else 1.0
        )

    def mean_relu_mask_density(self) -> float:
        """Average density of the forward ReLU mask feeding MSRC skipping."""
        return (
            float(np.mean(self.relu_mask_densities))
            if self.relu_mask_densities
            else 1.0
        )


def iter_convs(model: Layer):
    """Yield every convolution layer of a model tree, in structural order."""
    if isinstance(model, Conv2D):
        yield model
    for child in model.children():
        yield from iter_convs(child)


# Backwards-compatible private alias.
_iter_convs = iter_convs


class SparsityProfiler(Callback):
    """Collect per-convolution densities during training.

    Attach the profiler *after* the :class:`~repro.pruning.PruningController`
    so the recorded ``dO`` densities reflect the pruned gradients the
    accelerator would actually see.
    """

    def __init__(self, model: Layer) -> None:
        self.model = model
        self.traces: dict[str, LayerSparsityTrace] = {}
        for conv in iter_convs(model):
            trace = LayerSparsityTrace(layer_name=conv.name)
            self.traces[conv.name] = trace
            conv.register_forward_hook(self._make_forward_hook(trace))
            conv.register_grad_output_hook(self._make_grad_output_hook(trace))
            conv.register_grad_input_hook(self._make_grad_input_hook(trace))

    @staticmethod
    def _make_forward_hook(trace: LayerSparsityTrace):
        def hook(layer: Layer, x: np.ndarray, out: np.ndarray) -> None:
            trace.input_densities.append(density(x))

        return hook

    @staticmethod
    def _make_grad_output_hook(trace: LayerSparsityTrace):
        def hook(grad: np.ndarray) -> np.ndarray:
            trace.grad_output_densities.append(density(grad))
            return grad

        return hook

    @staticmethod
    def _make_grad_input_hook(trace: LayerSparsityTrace):
        def hook(grad: np.ndarray) -> np.ndarray:
            trace.grad_input_densities.append(density(grad))
            return grad

        return hook

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def layer_names(self) -> list[str]:
        return list(self.traces.keys())

    def trace_for(self, layer_name: str) -> LayerSparsityTrace:
        if layer_name not in self.traces:
            raise KeyError(f"no trace recorded for layer {layer_name!r}")
        return self.traces[layer_name]

    def mean_densities(self) -> dict[str, dict[str, float]]:
        """Per-layer mean densities of I, dO and dI."""
        return {
            name: {
                "input": trace.mean_input_density(),
                "grad_output": trace.mean_grad_output_density(),
                "grad_input": trace.mean_grad_input_density(),
            }
            for name, trace in self.traces.items()
        }

    def detach(self) -> None:
        """Remove the profiler hooks from the model.

        Note this clears *all* hooks of the instrumented convolutions,
        including pruning hooks, so re-attach the pruning controller if you
        need it afterwards.
        """
        for conv in iter_convs(self.model):
            conv.clear_hooks()
