"""Table I style summary: sparsity class of the six training data types.

The paper's Table I states which of the six tensors involved in training a
CONV layer (W, dW, I, dI, O, dO) are dense and which are sparse.  This module
derives that classification from *measured* densities of a real training run
rather than asserting it, so the reproduction can verify the claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparsity.stats import classify


# Expected classification from the paper's Table I.
PAPER_TABLE1 = {
    "W": "dense",
    "dW": "dense",
    "I": "sparse",
    "dI": "dense",
    "O": "dense",
    "dO": "sparse",
}


@dataclass(frozen=True)
class DataTypeSparsity:
    """Measured density and derived class of one training data type."""

    symbol: str
    description: str
    mean_density: float
    classification: str
    paper_classification: str

    @property
    def matches_paper(self) -> bool:
        return self.classification == self.paper_classification


def summarize_data_types(
    weight_density: float,
    weight_grad_density: float,
    input_density: float,
    grad_input_density: float,
    output_density: float,
    grad_output_density: float,
    dense_cutoff: float = 0.75,
) -> list[DataTypeSparsity]:
    """Build a Table I style summary from measured mean densities."""
    rows = [
        ("W", "Weights", weight_density),
        ("dW", "Weight Gradients", weight_grad_density),
        ("I", "Input Activations", input_density),
        ("dI", "Gradients to Input Activations", grad_input_density),
        ("O", "Output Activations", output_density),
        ("dO", "Gradients to Output Activations", grad_output_density),
    ]
    summary: list[DataTypeSparsity] = []
    for symbol, description, value in rows:
        if not np.isfinite(value):
            raise ValueError(f"density for {symbol} is not finite: {value}")
        summary.append(
            DataTypeSparsity(
                symbol=symbol,
                description=description,
                mean_density=float(value),
                classification=classify(value, dense_cutoff),
                paper_classification=PAPER_TABLE1[symbol],
            )
        )
    return summary


def format_table(summary: list[DataTypeSparsity]) -> str:
    """Render the summary as a fixed-width text table."""
    header = f"{'Data Type':<34}{'Symbol':<8}{'Density':>9}  {'Class':<7}{'Paper':<7}"
    lines = [header, "-" * len(header)]
    for row in summary:
        lines.append(
            f"{row.description:<34}{row.symbol:<8}{row.mean_density:>9.3f}  "
            f"{row.classification:<7}{row.paper_classification:<7}"
        )
    return "\n".join(lines)
