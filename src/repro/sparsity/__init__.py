"""Sparsity measurement, profiling and summaries."""

from repro.sparsity.profiler import LayerSparsityTrace, SparsityProfiler, iter_convs
from repro.sparsity.stats import (
    TensorSparsityStats,
    classify,
    density,
    nnz,
    row_densities,
    sparsity,
    tensor_stats,
)
from repro.sparsity.summary import (
    PAPER_TABLE1,
    DataTypeSparsity,
    format_table,
    summarize_data_types,
)

__all__ = [
    "density",
    "sparsity",
    "nnz",
    "row_densities",
    "classify",
    "tensor_stats",
    "TensorSparsityStats",
    "SparsityProfiler",
    "iter_convs",
    "LayerSparsityTrace",
    "DataTypeSparsity",
    "summarize_data_types",
    "format_table",
    "PAPER_TABLE1",
]
