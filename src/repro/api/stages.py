"""The experiment stage graph: named stages, pipeline, per-stage caching.

Every experiment in the reproduction is a linear pipeline over a fixed,
canonical stage vocabulary:

=============  ==========================================================
``train``      train (reduced) models — with the pruning controller and
               sparsity profiler attached, since the paper's algorithm
               prunes *during* training
``prune``      pruning-algorithm work that runs without a model (e.g. the
               FIFO threshold-prediction ablation)
``profile``    turn raw measurements into per-layer operand densities /
               summaries and map them onto full-size specs
``compile``    lower specs + densities into simulator work units
               (instruction programs, workload jobs, design points)
``simulate``   execute work units on the architecture model — the stage
               that fans out over the :class:`~repro.api.runner.Runner`
``report``     package payload + summary + native result
               (:class:`~repro.api.request.ExperimentReport`)
=============  ==========================================================

A concrete :class:`Pipeline` uses an order-preserving subset of that
vocabulary (Fig. 8 is ``train -> profile -> compile -> simulate -> report``;
the FIFO ablation is just ``prune -> report``).  The
:class:`PipelineContext` threads the request, run options, runner, artifacts
and per-stage timings through the stages, and exposes the per-stage caching
hook (:meth:`PipelineContext.cached`) that the density and sweep caches plug
into.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.api.request import ExperimentRequest, RunOptions
from repro.api.runner import Runner
from repro.faults import fault_point
from repro.obs import metrics, trace_context, trace_span

# The canonical stage vocabulary, in canonical order.
STAGE_ORDER: tuple[str, ...] = (
    "train",
    "prune",
    "profile",
    "compile",
    "simulate",
    "report",
)


class DeadlineExceeded(RuntimeError):
    """A pipeline run outlived its cooperative per-job deadline.

    Raised at a stage boundary — stages themselves are never interrupted
    mid-flight — and treated as a *terminal* failure by the job service: a
    job that blew its budget once is not retried into blowing it again,
    and its worker is freed instead of heartbeating a wedged lease forever.
    """

    def __init__(self, deadline: float, overshoot: float) -> None:
        super().__init__(
            f"pipeline exceeded its deadline by {overshoot:.3f}s"
            f" (deadline was {deadline:.3f}s epoch)"
        )
        self.deadline = deadline
        self.overshoot = overshoot


@dataclass(frozen=True)
class Stage:
    """One named pipeline stage.

    ``run`` receives the :class:`PipelineContext` and returns the stage's
    artifact, which later stages read via ``ctx["<stage>"]``.
    """

    name: str
    run: Callable[["PipelineContext"], Any]
    description: str = ""

    def __post_init__(self) -> None:
        if self.name not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage name {self.name!r}; canonical stages are "
                f"{', '.join(STAGE_ORDER)}"
            )


@dataclass
class PipelineContext:
    """Mutable state threaded through one pipeline run.

    ``on_stage`` is the progress hook for long-running callers (the job
    service, progress bars): invoked as ``on_stage(stage_name, seconds)``
    right after each stage completes.  Exceptions from the callback propagate
    and abort the run — a broken observer should fail loudly, not corrupt a
    silently half-observed result.
    """

    request: ExperimentRequest
    options: RunOptions = field(default_factory=RunOptions)
    runner: Runner = field(default_factory=lambda: Runner(parallel=False))
    extras: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    cache_events: dict[str, list[tuple[str, bool]]] = field(default_factory=dict)
    current_stage: str | None = None
    on_stage: Callable[[str, float], None] | None = None
    #: Absolute epoch-seconds deadline, or ``None`` for no budget.  Checked
    #: cooperatively at stage boundaries via :meth:`check_deadline`.
    deadline: float | None = None
    #: Distributed-trace correlation id.  When set, :meth:`Pipeline.run`
    #: enters the matching trace context so every stage span is stamped
    #: with it; ``None`` inherits whatever ambient context the caller (a
    #: fleet worker, the scheduler) already established.
    trace_id: str | None = None

    def check_deadline(self, now: float | None = None) -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if self.deadline is None:
            return
        now = time.time() if now is None else now
        if now > self.deadline:
            metrics().counter("pipeline.deadline_exceeded").inc()
            raise DeadlineExceeded(self.deadline, now - self.deadline)

    def __getitem__(self, stage: str) -> Any:
        try:
            return self.artifacts[stage]
        except KeyError:
            raise KeyError(
                f"no artifact for stage {stage!r}; stages completed so far: "
                f"{sorted(self.artifacts)}"
            ) from None

    # ------------------------------------------------------------------
    # Per-stage caching hook
    # ------------------------------------------------------------------
    def cached(
        self,
        key: str,
        compute: Callable[[], Any],
        store: Any = None,
        serialize: Callable[[Any], Mapping[str, Any]] | None = None,
        deserialize: Callable[[Mapping[str, Any]], Any] | None = None,
    ) -> Any:
        """Get-or-compute one value through a persistent stage cache.

        ``store`` is any object with the :class:`repro.explore.cache.ResultCache`
        ``get``/``put`` protocol, or ``None`` to disable caching (``compute``
        always runs).  ``serialize``/``deserialize`` convert between the
        computed value and the stored JSON record; identity by default.
        Every lookup is recorded per stage so callers (and
        :class:`ExperimentResult`) can report hit rates.
        """
        hit = False
        value: Any = None
        if store is not None:
            record = store.get(key)
            if record is not None:
                try:
                    value = deserialize(record) if deserialize else record
                    hit = True
                except (KeyError, TypeError, ValueError):
                    # Foreign/corrupted record under this key: recompute.
                    hit = False
        if not hit:
            value = compute()
            if store is not None:
                store.put(key, serialize(value) if serialize else value)
        stage = self.current_stage or "?"
        self.cache_events.setdefault(stage, []).append((key, hit))
        metrics().counter(
            "pipeline.cache.lookups", stage=stage, outcome="hit" if hit else "miss"
        ).inc()
        return value

    def stage_cache_hit(self, stage: str) -> bool:
        """True when the stage performed lookups and every one was a hit."""
        events = self.cache_events.get(stage, [])
        return bool(events) and all(hit for _, hit in events)

    def stage_cache_hits(self) -> dict[str, bool]:
        return {stage: self.stage_cache_hit(stage) for stage in self.cache_events}


class Pipeline:
    """An ordered set of named stages executed over one context.

    Stage names must be unique and follow the canonical :data:`STAGE_ORDER`
    (as a subsequence), so every experiment's graph reads the same way and
    tooling can compare pipelines structurally.
    """

    def __init__(self, name: str, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage name(s) in {names}")
        order = [name for name in STAGE_ORDER if name in names]
        if names != order:
            raise ValueError(
                f"stages {names} must follow the canonical order {STAGE_ORDER}"
            )
        if names[-1] != "report":
            raise ValueError("every pipeline must end with a 'report' stage")
        self.name = name
        self.stages: tuple[Stage, ...] = tuple(stages)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"pipeline {self.name!r} has no stage {name!r}")

    def run(self, ctx: PipelineContext) -> Any:
        """Execute the stages in order; returns the last stage's artifact.

        Each stage is timed (``ctx.timings``), recorded as one trace span
        (``stage.<name>``) nested under a ``pipeline.<name>`` root span, and
        observed into the ``pipeline.stage.seconds`` histogram keyed by stage
        name — the distribution the ``/stats`` p50/p95 view reads.
        """
        artifact: Any = None
        experiment = ctx.request.experiment
        # A ``None`` trace_id pushes an empty overlay frame: ambient context
        # (a worker's job scope) flows through untouched.
        with trace_context(trace_id=ctx.trace_id), trace_span(
            f"pipeline.{self.name}", experiment=experiment
        ):
            for stage in self.stages:
                # The cooperative interruption seam: a fault plan can wedge
                # (hang) or break a run exactly between stages, and the
                # deadline check fails an over-budget job before it burns
                # another stage.  Context stays cheap — strings only.
                fault_point(
                    "stage.boundary", stage=stage.name, experiment=experiment
                )
                ctx.check_deadline()
                ctx.current_stage = stage.name
                with trace_span(
                    f"stage.{stage.name}", experiment=experiment, pipeline=self.name
                ):
                    start = time.perf_counter()
                    artifact = stage.run(ctx)
                    ctx.timings[stage.name] = time.perf_counter() - start
                metrics().histogram(
                    "pipeline.stage.seconds", stage=stage.name
                ).observe(ctx.timings[stage.name])
                ctx.artifacts[stage.name] = artifact
                if ctx.on_stage is not None:
                    ctx.on_stage(stage.name, ctx.timings[stage.name])
        metrics().counter("pipeline.runs", experiment=experiment).inc()
        ctx.current_stage = None
        return artifact

    def describe(self) -> str:
        return f"{self.name}: " + " -> ".join(self.stage_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline({self.describe()})"


def fidelity_dispatch(
    ctx: PipelineContext,
    *,
    vectorized: Callable[[PipelineContext], Any],
    analytic: Callable[[PipelineContext], Any] | None = None,
    scalar: Callable[[PipelineContext], Any] | None = None,
) -> Any:
    """Route a ``simulate`` stage to the tier the request asks for.

    The single dispatch point of the fidelity knob: an experiment's simulate
    stage calls this with its tier implementations, and the request's
    ``fidelity`` field picks one.  ``scalar`` falls back to ``vectorized``
    when not given (the tiers are numerically identical; scalar is the
    serial trust anchor, so an experiment without a dedicated serial path
    simply runs the default one).  An experiment without an ``analytic``
    implementation rejects that tier loudly — silently simulating at the
    wrong tier would poison fidelity-salted caches.
    """
    from repro.analytic.fidelity import Fidelity, fidelity_of

    tier = fidelity_of(ctx.request)
    if tier is Fidelity.ANALYTIC and analytic is None:
        raise ValueError(
            f"experiment {ctx.request.experiment!r} has no analytic tier; "
            "run it at --fidelity vectorized or scalar"
        )
    metrics().counter(
        "pipeline.fidelity.dispatch",
        tier=tier.value,
        experiment=ctx.request.experiment,
    ).inc()
    if tier is Fidelity.ANALYTIC:
        return analytic(ctx)
    if tier is Fidelity.SCALAR and scalar is not None:
        return scalar(ctx)
    return vectorized(ctx)


__all__ = [
    "DeadlineExceeded",
    "STAGE_ORDER",
    "Stage",
    "Pipeline",
    "PipelineContext",
    "fidelity_dispatch",
]
