"""Typed experiment requests and results — the serializable API boundary.

An :class:`ExperimentRequest` is the complete, immutable description of *what*
to compute: which registered experiment, over which workloads, at which
pruning rate and :class:`~repro.eval.common.ExperimentScale`, with which
experiment-specific parameters.  It is JSON round-trippable
(``to_dict``/``from_dict``/``to_json``/``from_json``) and content-hashable
(:attr:`ExperimentRequest.content_hash`), so a request can be logged, shipped
to a service, compared across machines, or used as a cache key.

*How* to execute is deliberately kept out of the request:
:class:`RunOptions` carries the execution knobs (worker count, cache
directory, cache enablement) that must not change the result — and therefore
must not change the content hash.

An :class:`ExperimentResult` is the JSON-serializable outcome: the request
that produced it, a payload dict of the experiment's numbers, a formatted
summary, and per-stage timings/cache hits from the pipeline run.  Library
callers additionally get the harness-native result object (``Fig8Result``,
``Table2Result``, ...) via the non-serialized ``native`` field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

# Import-light by design (stdlib-only module): the fidelity knob is part of
# the request schema, so the enum lives in a leaf module both layers can use.
from repro.analytic.fidelity import DEFAULT_FIDELITY, Fidelity

# Default cache location; kept textually in sync with
# ``repro.explore.cache.DEFAULT_CACHE_DIR`` (asserted by the API test suite)
# so the API layer stays import-free at module load.
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_json(payload: Any) -> str:
    """Canonical (sorted-key, compact) JSON text for hashing and storage."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    """Deterministic sha256 content hash of a JSON-serialisable value."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _jsonify(value: Any) -> Any:
    """Normalise a parameter value to its JSON-native form.

    Tuples become lists, mappings become plain dicts (keys must be strings),
    and anything JSON cannot represent is rejected up front — a request that
    cannot round-trip must fail at construction, not at serialization time.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"parameter mapping keys must be strings, got {key!r}")
            out[key] = _jsonify(item)
        return out
    raise TypeError(
        f"parameter value {value!r} is not JSON-serialisable; requests must "
        "round-trip through JSON (pass non-serialisable objects as run() "
        "extras instead)"
    )


def scale_to_dict(scale: Any) -> dict[str, Any]:
    """JSON-native mapping of an :class:`ExperimentScale` (tuples -> lists).

    The single serialization of the scale knobs — request serialization and
    the density-cache key (:mod:`repro.eval.density_cache`) both use it, so
    a new non-JSON-native field only needs handling here.
    """
    from dataclasses import asdict

    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in asdict(scale).items()
    }


def _scale_from_dict(data: Mapping[str, Any]):
    from repro.eval.common import ExperimentScale

    kwargs = dict(data)
    if "resnet_blocks" in kwargs:
        kwargs["resnet_blocks"] = tuple(kwargs["resnet_blocks"])
    return ExperimentScale(**kwargs)


@dataclass(frozen=True)
class ExperimentRequest:
    """One immutable, serializable experiment description.

    Attributes
    ----------
    experiment:
        Name of a registered experiment (see :mod:`repro.api.registry`).
    workloads:
        ``(model, dataset)`` pairs.  Names are normalised at construction
        (``"resnet18"`` -> ``"ResNet-18"``) and validated against the
        workload registry; an empty tuple means "the experiment's default
        grid".
    pruning_rate:
        Target activation-gradient pruning rate p.
    scale:
        The :class:`~repro.eval.common.ExperimentScale` fidelity knobs.
        ``None`` (the default) resolves to ``ExperimentScale.quick()``.
    params:
        Experiment-specific parameters as a sorted ``(name, value)`` tuple;
        values must be JSON-native (lists/dicts/str/num/bool/None).
    fidelity:
        Cost-model tier (``"analytic"``/``"vectorized"``/``"scalar"``, see
        :mod:`repro.analytic.fidelity`).  Content-hash-affecting: the tier
        changes the provenance of the result, so two requests differing only
        in fidelity must never share a cache entry.  Serialized only when it
        differs from the default so every pre-existing request hash is
        unchanged.
    """

    experiment: str
    workloads: tuple[tuple[str, str], ...] = ()
    pruning_rate: float = 0.9
    scale: Any = None
    params: tuple[tuple[str, Any], ...] = ()
    fidelity: str = DEFAULT_FIDELITY.value

    def __post_init__(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise ValueError("experiment must be a non-empty string")
        if not 0.0 <= float(self.pruning_rate) < 1.0:
            raise ValueError(
                f"pruning_rate must be in [0, 1), got {self.pruning_rate}"
            )
        object.__setattr__(self, "pruning_rate", float(self.pruning_rate))

        scale = self.scale
        if scale is None:
            from repro.eval.common import ExperimentScale

            scale = ExperimentScale.quick()
        object.__setattr__(self, "scale", scale)

        object.__setattr__(
            self, "workloads", _normalize_workloads(self.workloads)
        )

        params = self.params
        if isinstance(params, Mapping):
            params = tuple(params.items())
        normalized = tuple(
            sorted((str(name), _jsonify(value)) for name, value in params)
        )
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter name(s) in {names}")
        object.__setattr__(self, "params", normalized)

        object.__setattr__(
            self, "fidelity", Fidelity.normalize(self.fidelity).value
        )

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def param(self, name: str, default: Any = None) -> Any:
        """One experiment-specific parameter, or ``default`` when unset."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def with_params(self, **updates: Any) -> "ExperimentRequest":
        """Copy of this request with parameters added/replaced."""
        merged = dict(self.params)
        merged.update(updates)
        return ExperimentRequest(
            experiment=self.experiment,
            workloads=self.workloads,
            pruning_rate=self.pruning_rate,
            scale=self.scale,
            params=tuple(merged.items()),
            fidelity=self.fidelity,
        )

    def with_fidelity(self, fidelity: Any) -> "ExperimentRequest":
        """Copy of this request at another cost-model tier."""
        return ExperimentRequest(
            experiment=self.experiment,
            workloads=self.workloads,
            pruning_rate=self.pruning_rate,
            scale=self.scale,
            params=self.params,
            fidelity=Fidelity.normalize(fidelity).value,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = {
            "experiment": self.experiment,
            "workloads": [list(pair) for pair in self.workloads],
            "pruning_rate": self.pruning_rate,
            "scale": scale_to_dict(self.scale),
            "params": {name: value for name, value in self.params},
        }
        # Omitted at the default tier so legacy request hashes are stable.
        if self.fidelity != DEFAULT_FIDELITY.value:
            data["fidelity"] = self.fidelity
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentRequest":
        return cls(
            experiment=data["experiment"],
            workloads=tuple(tuple(pair) for pair in data.get("workloads", ())),
            pruning_rate=data.get("pruning_rate", 0.9),
            scale=_scale_from_dict(data["scale"]) if data.get("scale") else None,
            params=tuple(dict(data.get("params", {})).items()),
            fidelity=data.get("fidelity", DEFAULT_FIDELITY.value),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRequest":
        return cls.from_dict(json.loads(text))

    @property
    def content_hash(self) -> str:
        """Stable content hash identifying this request across processes."""
        return content_hash(self.to_dict())


def _normalize_workloads(
    workloads: Sequence[Sequence[str]],
) -> tuple[tuple[str, str], ...]:
    """Canonicalise and validate ``(model, dataset)`` pairs.

    Unknown model or dataset names raise a helpful error listing the
    registered alternatives — the CLI surfaces it verbatim.
    """
    if not workloads:
        return ()
    from repro.api.registry import WORKLOADS, ensure_builtins_registered
    from repro.models.zoo import (
        KNOWN_DATASETS,
        normalize_dataset_name,
        normalize_model_name,
    )

    ensure_builtins_registered()
    normalized: list[tuple[str, str]] = []
    for pair in workloads:
        model, dataset = pair
        model_name = normalize_model_name(model)
        dataset_name = normalize_dataset_name(dataset)
        if model_name not in WORKLOADS:
            raise ValueError(
                f"unknown workload model {model!r}; registered models: "
                f"{', '.join(WORKLOADS.names())}"
            )
        if dataset_name not in KNOWN_DATASETS:
            raise ValueError(
                f"unknown dataset {dataset!r}; known datasets: "
                f"{', '.join(KNOWN_DATASETS)}"
            )
        normalized.append((model_name, dataset_name))
    return tuple(normalized)


@dataclass(frozen=True)
class RunOptions:
    """Execution knobs that do not change the result (and are not hashed).

    Attributes
    ----------
    max_workers:
        Worker processes for stages that fan out.  ``None``/``1`` = serial.
    parallel:
        Master parallelism switch: ``False`` forces serial execution in
        every stage regardless of ``max_workers``; ``True`` (default) lets
        the worker count decide (design-space sweeps additionally use the
        self-sizing pool when ``max_workers`` is ``None``).
    use_cache:
        Enable the persistent per-stage disk caches.
    cache_dir:
        Directory holding the density and sweep caches.
    """

    max_workers: int | None = None
    parallel: bool = True
    use_cache: bool = True
    cache_dir: str | Path = DEFAULT_CACHE_DIR

    def density_cache(self):
        """The measured-density store (``None`` when caching is off)."""
        if not self.use_cache:
            return None
        from repro.eval.density_cache import default_density_cache

        return default_density_cache(self.cache_dir)

    def sweep_cache(self):
        """The design-space result store (``None`` when caching is off)."""
        if not self.use_cache:
            return None
        from repro.explore.cache import DEFAULT_CACHE_FILE, ResultCache

        return ResultCache(Path(self.cache_dir) / DEFAULT_CACHE_FILE)


@dataclass(frozen=True)
class ExperimentReport:
    """What a pipeline's ``report`` stage returns.

    ``payload`` must be JSON-serialisable (it becomes
    :attr:`ExperimentResult.payload`); ``summary`` is the human-readable
    rendering; ``native`` carries the harness-native result object for
    library callers and is never serialized.
    """

    payload: dict[str, Any]
    summary: str
    native: Any = None


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one pipeline run, JSON-serialisable end to end."""

    experiment: str
    request: ExperimentRequest
    payload: dict[str, Any]
    summary: str
    timings: tuple[tuple[str, float], ...] = ()
    cache_hits: tuple[tuple[str, bool], ...] = ()
    native: Any = field(default=None, compare=False, repr=False)

    @property
    def stage_seconds(self) -> dict[str, float]:
        return dict(self.timings)

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "request": self.request.to_dict(),
            "payload": self.payload,
            "summary": self.summary,
            "timings": {name: seconds for name, seconds in self.timings},
            "cache_hits": {name: hit for name, hit in self.cache_hits},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            experiment=data["experiment"],
            request=ExperimentRequest.from_dict(data["request"]),
            payload=dict(data.get("payload", {})),
            summary=data.get("summary", ""),
            timings=tuple(dict(data.get("timings", {})).items()),
            cache_hits=tuple(dict(data.get("cache_hits", {})).items()),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExperimentReport",
    "ExperimentRequest",
    "ExperimentResult",
    "RunOptions",
    "canonical_json",
    "content_hash",
]
