"""Decorator-based registries: workloads and experiments.

Instead of each harness hand-wiring its own train/prune/profile/compile/
simulate chain, harness modules *register* two kinds of entries:

* **workloads** (:func:`register_workload`) — named model families whose
  full-size :class:`~repro.models.spec.ModelSpec` the zoo can build per
  dataset.  ``repro.models.zoo`` registers the paper's AlexNet/ResNet grid
  plus the VGG/MobileNet families.
* **experiments** (:func:`register_experiment`) — named pipeline builders.
  ``eval/fig8``, ``eval/fig9``, ``eval/table1``, ``eval/table2``,
  ``eval/ablations``, ``bench`` and ``explore/experiments`` each register
  one or more.

Every consumer — the CLI, the figure harness wrappers, services built on
top — resolves names through the same :class:`Registry`, so an unknown name
fails with a listing of what *is* registered, and adding a new experiment or
workload is a registry entry, not a new module of wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.api.request import (
    ExperimentReport,
    ExperimentRequest,
    ExperimentResult,
    RunOptions,
)
from repro.api.runner import default_runner
from repro.api.stages import Pipeline, PipelineContext


class UnknownNameError(ValueError):
    """Lookup of an unregistered name; the message lists the alternatives."""


class Registry:
    """A small name -> entry map with helpful errors and decorator support."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def add(self, name: str, entry: Any) -> Any:
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def items(self) -> Iterator[tuple[str, Any]]:
        for name in self.names():
            yield name, self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class Workload:
    """One registered model family entry.

    ``build(dataset)`` returns the full-size :class:`ModelSpec`; ``family``
    names the reduced model family whose training run measures densities for
    this workload.
    """

    name: str
    family: str
    build: Callable[[str], Any]
    datasets: tuple[str, ...] = ("CIFAR-10", "CIFAR-100", "ImageNet")
    description: str = ""

    def spec(self, dataset: str):
        return self.build(dataset)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: a named pipeline builder.

    ``build(request)`` returns the :class:`Pipeline` for one request; the
    pipeline's ``report`` stage must return an
    :class:`~repro.api.request.ExperimentReport`.
    """

    name: str
    build: Callable[[ExperimentRequest], Pipeline]
    description: str = ""
    tags: tuple[str, ...] = field(default=())
    #: Grouping used by ``repro list`` (``"paper-figures"``,
    #: ``"design-space"``, ``"ablations"``, ...).
    category: str = "general"
    #: Whether the experiment's simulate stage dispatches on the request's
    #: fidelity tier (``--fidelity`` is meaningful).
    supports_fidelity: bool = False

    def pipeline(self, request: ExperimentRequest) -> Pipeline:
        return self.build(request)

    def run(
        self,
        request: ExperimentRequest,
        options: RunOptions | None = None,
        extras: dict[str, Any] | None = None,
        on_stage: Callable[[str, float], None] | None = None,
        deadline: float | None = None,
        trace_id: str | None = None,
    ) -> ExperimentResult:
        """Execute the pipeline for ``request`` and package the result.

        ``on_stage`` is the per-stage progress callback
        (``on_stage(stage_name, seconds)``), invoked as each stage completes —
        the hook the job service uses to persist live stage timings.
        ``deadline`` is an absolute epoch-seconds budget checked at stage
        boundaries; past it the run raises
        :class:`~repro.api.stages.DeadlineExceeded`.
        ``trace_id`` stamps every span of the run for cross-process trace
        merging; when omitted it is inherited from the ambient trace context
        (the one a fleet worker establishes around execution).
        """
        if request.experiment != self.name:
            raise ValueError(
                f"request is for experiment {request.experiment!r}, "
                f"not {self.name!r}"
            )
        options = options if options is not None else RunOptions()
        # ``parallel=False`` forces the serial path; otherwise the worker
        # count decides (None/1 = serial, >1 = pool), matching the historical
        # ``simulate_many`` semantics the fig/bench pipelines rely on.
        if trace_id is None:
            from repro.obs import current_trace

            trace_id = current_trace().trace_id
        ctx = PipelineContext(
            request=request,
            options=options,
            runner=default_runner(
                options.max_workers, None if options.parallel else False
            ),
            extras=dict(extras or {}),
            on_stage=on_stage,
            deadline=deadline,
            trace_id=trace_id,
        )
        pipeline = self.pipeline(request)
        report = pipeline.run(ctx)
        if not isinstance(report, ExperimentReport):
            raise TypeError(
                f"the report stage of {self.name!r} returned "
                f"{type(report).__name__}, expected ExperimentReport"
            )
        return ExperimentResult(
            experiment=self.name,
            request=request,
            payload=report.payload,
            summary=report.summary,
            timings=tuple(
                (name, ctx.timings[name]) for name in pipeline.stage_names
            ),
            cache_hits=tuple(sorted(ctx.stage_cache_hits().items())),
            native=report.native,
        )


WORKLOADS = Registry("workload")
EXPERIMENTS = Registry("experiment")


def register_workload(
    name: str,
    family: str,
    datasets: tuple[str, ...] = ("CIFAR-10", "CIFAR-100", "ImageNet"),
    description: str = "",
) -> Callable[[Callable[[str], Any]], Callable[[str], Any]]:
    """Decorator registering a ``dataset -> ModelSpec`` builder as a workload."""

    def decorator(build: Callable[[str], Any]) -> Callable[[str], Any]:
        WORKLOADS.add(
            name,
            Workload(
                name=name,
                family=family,
                build=build,
                datasets=datasets,
                description=description,
            ),
        )
        return build

    return decorator


def register_experiment(
    name: str,
    description: str = "",
    tags: tuple[str, ...] = (),
    category: str = "general",
    supports_fidelity: bool = False,
) -> Callable[[Callable[[ExperimentRequest], Pipeline]], Callable[[ExperimentRequest], Pipeline]]:
    """Decorator registering a ``request -> Pipeline`` builder as an experiment."""

    def decorator(
        build: Callable[[ExperimentRequest], Pipeline],
    ) -> Callable[[ExperimentRequest], Pipeline]:
        EXPERIMENTS.add(
            name,
            Experiment(
                name=name,
                build=build,
                description=description,
                tags=tags,
                category=category,
                supports_fidelity=supports_fidelity,
            ),
        )
        return build

    return decorator


_BUILTINS_LOADED = False


def ensure_builtins_registered() -> None:
    """Import the modules that register the built-in workloads/experiments.

    Registration happens at module import time; this forces those imports
    exactly once, lazily, so ``repro.api`` itself stays import-light and free
    of circular dependencies.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.analytic.validate  # noqa: F401  (analytic-validate)
    import repro.bench  # noqa: F401  (registers: bench)
    import repro.eval.ablations  # noqa: F401  (ablate-fifo/-rate/-pes/-energy)
    import repro.eval.fig8  # noqa: F401  (fig8)
    import repro.eval.fig9  # noqa: F401  (fig9)
    import repro.eval.table1  # noqa: F401  (table1)
    import repro.eval.table2  # noqa: F401  (table2)
    import repro.explore.experiments  # noqa: F401  (sweep, pareto)
    import repro.models.zoo  # noqa: F401  (the workload grid)
    # Only marked loaded once every import succeeded: a failed import is
    # retried (and re-reported accurately) on the next lookup instead of
    # leaving a silently half-populated registry.  Modules that did register
    # are cached in sys.modules, so the retry cannot double-register.
    _BUILTINS_LOADED = True


def get_experiment(name: str) -> Experiment:
    ensure_builtins_registered()
    return EXPERIMENTS.get(name)


def get_workload(name: str) -> Workload:
    ensure_builtins_registered()
    return WORKLOADS.get(name)


def list_experiments() -> tuple[Experiment, ...]:
    ensure_builtins_registered()
    return tuple(entry for _, entry in EXPERIMENTS.items())


def list_workloads() -> tuple[Workload, ...]:
    ensure_builtins_registered()
    return tuple(entry for _, entry in WORKLOADS.items())


def run_experiment(
    request: ExperimentRequest,
    options: RunOptions | None = None,
    extras: dict[str, Any] | None = None,
    on_stage: Callable[[str, float], None] | None = None,
    deadline: float | None = None,
    trace_id: str | None = None,
) -> ExperimentResult:
    """Resolve ``request.experiment`` in the registry and execute it."""
    return get_experiment(request.experiment).run(
        request, options, extras, on_stage, deadline, trace_id
    )


__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "Registry",
    "UnknownNameError",
    "WORKLOADS",
    "Workload",
    "ensure_builtins_registered",
    "get_experiment",
    "get_workload",
    "list_experiments",
    "list_workloads",
    "register_experiment",
    "register_workload",
    "run_experiment",
]
