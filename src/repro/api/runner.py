"""The shared worker-pool execution primitive of the experiment pipeline.

Before the :mod:`repro.api` layer existed, every batch-parallel caller —
``sim.runner.simulate_many``, the exploration engine, the fig8/fig9
``--workers`` path — carried its own copy of the same ``ProcessPoolExecutor``
dance (chunk sizing, ordered results, the serial fallback for sandboxed
interpreters).  :class:`Runner` is that dance written once; every pipeline
stage that fans work out does so through a ``Runner`` owned by the pipeline
context.

The contract:

* results come back in input order, regardless of worker completion order;
* the callable and every item must be picklable when the pool is used;
* pool failures (sandboxes that forbid ``fork``/``spawn``, surfacing as
  ``OSError``/``PermissionError``/``BrokenProcessPool``) fall back to the
  in-process serial path, resuming after the last delivered result, so the
  output is identical either way;
* an interrupt (``KeyboardInterrupt``/``SystemExit`` from SIGTERM) or a
  worker exception mid-fan-out never orphans worker processes: queued
  futures are cancelled, live workers terminated and joined, and the
  exception re-raised.  Pass ``partial`` to :meth:`Runner.map` to keep the
  results delivered before the interrupt.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.obs import metrics

T = TypeVar("T")
R = TypeVar("R")

_POOL_ERRORS = (OSError, PermissionError, BrokenProcessPool)

# How long to wait for terminated workers to exit before abandoning them.
_ABORT_JOIN_SECONDS = 5.0


class _Timed:
    """Picklable wrapper timing one task inside the worker (or in-process).

    Returns ``(result, queue_wait, exec_seconds)``: the wait is measured from
    the batch submission wall-clock to task start (both ``time.time()``, so
    it crosses the process boundary on one machine), the execution time with
    the worker's own monotonic clock.  The parent unwraps and records both
    into the runner histograms as results are delivered.
    """

    __slots__ = ("fn", "submitted")

    def __init__(self, fn: Callable[[Any], Any], submitted: float) -> None:
        self.fn = fn
        self.submitted = submitted

    def __call__(self, item: Any) -> tuple[Any, float, float]:
        started = time.time()
        t0 = time.perf_counter()
        result = self.fn(item)
        return result, max(0.0, started - self.submitted), time.perf_counter() - t0


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: cancel queued work, terminate and join workers.

    The default ``shutdown(wait=True)`` of the executor's context manager
    waits for every already-submitted future — on a KeyboardInterrupt during
    a large fan-out that means minutes of zombie computation, and a parent
    that dies first leaves orphaned workers.  This path is deliberately
    impatient; it is only taken when the batch is already lost.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        process.terminate()
    deadline = time.monotonic() + _ABORT_JOIN_SECONDS
    for process in processes:
        process.join(max(0.0, deadline - time.monotonic()))


class Runner:
    """Order-preserving ``map`` over a worker-process pool with serial fallback.

    Parameters
    ----------
    max_workers:
        Worker-process count.  ``None`` lets ``ProcessPoolExecutor`` pick
        (one per CPU) when the pool is used at all.
    parallel:
        Master switch.  ``False`` always takes the in-process serial path —
        deterministic, test-friendly, and the only option where spawning
        processes is forbidden.  Even when ``True``, batches of one item run
        serially (a pool would only add overhead).
    """

    def __init__(self, max_workers: int | None = None, parallel: bool = True) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.parallel = parallel

    # ------------------------------------------------------------------
    def _chunksize(self, num_items: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, num_items // (4 * workers))

    def _use_pool(self, num_items: int) -> bool:
        return self.parallel and num_items > 1 and (self.max_workers or 2) > 1

    # ------------------------------------------------------------------
    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        """Stream ``fn(item)`` results in input order.

        If the pool breaks partway through, the serial path resumes after the
        last result already delivered, so every item is executed exactly once
        from the caller's point of view.
        """
        pending = list(items)
        delivered = 0
        registry = metrics()
        registry.counter("runner.tasks.submitted").inc(len(pending))
        timed = _Timed(fn, time.time())

        def deliver(out: tuple[R, float, float]) -> R:
            result, queue_wait, exec_seconds = out
            registry.histogram("runner.task.queue_wait_seconds").observe(queue_wait)
            registry.histogram("runner.task.exec_seconds").observe(exec_seconds)
            registry.counter("runner.tasks.completed").inc()
            return result

        if self._use_pool(len(pending)):
            registry.gauge("runner.pool.workers").set(
                self.max_workers or os.cpu_count() or 1
            )
            pool = ProcessPoolExecutor(max_workers=self.max_workers)
            try:
                for out in pool.map(
                    timed, pending, chunksize=self._chunksize(len(pending))
                ):
                    delivered += 1
                    yield deliver(out)
            except _POOL_ERRORS:
                # Sandboxed interpreter (fork/spawn forbidden) or a broken
                # pool: clean up and finish on the serial path below.
                _abort_pool(pool)
            except Exception:
                # A worker exception: the raising task failed, the rest of
                # the batch is torn down.
                registry.counter("runner.tasks.failed").inc()
                registry.counter("runner.tasks.cancelled").inc(
                    max(0, len(pending) - delivered - 1)
                )
                _abort_pool(pool)
                raise
            except BaseException:
                # KeyboardInterrupt/SystemExit, or an abandoned generator
                # (GeneratorExit): don't wait out the rest of the batch —
                # kill the workers and surface the exception.
                registry.counter("runner.tasks.cancelled").inc(
                    len(pending) - delivered
                )
                _abort_pool(pool)
                raise
            else:
                pool.shutdown(wait=True)
                return
            finally:
                # Every exit path — clean finish, pool fallback, worker
                # exception, interrupt — must zero the gauge, or an aborted
                # batch reports phantom pool workers forever.
                registry.gauge("runner.pool.workers").set(0)
        for item in pending[delivered:]:
            try:
                out = timed(item)
            except Exception:
                registry.counter("runner.tasks.failed").inc()
                registry.counter("runner.tasks.cancelled").inc(
                    max(0, len(pending) - delivered - 1)
                )
                raise
            except BaseException:
                registry.counter("runner.tasks.cancelled").inc(
                    len(pending) - delivered
                )
                raise
            delivered += 1
            yield deliver(out)

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T] | Iterable[T],
        partial: list[R] | None = None,
    ) -> list[R]:
        """``list(self.imap(fn, items))`` — the all-at-once convenience form.

        ``partial``, when given, is a caller-owned list that every result is
        appended to *as it is delivered*; if the batch is interrupted
        (KeyboardInterrupt, SIGTERM, a worker exception), the exception
        propagates but the list keeps everything completed so far.
        """
        results = partial if partial is not None else []
        for result in self.imap(fn, items):
            results.append(result)
        return results

    def describe(self) -> str:
        mode = "parallel" if self.parallel else "serial"
        workers = self.max_workers if self.max_workers is not None else "auto"
        return f"Runner({mode}, max_workers={workers})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def default_runner(
    max_workers: int | None = None, parallel: bool | None = None
) -> Runner:
    """The pipeline-context runner for a worker-count request.

    Mirrors the historical ``simulate_many`` semantics: no explicit worker
    count (or an explicit 1) means serial execution, anything larger opts into
    the pool.  Pass ``parallel`` to override that inference.
    """
    if parallel is None:
        parallel = max_workers is not None and max_workers > 1
    return Runner(max_workers=max_workers, parallel=parallel)


__all__ = ["Runner", "default_runner"]
