"""``repro.api`` — the stable, typed public API of the reproduction.

Every harness in this repository (Fig. 8/9, Table I/II, the ablations, the
benchmark, the design-space sweeps) executes through this layer:

* :class:`ExperimentRequest` / :class:`ExperimentResult` — frozen, JSON
  round-trippable, content-hashable descriptions of what to compute and what
  came out.
* :class:`Pipeline` / :class:`Stage` / :class:`PipelineContext` — the named
  stage graph (``train``, ``prune``, ``profile``, ``compile``, ``simulate``,
  ``report``) with per-stage timing and disk-caching hooks.
* :class:`Runner` — the single worker-pool fan-out primitive.
* :func:`register_workload` / :func:`register_experiment` — decorator-based
  registries that ``models/zoo``, the figure/table harnesses, ``bench`` and
  the exploration engine register into; :func:`run_experiment` resolves and
  executes by name.

Minimal use::

    from repro.api import ExperimentRequest, run_experiment

    result = run_experiment(
        ExperimentRequest(experiment="fig8",
                          workloads=(("AlexNet", "CIFAR-10"),))
    )
    print(result.summary)          # the Fig. 8 latency/speedup table
    print(result.to_json())        # full JSON: request, payload, timings

API stability: names exported here are the public surface, pinned by
``tests/api/test_surface.py``.  Additive changes are fine; renames/removals
require a deprecation cycle (see DESIGN.md).
"""

from __future__ import annotations

from repro.analytic.fidelity import DEFAULT_FIDELITY, FIDELITY_CHOICES, Fidelity, fidelity_of
from repro.api.registry import (
    EXPERIMENTS,
    Experiment,
    Registry,
    UnknownNameError,
    WORKLOADS,
    Workload,
    get_experiment,
    get_workload,
    list_experiments,
    list_workloads,
    register_experiment,
    register_workload,
    run_experiment,
)
from repro.api.request import (
    ExperimentReport,
    ExperimentRequest,
    ExperimentResult,
    RunOptions,
    canonical_json,
    content_hash,
)
from repro.api.runner import Runner, default_runner
from repro.api.stages import (
    DeadlineExceeded,
    STAGE_ORDER,
    Pipeline,
    PipelineContext,
    Stage,
    fidelity_dispatch,
)

__all__ = [
    "DEFAULT_FIDELITY",
    "DeadlineExceeded",
    "EXPERIMENTS",
    "FIDELITY_CHOICES",
    "Fidelity",
    "Experiment",
    "ExperimentReport",
    "ExperimentRequest",
    "ExperimentResult",
    "Pipeline",
    "PipelineContext",
    "Registry",
    "RunOptions",
    "Runner",
    "STAGE_ORDER",
    "Stage",
    "UnknownNameError",
    "WORKLOADS",
    "Workload",
    "canonical_json",
    "content_hash",
    "default_runner",
    "fidelity_dispatch",
    "fidelity_of",
    "get_experiment",
    "get_workload",
    "list_experiments",
    "list_workloads",
    "register_experiment",
    "register_workload",
    "run_experiment",
]
