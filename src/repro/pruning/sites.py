"""Selection of pruning positions inside a model (the paper's Fig. 4).

Two structural cases:

* **Conv-ReLU** (AlexNet style, no batch norm): the gradient flowing *out of*
  the convolution's backward pass (``dI``, propagated to the previous layer)
  is dense and symmetric around zero — that is the pruning target.  The
  gradient entering the conv (``dO``) is already naturally sparse because it
  just passed through a ReLU backward.
* **Conv-BN-ReLU** (ResNet style): BN's backward re-densifies the gradient, so
  the gradient entering the convolution's backward (``dO``) is dense — that is
  the pruning target.

``find_pruning_sites`` walks a model built from this library's layers and
returns, for every convolution, which gradient (input-side or output-side)
should be pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.nn.layers.activation import ReLU
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm2D
from repro.nn.layers.container import DepthwiseSeparableBlock, ResidualBlock, Sequential
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.shape import Dropout


class PruneSide(Enum):
    """Which gradient of a convolution the pruner attaches to."""

    INPUT_GRAD = "input_grad"    # dI — Conv-ReLU structures
    OUTPUT_GRAD = "output_grad"  # dO — Conv-BN-ReLU structures


@dataclass(frozen=True)
class PruningSite:
    """One convolution layer together with the gradient side to prune."""

    layer: Conv2D
    side: PruneSide

    @property
    def name(self) -> str:
        return self.layer.name


_TRANSPARENT = (MaxPool2D, AvgPool2D, GlobalAvgPool2D, Dropout)


def _iter_sequential_sites(seq: Sequential) -> Iterator[PruningSite]:
    layers = list(seq.layers)
    for index, layer in enumerate(layers):
        if isinstance(layer, (Sequential, ResidualBlock, DepthwiseSeparableBlock)):
            yield from find_pruning_sites(layer)
            continue
        if not isinstance(layer, Conv2D):
            continue
        # Look ahead, skipping layers that do not change the structural class.
        followed_by_bn = False
        followed_by_relu = False
        for successor in layers[index + 1 :]:
            if isinstance(successor, BatchNorm2D):
                followed_by_bn = True
                continue
            if isinstance(successor, ReLU):
                followed_by_relu = True
                break
            if isinstance(successor, _TRANSPARENT):
                continue
            break
        if followed_by_bn:
            yield PruningSite(layer, PruneSide.OUTPUT_GRAD)
        elif followed_by_relu:
            yield PruningSite(layer, PruneSide.INPUT_GRAD)
        else:
            # Convolution not followed by a non-linearity (e.g. the last layer
            # of a projection): still prune the propagated gradient dI, the
            # conservative default from the paper's Fig. 1e.
            yield PruningSite(layer, PruneSide.INPUT_GRAD)


def _iter_residual_sites(block: ResidualBlock) -> Iterator[PruningSite]:
    # Both convolutions in a basic block are Conv-BN(-ReLU) structures.
    yield PruningSite(block.conv1, PruneSide.OUTPUT_GRAD)
    yield PruningSite(block.conv2, PruneSide.OUTPUT_GRAD)
    if block.downsample_conv is not None:
        yield PruningSite(block.downsample_conv, PruneSide.OUTPUT_GRAD)


def _iter_depthwise_sites(block: DepthwiseSeparableBlock) -> Iterator[PruningSite]:
    # Depthwise and pointwise convolutions both sit in Conv-BN-ReLU
    # structures, so — grouped weight tensor or not — the pruning target is
    # the dense ``dO`` gradient entering each convolution's backward pass.
    yield PruningSite(block.depthwise, PruneSide.OUTPUT_GRAD)
    yield PruningSite(block.pointwise, PruneSide.OUTPUT_GRAD)


def find_pruning_sites(model: Layer) -> list[PruningSite]:
    """Return the pruning sites (conv layer + gradient side) of ``model``.

    Supports arbitrarily nested :class:`Sequential` and
    :class:`ResidualBlock` structures; bare convolutions passed directly are
    treated as Conv-ReLU style (prune ``dI``).
    """
    if isinstance(model, Sequential):
        return list(_iter_sequential_sites(model))
    if isinstance(model, ResidualBlock):
        return list(_iter_residual_sites(model))
    if isinstance(model, DepthwiseSeparableBlock):
        return list(_iter_depthwise_sites(model))
    if isinstance(model, Conv2D):
        return [PruningSite(model, PruneSide.INPUT_GRAD)]
    # Generic container: recurse into children in order.
    sites: list[PruningSite] = []
    for child in model.children():
        sites.extend(find_pruning_sites(child))
    return sites
