"""Model-level pruning controller.

``PruningController`` wires a :class:`~repro.pruning.layer_pruner.LayerPruner`
onto every pruning site of a model via the layer gradient hooks, and doubles
as a :class:`~repro.nn.trainer.Callback` so it can be dropped straight into a
``Trainer``.  It also aggregates the density statistics reported in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.trainer import Callback
from repro.pruning.config import PruningConfig
from repro.pruning.layer_pruner import LayerPruner
from repro.pruning.sites import PruneSide, PruningSite, find_pruning_sites
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class LayerDensityReport:
    """Density summary for one pruned layer."""

    layer_name: str
    side: str
    mean_density_before: float
    mean_density_after: float
    batches_pruned: int


@dataclass(frozen=True)
class DensityReport:
    """Model-wide density summary (drives the Table II reproduction)."""

    layers: tuple[LayerDensityReport, ...]

    @property
    def mean_density_before(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([l.mean_density_before for l in self.layers]))

    @property
    def mean_density_after(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([l.mean_density_after for l in self.layers]))

    @property
    def density_reduction(self) -> float:
        """How many times denser the unpruned gradients were (paper: 3x-10x)."""
        after = self.mean_density_after
        if after <= 0.0:
            return float("inf")
        return self.mean_density_before / after


class PruningController(Callback):
    """Attach layer-wise stochastic gradient pruning to a model.

    Parameters
    ----------
    model:
        The model to instrument.  Pruning sites are discovered automatically
        (see :func:`repro.pruning.sites.find_pruning_sites`) unless ``sites``
        is given explicitly.
    config:
        Pruning hyper-parameters.
    sites:
        Optional explicit list of sites, e.g. to prune only a subset of
        layers in an ablation.
    """

    def __init__(
        self,
        model: Layer,
        config: PruningConfig | None = None,
        sites: list[PruningSite] | None = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else PruningConfig()
        self.sites = sites if sites is not None else find_pruning_sites(model)
        rngs = spawn_rngs(self.config.seed, max(len(self.sites), 1))
        self.pruners: list[LayerPruner] = []
        for site, rng in zip(self.sites, rngs):
            pruner = LayerPruner(site.name, self.config, rng)
            self.pruners.append(pruner)
            if site.side is PruneSide.INPUT_GRAD:
                site.layer.register_grad_input_hook(pruner)
            else:
                site.layer.register_grad_output_hook(pruner)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Enable pruning on every instrumented layer."""
        for pruner in self.pruners:
            pruner.enabled = True

    def disable(self) -> None:
        """Disable pruning (gradients pass through untouched, stats still kept)."""
        for pruner in self.pruners:
            pruner.enabled = False

    def detach(self) -> None:
        """Remove all hooks installed by this controller."""
        for site in self.sites:
            site.layer.clear_hooks()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def density_report(self) -> DensityReport:
        """Aggregate per-layer density statistics collected so far."""
        layers = tuple(
            LayerDensityReport(
                layer_name=pruner.name,
                side=site.side.value,
                mean_density_before=pruner.stats.mean_density_before,
                mean_density_after=pruner.stats.mean_density_after,
                batches_pruned=pruner.stats.batches_pruned,
            )
            for site, pruner in zip(self.sites, self.pruners)
        )
        return DensityReport(layers=layers)

    def layer_densities(self) -> dict[str, float]:
        """Mapping from layer name to mean post-pruning density."""
        return {
            pruner.name: pruner.stats.mean_density_after for pruner in self.pruners
        }
