"""Stochastic gradient pruning (the paper's Fig. 3).

Given a threshold ``tau``, every gradient component ``g`` with ``|g| < tau``
is stochastically rounded to either ``0`` or ``sign(g) * tau``:

* with probability ``|g| / tau`` it becomes ``sign(g) * tau``;
* with probability ``1 - |g| / tau`` it becomes ``0``.

Components with ``|g| >= tau`` are left untouched.  The rounding is unbiased —
``E[prune(g)] = g`` for every component — which is the property that lets the
paper prune very aggressively (p up to 99%) without hurting convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class PruningResult:
    """Outcome of pruning one gradient tensor."""

    pruned: np.ndarray
    threshold: float
    density_before: float
    density_after: float

    @property
    def sparsity_after(self) -> float:
        """Fraction of exactly-zero components after pruning."""
        return 1.0 - self.density_after


def density(array: np.ndarray) -> float:
    """Fraction of non-zero components (the paper's ``rho_nnz``)."""
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array) / array.size)


def stochastic_prune(
    gradients: np.ndarray,
    threshold: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Apply unbiased stochastic pruning with the given threshold.

    Parameters
    ----------
    gradients:
        Gradient tensor of any shape; not modified in place.
    threshold:
        Pruning threshold ``tau``.  A non-positive threshold disables pruning
        and returns a copy of the input.
    rng:
        Random generator for the stochastic rounding.

    Returns
    -------
    numpy.ndarray
        The pruned gradient tensor, same shape and dtype as the input.
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    if threshold <= 0.0 or not np.isfinite(threshold):
        return gradients.copy()
    rng = derive_rng(rng)

    magnitude = np.abs(gradients)
    below = magnitude < threshold
    # r ~ U[0, 1); keep (snap to +/- tau) when |g| > tau * r, i.e. with
    # probability |g| / tau, otherwise set to zero.
    random = rng.random(gradients.shape)
    keep = magnitude > threshold * random
    snapped = np.sign(gradients) * threshold
    pruned = np.where(below, np.where(keep, snapped, 0.0), gradients)
    return pruned


def prune_with_stats(
    gradients: np.ndarray,
    threshold: float,
    rng: np.random.Generator | None = None,
) -> PruningResult:
    """Prune and report before/after density in one call."""
    gradients = np.asarray(gradients, dtype=np.float64)
    before = density(gradients)
    pruned = stochastic_prune(gradients, threshold, rng)
    return PruningResult(
        pruned=pruned,
        threshold=float(max(threshold, 0.0)),
        density_before=before,
        density_after=density(pruned),
    )
