"""Configuration of the gradient-pruning algorithm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class PruningConfig:
    """Hyper-parameters of the layer-wise gradient pruning.

    Attributes
    ----------
    target_sparsity:
        ``p`` in the paper: the fraction of gradient components the threshold
        aims to prune (0.7, 0.8, 0.9, 0.99 in Table II).
    fifo_depth:
        ``NF``: number of past batch thresholds averaged by the predictor.
    min_elements:
        Tensors smaller than this are never pruned (pruning a handful of
        values saves nothing and the normal-distribution assumption breaks
        down); mirrors how the paper only targets CONV-layer gradients.
    use_prediction:
        When ``True`` (the hardware-friendly mode and the paper's default),
        prune with the FIFO-predicted threshold.  When ``False``, determine
        the exact threshold on the current batch and prune with it (the
        two-pass reference scheme from [23] used for algorithm-only studies).
    seed:
        Base seed for the per-layer stochastic-rounding RNGs.
    """

    target_sparsity: float = 0.9
    fifo_depth: int = 5
    min_elements: int = 64
    use_prediction: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        check_probability(self.target_sparsity, "target_sparsity")
        check_positive_int(self.fifo_depth, "fifo_depth")
        check_positive_int(self.min_elements, "min_elements")

    def with_sparsity(self, target_sparsity: float) -> "PruningConfig":
        """Return a copy with a different target sparsity."""
        return PruningConfig(
            target_sparsity=target_sparsity,
            fifo_depth=self.fifo_depth,
            min_elements=self.min_elements,
            use_prediction=self.use_prediction,
            seed=self.seed,
        )
