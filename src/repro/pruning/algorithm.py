"""Reference implementation of the paper's Algorithm 1 (overall pruning scheme).

This module is the literal, batch-sequence form of the algorithm: given the
original activation gradients of ``N`` batches for one layer, produce the
sparse gradients using a FIFO of depth ``NF`` for threshold prediction.  The
hook-based :class:`~repro.pruning.controller.PruningController` is the
integrated form used during real training; this reference form exists so the
two can be cross-checked in tests and so the algorithm can be studied in
isolation (ablation E-A1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pruning.stochastic import density, stochastic_prune
from repro.pruning.threshold import ThresholdFIFO, determine_threshold
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass
class AlgorithmTrace:
    """Per-batch record of what Algorithm 1 did."""

    predicted_thresholds: list[float | None] = field(default_factory=list)
    exact_thresholds: list[float] = field(default_factory=list)
    densities_before: list[float] = field(default_factory=list)
    densities_after: list[float] = field(default_factory=list)

    @property
    def prediction_errors(self) -> list[float]:
        """Absolute relative error of the predicted vs exact threshold."""
        errors: list[float] = []
        for predicted, exact in zip(self.predicted_thresholds, self.exact_thresholds):
            if predicted is None or exact <= 0.0:
                continue
            errors.append(abs(predicted - exact) / exact)
        return errors


def prune_gradient_batches(
    batches: list[np.ndarray],
    target_sparsity: float,
    fifo_depth: int,
    rng: np.random.Generator | None = None,
    trace: AlgorithmTrace | None = None,
) -> list[np.ndarray]:
    """Run Algorithm 1 over a sequence of per-batch gradient tensors.

    Parameters
    ----------
    batches:
        The original activation gradients ``[G_1, ..., G_N]`` of one layer.
    target_sparsity:
        Target pruning rate ``p``.
    fifo_depth:
        FIFO depth ``NF`` (must satisfy ``NF << N`` for prediction to engage).
    rng:
        Random generator for stochastic rounding.
    trace:
        Optional trace object filled with per-batch thresholds and densities.

    Returns
    -------
    list of numpy.ndarray
        The sparse activation gradients ``[G_hat_1, ..., G_hat_N]``.
    """
    check_probability(target_sparsity, "target_sparsity")
    check_positive_int(fifo_depth, "fifo_depth")
    rng = derive_rng(rng)
    fifo = ThresholdFIFO(fifo_depth)

    pruned_batches: list[np.ndarray] = []
    for gradients in batches:
        gradients = np.asarray(gradients, dtype=np.float64)
        predicted = fifo.predict()
        if predicted is None or predicted <= 0.0:
            pruned = gradients.copy()
        else:
            pruned = stochastic_prune(gradients, predicted, rng)
        exact = determine_threshold(gradients, target_sparsity)
        if np.isfinite(exact):
            fifo.push(exact)
        pruned_batches.append(pruned)

        if trace is not None:
            trace.predicted_thresholds.append(predicted)
            trace.exact_thresholds.append(float(exact))
            trace.densities_before.append(density(gradients))
            trace.densities_after.append(density(pruned))
    return pruned_batches


def prune_single_pass(
    gradients: np.ndarray,
    target_sparsity: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Two-pass reference pruning of a single tensor (determine then prune).

    This is the non-predictive scheme from [23]: exact threshold on the same
    tensor that gets pruned.  Used as the oracle the FIFO prediction is
    compared against.
    """
    check_probability(target_sparsity, "target_sparsity")
    rng = derive_rng(rng)
    threshold = determine_threshold(gradients, target_sparsity)
    if not np.isfinite(threshold) or threshold <= 0.0:
        return np.asarray(gradients, dtype=np.float64).copy()
    return stochastic_prune(gradients, threshold, rng)
