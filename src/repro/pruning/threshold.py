"""Threshold determination and prediction (the paper's Section III-B).

*Determination*: assume the activation gradients of a layer follow a zero-mean
normal distribution.  Estimate the standard deviation from the mean absolute
value (a single O(n) pass, no sorting) and pick the threshold ``tau`` such
that a target fraction ``p`` of components falls inside ``[-tau, tau]``:

    sigma_hat = sqrt(pi / 2) * mean(|g|)
    tau       = Phi^{-1}((1 + p) / 2) * sigma_hat

Note on the paper's typesetting: the paper prints ``sigma_hat = (1/n)
sqrt(2/pi) sum |g_i|`` and ``tau = Phi^{-1}((1-p)/2) sigma_hat``.  Taken
literally those give a biased estimate (off by a factor 2/pi) and a *negative*
threshold; the intended (and statistically correct) forms are the ones above
— for a half-normal variable ``E[|g|] = sigma * sqrt(2/pi)`` so the unbiased
estimate divides by ``sqrt(2/pi)``, and the two-sided quantile uses
``(1+p)/2``.  We implement the correct forms and verify in tests that the
realised pruning rate matches ``p`` on normally distributed gradients.

*Prediction*: determining the threshold needs the full tensor, but the
accelerator wants to prune gradients as they stream out of the PPU, before
they are written back to the buffer.  The paper therefore predicts the
threshold of the current batch as the mean of the exact thresholds of the
previous ``NF`` batches, kept in a per-layer FIFO.  No pruning happens until
the FIFO is full.
"""

from __future__ import annotations

from collections import deque

import numpy as np
# ndtri is the standard-normal inverse CDF: the same value as
# ``scipy.stats.norm.ppf`` (which wraps it) without dragging the whole
# ``scipy.stats`` distribution machinery into every CLI startup.
from scipy.special import ndtri

from repro.utils.validation import check_positive_int, check_probability


def estimate_sigma(gradients: np.ndarray) -> float:
    """Unbiased single-pass estimate of the std of zero-mean gradients."""
    gradients = np.asarray(gradients)
    if gradients.size == 0:
        return 0.0
    mean_abs = float(np.mean(np.abs(gradients)))
    return float(np.sqrt(np.pi / 2.0) * mean_abs)


def quantile_factor(target_sparsity: float) -> float:
    """Two-sided standard-normal quantile: ``Phi^{-1}((1 + p) / 2)``.

    This is the factor by which the estimated sigma is multiplied to obtain a
    threshold that prunes (at most) a fraction ``p`` of normally distributed
    gradients.
    """
    target_sparsity = check_probability(target_sparsity, "target_sparsity")
    if target_sparsity == 0.0:
        return 0.0
    if target_sparsity == 1.0:
        return float("inf")
    return float(ndtri((1.0 + target_sparsity) / 2.0))


def determine_threshold(gradients: np.ndarray, target_sparsity: float) -> float:
    """Exact (per-batch) threshold determination from the gradient tensor."""
    sigma = estimate_sigma(gradients)
    factor = quantile_factor(target_sparsity)
    if not np.isfinite(factor):
        # p == 1: prune everything below the largest representable threshold.
        return float(np.max(np.abs(gradients))) if gradients.size else 0.0
    return factor * sigma


def determine_threshold_from_abs_sum(
    abs_sum: float, count: int, target_sparsity: float
) -> float:
    """Threshold determination from streaming statistics (hardware form).

    The PPU accumulates ``sum(|g|)`` and the element count while gradients
    stream through it; this function converts those two scalars into the
    batch's exact threshold without touching the tensor again.
    """
    if count <= 0:
        return 0.0
    sigma = float(np.sqrt(np.pi / 2.0) * abs_sum / count)
    factor = quantile_factor(target_sparsity)
    if not np.isfinite(factor):
        return float("inf")
    return factor * sigma


def expected_density_after_pruning(target_sparsity: float, natural_density: float = 1.0) -> float:
    """Expected non-zero density after stochastic pruning of normal gradients.

    For zero-mean normal gradients pruned with the threshold that targets a
    sparsity ``p``, a component below the threshold survives with probability
    ``|g| / tau``, so the expected post-pruning density is

        (1 - p) + (2 sigma / (tau sqrt(2 pi))) * (1 - exp(-tau^2 / (2 sigma^2)))

    with ``tau = Phi^{-1}((1+p)/2) * sigma``.  Multiplying by
    ``natural_density`` accounts for gradients that were already exactly zero
    before pruning (e.g. ``dO`` behind a ReLU).  This closed form is used by
    the ablation studies to sweep the pruning rate without re-training; tests
    check it against Monte-Carlo pruning of synthetic gradients.
    """
    target_sparsity = check_probability(target_sparsity, "target_sparsity")
    natural_density = check_probability(natural_density, "natural_density")
    if target_sparsity == 0.0:
        return natural_density
    if target_sparsity == 1.0:
        return 0.0
    z = quantile_factor(target_sparsity)
    survived_below = (2.0 / (z * np.sqrt(2.0 * np.pi))) * (1.0 - np.exp(-(z**2) / 2.0))
    return natural_density * ((1.0 - target_sparsity) + survived_below)


class ThresholdFIFO:
    """FIFO of per-batch thresholds used for prediction (the paper's Fig. 5).

    Parameters
    ----------
    depth:
        ``NF``, the number of past batch thresholds to average.
    """

    def __init__(self, depth: int) -> None:
        self.depth = check_positive_int(depth, "depth")
        self._values: deque[float] = deque(maxlen=self.depth)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def is_full(self) -> bool:
        """Whether enough history exists to start predicting."""
        return len(self._values) == self.depth

    def push(self, threshold: float) -> None:
        """Push the exact threshold determined for the batch just finished."""
        threshold = float(threshold)
        if not np.isfinite(threshold) or threshold < 0.0:
            raise ValueError(f"threshold must be finite and non-negative, got {threshold}")
        self._values.append(threshold)

    def predict(self) -> float | None:
        """Predicted threshold for the next batch (mean of the FIFO).

        Returns ``None`` while the FIFO is not yet full, meaning "do not prune
        this batch" — exactly the warm-up behaviour of Algorithm 1.
        """
        if not self.is_full:
            return None
        return float(np.mean(self._values))

    def values(self) -> list[float]:
        """Snapshot of the stored thresholds, oldest first."""
        return list(self._values)

    def clear(self) -> None:
        """Drop all history (e.g. when the learning-rate schedule steps)."""
        self._values.clear()


class ThresholdPredictor:
    """Couples exact determination with FIFO prediction for one layer.

    Typical use per training batch::

        tau = predictor.current_threshold()      # None during warm-up
        pruned = stochastic_prune(grad, tau)     # if tau is not None
        predictor.observe(grad)                  # push this batch's exact tau
    """

    def __init__(self, target_sparsity: float, fifo_depth: int) -> None:
        self.target_sparsity = check_probability(target_sparsity, "target_sparsity")
        self.fifo = ThresholdFIFO(fifo_depth)
        self.batches_observed = 0

    def current_threshold(self) -> float | None:
        """Threshold to apply to the *current* batch, or ``None`` in warm-up."""
        return self.fifo.predict()

    def observe(self, gradients: np.ndarray) -> float:
        """Determine the exact threshold of this batch and push it to the FIFO."""
        threshold = determine_threshold(gradients, self.target_sparsity)
        if np.isfinite(threshold):
            self.fifo.push(threshold)
        self.batches_observed += 1
        return threshold

    def observe_streaming(self, abs_sum: float, count: int) -> float:
        """Same as :meth:`observe` but from streaming ``sum(|g|)`` statistics."""
        threshold = determine_threshold_from_abs_sum(abs_sum, count, self.target_sparsity)
        if np.isfinite(threshold):
            self.fifo.push(threshold)
        self.batches_observed += 1
        return threshold
