"""Layer-wise stochastic activation-gradient pruning (the paper's Section III)."""

from repro.pruning.algorithm import (
    AlgorithmTrace,
    prune_gradient_batches,
    prune_single_pass,
)
from repro.pruning.config import PruningConfig
from repro.pruning.controller import (
    DensityReport,
    LayerDensityReport,
    PruningController,
)
from repro.pruning.layer_pruner import LayerPruner, LayerPruningStats
from repro.pruning.sites import PruneSide, PruningSite, find_pruning_sites
from repro.pruning.stochastic import (
    PruningResult,
    density,
    prune_with_stats,
    stochastic_prune,
)
from repro.pruning.threshold import (
    ThresholdFIFO,
    ThresholdPredictor,
    determine_threshold,
    determine_threshold_from_abs_sum,
    estimate_sigma,
    expected_density_after_pruning,
    quantile_factor,
)

__all__ = [
    "PruningConfig",
    "PruningController",
    "DensityReport",
    "LayerDensityReport",
    "LayerPruner",
    "LayerPruningStats",
    "PruneSide",
    "PruningSite",
    "find_pruning_sites",
    "PruningResult",
    "density",
    "prune_with_stats",
    "stochastic_prune",
    "ThresholdFIFO",
    "ThresholdPredictor",
    "determine_threshold",
    "determine_threshold_from_abs_sum",
    "estimate_sigma",
    "expected_density_after_pruning",
    "quantile_factor",
    "AlgorithmTrace",
    "prune_gradient_batches",
    "prune_single_pass",
]
