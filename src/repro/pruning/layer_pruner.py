"""Per-layer pruning state: predictor, RNG and running statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pruning.config import PruningConfig
from repro.pruning.stochastic import density, stochastic_prune
from repro.pruning.threshold import ThresholdPredictor, determine_threshold


@dataclass
class LayerPruningStats:
    """Running statistics of one pruned gradient tensor (one layer)."""

    batches_seen: int = 0
    batches_pruned: int = 0
    density_before_sum: float = 0.0
    density_after_sum: float = 0.0
    thresholds: list[float] = field(default_factory=list)

    @property
    def mean_density_before(self) -> float:
        """Average density of the gradient before pruning (natural sparsity)."""
        if self.batches_seen == 0:
            return 0.0
        return self.density_before_sum / self.batches_seen

    @property
    def mean_density_after(self) -> float:
        """Average density after pruning (the Table II ``rho_nnz``)."""
        if self.batches_seen == 0:
            return 0.0
        return self.density_after_sum / self.batches_seen


class LayerPruner:
    """Prunes the activation gradient of one CONV layer batch after batch.

    This is the software counterpart of what the PPU + controller do in
    hardware: apply the predicted threshold while the gradient streams by,
    accumulate ``sum(|g|)`` on the fly, and push the exact threshold for this
    batch into the FIFO afterwards.
    """

    def __init__(
        self,
        name: str,
        config: PruningConfig,
        rng: np.random.Generator,
    ) -> None:
        self.name = name
        self.config = config
        self.rng = rng
        self.predictor = ThresholdPredictor(config.target_sparsity, config.fifo_depth)
        self.stats = LayerPruningStats()
        self.enabled = True

    def __call__(self, gradients: np.ndarray) -> np.ndarray:
        return self.prune(gradients)

    def prune(self, gradients: np.ndarray) -> np.ndarray:
        """Prune one batch worth of activation gradients.

        Follows Algorithm 1: while the FIFO is warming up the gradients pass
        through untouched; once full, the predicted threshold is applied with
        stochastic rounding.  The exact threshold of the current batch is
        always determined (single pass over ``|g|``) and pushed to the FIFO.
        """
        gradients = np.asarray(gradients, dtype=np.float64)
        self.stats.batches_seen += 1
        self.stats.density_before_sum += density(gradients)

        if not self.enabled or gradients.size < self.config.min_elements:
            self.stats.density_after_sum += density(gradients)
            return gradients

        if self.config.use_prediction:
            threshold = self.predictor.current_threshold()
        else:
            threshold = determine_threshold(gradients, self.config.target_sparsity)

        if threshold is None or not np.isfinite(threshold) or threshold <= 0.0:
            pruned = gradients
        else:
            pruned = stochastic_prune(gradients, threshold, self.rng)
            self.stats.batches_pruned += 1
            self.stats.thresholds.append(float(threshold))

        # Push this batch's exact threshold for future prediction.
        self.predictor.observe(gradients)
        self.stats.density_after_sum += density(pruned)
        return pruned
