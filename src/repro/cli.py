"""``python -m repro`` — the reproduction and exploration command line.

Every subcommand dispatches through the :mod:`repro.api` experiment registry:
the CLI builds a typed :class:`~repro.api.ExperimentRequest` plus
:class:`~repro.api.RunOptions` and executes the registered pipeline — the
same path library callers and services use.

Subcommands
-----------
``list``
    Show every registered experiment and workload.
``run``
    Run any registered experiment by name (``python -m repro run fig8
    --json``), with generic workload/scale/parameter flags.  ``--json``
    prints (or ``--out`` writes) the full serialized
    :class:`~repro.api.ExperimentResult`.
``sweep``
    Run a design-space sweep (PE count x buffer size x pruning rate, times a
    workload list) through the exploration engine: parallel evaluation,
    persistent caching, optional CSV/JSON export.  ``--model vgg16`` /
    ``--model mobilenet`` sweep a single workload without spelling out
    ``--workloads``.
``pareto``
    Extract per-workload Pareto frontiers from a sweep (re-running it through
    the cache, or loading a previous export) and optionally export them.
``fig8`` / ``fig9``
    Regenerate the paper's latency (Fig. 8) and energy (Fig. 9) comparisons
    with the measured-density pipeline.  Density measurements are memoized on
    disk (``--no-cache`` disables) and ``--workers N`` fans the per-workload
    simulations out over processes.
``bench``
    Time the pipeline stage by stage (train, compile, simulate, row-op
    validate) and write ``BENCH_repro.json`` — the repository's performance
    trajectory.  The row-op stage cross-validates the scalar and vectorized
    PE backends and reports their speedup.  ``--check`` compares the run
    against a committed baseline and exits non-zero on a >tolerance
    regression in the row-op speedup or any stage p95 — the CI perf gate.
``trace``
    Run any registered experiment with the same flags as ``run`` and dump a
    Chrome-trace JSON (``chrome://tracing`` / Perfetto) of the pipeline's
    stage spans — ``repro trace fig8 --smoke --out trace.json``.  With
    ``--job <id>`` it instead exports a service job's *merged distributed
    trace*: the spans of every fleet process that touched the job plus the
    synthetic queue-wait span, from the running service (``--url``) or
    straight off the job store's span spools (``--db``).
``serve`` / ``submit`` / ``status`` / ``stats`` / ``top`` / ``cancel``
    The persistent experiment job service (:mod:`repro.serve`): ``serve``
    runs the SQLite-backed scheduler + HTTP API in the foreground until
    SIGINT/SIGTERM (then drains gracefully); the other verbs are thin
    clients — submit a request (deduplicated by content hash, ``--wait``
    blocks until done), inspect job states, watch live telemetry
    (``repro stats --watch``, ``repro top``), cancel queued jobs.

Every run prints the same tables the library returns, so a CLI invocation is
a reproducible, copy-pasteable experiment description.
"""

from __future__ import annotations

import argparse
import json
import operator
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.api import (
    DEFAULT_FIDELITY,
    FIDELITY_CHOICES,
    ExperimentRequest,
    RunOptions,
    list_experiments,
    list_workloads,
    run_experiment,
)
from repro.explore.cache import DEFAULT_CACHE_DIR
from repro.explore.pareto import parse_objectives, pareto_by_workload
from repro.explore.report import (
    export_records,
    format_frontier,
    format_records_table,
    load_records,
)
from repro.models.zoo import normalize_dataset_name, normalize_model_name

DEFAULT_WORKLOADS = (
    "AlexNet/CIFAR-10,ResNet-18/CIFAR-10,VGG-16/CIFAR-10,MobileNetV1/CIFAR-10"
)
DEFAULT_PES = "84,168,336,672"
DEFAULT_BUFFERS = "192,386,772"
DEFAULT_RATES = "0.5,0.7,0.9,0.95"

SMOKE_WORKLOADS = "AlexNet/CIFAR-10,ResNet-18/CIFAR-10"
SMOKE_PES = "84,168"
SMOKE_BUFFERS = "386"
SMOKE_RATES = "0.9"


def _parse_workloads(text: str) -> list[tuple[str, str]]:
    workloads: list[tuple[str, str]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        model, sep, dataset = item.partition("/")
        if not sep:
            raise SystemExit(
                f"workload {item!r} must be <model>/<dataset>, e.g. AlexNet/CIFAR-10"
            )
        workloads.append((normalize_model_name(model), normalize_dataset_name(dataset)))
    if not workloads:
        raise SystemExit("at least one workload is required")
    return workloads


def _parse_list(text: str, convert) -> tuple:
    try:
        return tuple(convert(item.strip()) for item in text.split(",") if item.strip())
    except ValueError as exc:
        raise SystemExit(f"cannot parse list {text!r}: {exc}") from exc


def _add_space_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads",
        default=DEFAULT_WORKLOADS,
        help="comma-separated <model>/<dataset> pairs (default: %(default)s)",
    )
    parser.add_argument(
        "--model",
        default=None,
        help="sweep a single model (e.g. vgg16, mobilenet); overrides --workloads",
    )
    parser.add_argument(
        "--dataset",
        default=None,
        help="dataset for --model (default: cifar10)",
    )
    parser.add_argument(
        "--pes", default=DEFAULT_PES, help="PE counts to sweep (default: %(default)s)"
    )
    parser.add_argument(
        "--buffers",
        default=DEFAULT_BUFFERS,
        help="buffer sizes in KiB to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--pruning-rates",
        default=DEFAULT_RATES,
        help="target pruning rates to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="evaluate a seeded random subset of N grid points instead of all",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --sample (default: %(default)s)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed grid for CI smoke runs (overrides the space options)",
    )
    parser.add_argument(
        "--fidelity",
        choices=FIDELITY_CHOICES,
        default=DEFAULT_FIDELITY.value,
        help="cost-model tier: analytic (closed-form, microseconds/point), "
        "vectorized (the simulator, default), scalar (serial trust anchor)",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="persistent result-cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the persistent cache"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per CPU)",
    )
    parser.add_argument(
        "--serial", action="store_true", help="evaluate in-process, no worker pool"
    )


def _selected_workloads(args: argparse.Namespace, default: str) -> list[tuple[str, str]]:
    """Workloads from --model/--dataset (single) or --workloads (list)."""
    if args.model is not None:
        dataset = args.dataset if args.dataset is not None else "cifar10"
        return [(normalize_model_name(args.model), normalize_dataset_name(dataset))]
    if args.dataset is not None:
        raise SystemExit("--dataset requires --model (use --workloads for lists)")
    return _parse_workloads(default)


def _sweep_request(args: argparse.Namespace, experiment: str) -> ExperimentRequest:
    """The sweep/pareto request for the space arguments."""
    if args.smoke:
        workloads = _selected_workloads(args, SMOKE_WORKLOADS)
        pes, buffers, rates = SMOKE_PES, SMOKE_BUFFERS, SMOKE_RATES
        sample, seed = None, 0
    else:
        workloads = _selected_workloads(args, args.workloads)
        pes, buffers, rates = args.pes, args.buffers, args.pruning_rates
        sample, seed = args.sample, args.seed
    params = {
        "pes": list(_parse_list(pes, int)),
        "buffers": list(_parse_list(buffers, int)),
        "pruning_rates": list(_parse_list(rates, float)),
        "sample": sample,
        "seed": seed,
    }
    if experiment == "pareto":
        params["objectives"] = list(_parse_list(args.objectives, str))
    if getattr(args, "resim_pareto", False):
        if args.fidelity != "analytic":
            raise SystemExit("--resim-pareto requires --fidelity analytic")
        params["resim_pareto"] = True
    return ExperimentRequest(
        experiment=experiment,
        workloads=tuple(workloads),
        params=params,
        fidelity=args.fidelity,
    )


def _engine_options(args: argparse.Namespace) -> RunOptions:
    return RunOptions(
        max_workers=args.jobs,
        parallel=not args.serial,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )


def _check_export_suffix(path: str | None) -> None:
    """Reject unsupported export suffixes before the sweep runs, not after."""
    if path is not None and Path(path).suffix.lower() not in (".csv", ".json"):
        raise ValueError(
            f"unsupported export suffix {Path(path).suffix!r}; use .csv or .json"
        )


def cmd_sweep(args: argparse.Namespace) -> int:
    _check_export_suffix(args.out)
    result = run_experiment(_sweep_request(args, "sweep"), _engine_options(args))
    records = result.native["records"]
    # attrgetter keeps the million-record sort off the Python bytecode path.
    ranked = sorted(records, key=operator.attrgetter("latency_us"))
    print(format_records_table(ranked, limit=args.top))
    elapsed = sum(result.stage_seconds.values())
    print(f"\n{result.native['stats']} in {elapsed:.2f}s")
    resimulated = result.native.get("resimulated")
    if resimulated is not None:
        print(
            f"\nre-simulated Pareto band: {len(resimulated)} point(s) "
            f"({result.native.get('resim_stats', '')})"
        )
        print(
            format_records_table(
                sorted(resimulated, key=operator.attrgetter("latency_us")),
                limit=args.top
            )
        )
    if args.out:
        export_records(records, args.out)
        print(f"wrote {len(records)} records to {args.out}")
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    _check_export_suffix(args.export)
    objectives = parse_objectives(_parse_list(args.objectives, str))
    if getattr(args, "from_file", None):
        records = load_records(args.from_file)
        print(f"loaded {len(records)} records from {args.from_file}")
        frontiers = pareto_by_workload(records, objectives)
    else:
        result = run_experiment(_sweep_request(args, "pareto"), _engine_options(args))
        elapsed = sum(result.stage_seconds.values())
        print(f"{result.native['stats']} in {elapsed:.2f}s")
        frontiers = result.native["frontiers"]
    combined = []
    for workload in sorted(frontiers):
        frontier = frontiers[workload]
        combined.extend(frontier)
        print()
        print(f"[{workload}]")
        print(format_frontier(frontier, objectives))
    if args.export:
        export_records(combined, args.export)
        print(f"\nwrote {len(combined)} frontier records to {args.export}")
    return 0


def _fig_workloads(args: argparse.Namespace) -> tuple[tuple[str, str], ...]:
    from repro.eval.fig8 import (
        EXTENDED_FIG8_WORKLOADS,
        PAPER_FIG8_WORKLOADS,
        QUICK_FIG8_WORKLOADS,
    )

    if getattr(args, "extended", False):
        return EXTENDED_FIG8_WORKLOADS
    return PAPER_FIG8_WORKLOADS if args.paper else QUICK_FIG8_WORKLOADS


def _density_cache(args: argparse.Namespace):
    """Disk cache for measured densities, honoring --no-cache/--cache-dir."""
    if getattr(args, "no_cache", False):
        return None
    from repro.eval.density_cache import default_density_cache

    return default_density_cache(getattr(args, "cache_dir", DEFAULT_CACHE_DIR))


def _run_fig(args: argparse.Namespace, experiment: str) -> int:
    from repro.eval.common import ExperimentScale

    request = ExperimentRequest(
        experiment=experiment,
        workloads=_fig_workloads(args),
        pruning_rate=args.pruning_rate,
        scale=ExperimentScale.thorough() if args.thorough else None,
    )
    options = RunOptions(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    result = run_experiment(request, options)
    print(result.summary)
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    return _run_fig(args, "fig8")


def cmd_fig9(args: argparse.Namespace) -> int:
    return _run_fig(args, "fig9")


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import check_regression, run_bench

    baseline = None
    if args.check:
        # Read the baseline *before* the run: with the default --out the run
        # overwrites BENCH_repro.json, and the committed numbers must be in
        # hand first.
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline {args.baseline} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    result = run_bench(
        smoke=args.smoke,
        out=args.out,
        density_cache=_density_cache(args),
        pruning_rate=args.pruning_rate,
    )
    print(result.format())
    print(f"wrote {args.out}")
    if baseline is None:
        return 0
    violations, checked = check_regression(
        result.to_payload(), baseline, tolerance=args.tolerance
    )
    print(f"\nregression check vs {args.baseline} (tolerance {args.tolerance:.0%}):")
    for note in checked:
        print(f"  {note}")
    if violations:
        for violation in violations:
            print(f"REGRESSION: {violation}", file=sys.stderr)
        return 1
    print("no regression: all checks within tolerance")
    return 0


def _parse_set_params(pairs: Sequence[str]) -> dict:
    """Parse ``--set key=value`` pairs; values are JSON when they parse."""
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def request_from_args(args: argparse.Namespace) -> ExperimentRequest:
    """The request described by the shared run/submit experiment flags.

    ``repro run`` executes it locally; ``repro submit`` ships it to the job
    service — one builder, so both front ends produce the same request (and
    the same content hash) for the same flags.
    """
    from repro.eval.common import ExperimentScale

    scale_name = "smoke" if args.smoke else args.scale
    workloads: tuple[tuple[str, str], ...] = ()
    if args.workloads:
        workloads = tuple(_parse_workloads(args.workloads))
    return ExperimentRequest(
        experiment=args.experiment,
        workloads=workloads,
        pruning_rate=args.pruning_rate,
        scale=ExperimentScale.preset(scale_name),
        params=tuple(_parse_set_params(args.set or []).items()),
        fidelity=getattr(args, "fidelity", DEFAULT_FIDELITY.value),
    )


def cmd_run(args: argparse.Namespace) -> int:
    request = request_from_args(args)
    options = RunOptions(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    result = run_experiment(request, options)
    text = result.to_json()
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
    if args.json:
        print(text)
    else:
        print(result.summary)
    if args.out:
        print(f"wrote {args.out}", file=sys.stderr)
    # Experiments that self-check (analytic-validate) declare pass/fail in
    # ``payload["ok"]``; surface a failure as a non-zero exit so CI can gate
    # on ``repro run analytic-validate`` directly.
    return 0 if result.payload.get("ok", True) else 1


def _trace_job(args: argparse.Namespace) -> int:
    """``repro trace --job``: export a job's merged distributed trace.

    Two sources for the same document: with ``--db`` the job row and span
    spools are read straight off disk (works with the service down — crash
    forensics); otherwise the running service's ``GET /jobs/<id>/trace``
    endpoint is asked (works from any machine that can reach it).
    """
    if args.db:
        from repro.obs.sink import merge_trace, obs_dir_for, read_spans
        from repro.serve.store import JobStore, UnknownJobError

        with JobStore(args.db) as store:
            try:
                job = store.find(args.job)
            except UnknownJobError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            spans = (
                read_spans(obs_dir_for(store.path), trace_id=job.trace_id)
                if job.trace_id
                else []
            )
            document = merge_trace(spans, job=job.to_dict(include_result=False))
    else:
        from repro.serve.client import DEFAULT_URL, ServeClient, ServeError

        try:
            document = ServeClient(args.url or DEFAULT_URL).trace(args.job)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    Path(args.out).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    meta = document.get("metadata") or {}
    wait = meta.get("queue_wait_s")
    print(
        f"job {str(meta.get('job_id'))[:12]} trace {meta.get('trace_id')}: "
        f"{meta.get('span_count', 0)} span(s) from "
        f"{len(meta.get('pids') or [])} process(es) "
        f"{meta.get('pids')}, queue wait "
        f"{'n/a' if wait is None else f'{wait:.3f}s'}"
    )
    print(
        f"wrote {args.out} "
        "(load in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment and dump its Chrome-trace (Perfetto-loadable)."""
    from repro.obs import TRACE

    if args.job:
        return _trace_job(args)
    if not args.experiment:
        print(
            "error: an experiment name (or --job <id>) is required",
            file=sys.stderr,
        )
        return 2
    request = request_from_args(args)
    options = RunOptions(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    TRACE.clear()  # the exported file covers exactly this run
    result = run_experiment(request, options)
    print(result.summary)
    spans = TRACE.write_chrome_trace(args.out)
    print(
        f"wrote {spans} span(s) to {args.out} "
        "(load in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    experiments = list_experiments()
    categories: dict[str, list] = {}
    for experiment in experiments:
        categories.setdefault(experiment.category, []).append(experiment)
    print("experiments ([fidelity] = accepts --fidelity analytic|vectorized|scalar):")
    for category in sorted(categories):
        print(f"  {category}:")
        for experiment in categories[category]:
            marker = "[fidelity] " if experiment.supports_fidelity else ""
            print(f"    {experiment.name:<18} {marker}{experiment.description}")
    print()
    print("workloads (any registered model x dataset):")
    for workload in list_workloads():
        print(
            f"  {workload.name:<14} family={workload.family:<10} "
            f"datasets={','.join(workload.datasets)}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SparseTrain reproduction: registry-driven experiments, sweeps, "
            "Pareto analysis, paper figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list registered experiments and workloads")
    listing.set_defaults(func=cmd_list)

    def _add_request_arguments(
        parser: argparse.ArgumentParser, experiment_required: bool = True
    ) -> None:
        """The shared experiment-request flags of `run` and `trace`."""
        if experiment_required:
            parser.add_argument(
                "experiment", help="registered experiment name (see `repro list`)"
            )
        else:
            parser.add_argument(
                "experiment", nargs="?", default=None,
                help="registered experiment name (omit with --job)",
            )
        parser.add_argument(
            "--workloads", default=None,
            help="comma-separated <model>/<dataset> pairs (default: the experiment's grid)",
        )
        parser.add_argument("--pruning-rate", type=float, default=0.9)
        parser.add_argument(
            "--scale", choices=("quick", "thorough", "smoke"), default="quick",
            help="experiment scale preset (default: %(default)s)",
        )
        parser.add_argument(
            "--smoke", action="store_true", help="shorthand for --scale smoke"
        )
        parser.add_argument(
            "--fidelity",
            choices=FIDELITY_CHOICES,
            default=DEFAULT_FIDELITY.value,
            help="cost-model tier (experiments marked [fidelity] in `repro list`)",
        )
        parser.add_argument(
            "--set", action="append", metavar="KEY=VALUE",
            help="experiment-specific parameter (JSON values accepted; repeatable)",
        )
        parser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker processes for fan-out stages (default: serial)",
        )
        parser.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help="persistent stage-cache directory (default: %(default)s)",
        )
        parser.add_argument(
            "--no-cache", action="store_true",
            help="disable the persistent stage caches",
        )

    run = sub.add_parser("run", help="run any registered experiment by name")
    _add_request_arguments(run)
    run.add_argument(
        "--json", action="store_true",
        help="print the full JSON ExperimentResult instead of the summary",
    )
    run.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON ExperimentResult to FILE",
    )
    run.set_defaults(func=cmd_run)

    trace = sub.add_parser(
        "trace",
        help="run an experiment (or export a service job's merged distributed "
             "trace with --job) as a Chrome-trace JSON",
    )
    _add_request_arguments(trace, experiment_required=False)
    trace.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="Chrome-trace output file (default: %(default)s)",
    )
    trace.add_argument(
        "--job", default=None, metavar="ID",
        help="export the merged fleet trace of this service job id (or "
             "unique prefix) instead of running an experiment",
    )
    trace.add_argument(
        "--url", default=None, metavar="URL",
        help="service URL for --job (default: the local service)",
    )
    trace.add_argument(
        "--db", default=None, metavar="PATH",
        help="with --job: read the job store + span spools straight off "
             "disk instead of asking a running service",
    )
    trace.set_defaults(func=cmd_trace)

    sweep = sub.add_parser("sweep", help="run a design-space sweep")
    _add_space_arguments(sweep)
    _add_engine_arguments(sweep)
    sweep.add_argument(
        "--top", type=int, default=16, metavar="N",
        help="rows of the latency-ranked table to print (default: %(default)s)",
    )
    sweep.add_argument("--out", default=None, help="export records to a .csv/.json file")
    sweep.add_argument(
        "--resim-pareto", action="store_true",
        help="with --fidelity analytic: re-simulate the analytic Pareto band "
        "at full fidelity (two-phase sweep)",
    )
    sweep.set_defaults(func=cmd_sweep)

    pareto = sub.add_parser("pareto", help="extract per-workload Pareto frontiers")
    _add_space_arguments(pareto)
    _add_engine_arguments(pareto)
    pareto.add_argument(
        "--from", dest="from_file", default=None, metavar="FILE",
        help="load records from a previous sweep export instead of sweeping",
    )
    pareto.add_argument(
        "--objectives",
        default="latency_us,energy_uj,area_mm2",
        help="comma-separated objectives, optionally name:min|max (default: %(default)s)",
    )
    pareto.add_argument(
        "--export", default=None, help="export frontier records to a .csv/.json file"
    )
    pareto.set_defaults(func=cmd_pareto)

    for name, func, description in (
        ("fig8", cmd_fig8, "regenerate the Fig. 8 latency/speedup comparison"),
        ("fig9", cmd_fig9, "regenerate the Fig. 9 energy comparison"),
    ):
        fig = sub.add_parser(name, help=description)
        fig.add_argument(
            "--paper", action="store_true",
            help="run the full 9-workload paper grid (default: the quick subset)",
        )
        fig.add_argument(
            "--extended", action="store_true",
            help="run the paper grid plus the VGG-16/MobileNetV1 workloads",
        )
        fig.add_argument(
            "--thorough", action="store_true",
            help="use the larger, slower experiment scale",
        )
        fig.add_argument("--pruning-rate", type=float, default=0.9)
        fig.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="simulate workloads across N worker processes (default: serial)",
        )
        fig.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help="directory of the measured-density cache (default: %(default)s)",
        )
        fig.add_argument(
            "--no-cache", action="store_true",
            help="measure densities fresh instead of using the disk cache",
        )
        fig.set_defaults(func=func)

    bench = sub.add_parser(
        "bench", help="time the pipeline stages and write BENCH_repro.json"
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny scale for CI smoke runs (seconds instead of minutes)",
    )
    bench.add_argument(
        "--out", default="BENCH_repro.json",
        help="benchmark output file (default: %(default)s)",
    )
    bench.add_argument("--pruning-rate", type=float, default=0.9)
    bench.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="directory of the measured-density cache (default: %(default)s)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="measure densities fresh instead of using the disk cache",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="after the run, compare against --baseline and exit 1 on a "
             "speedup or stage-p95 regression beyond --tolerance",
    )
    bench.add_argument(
        "--baseline", default="BENCH_repro.json", metavar="FILE",
        help="committed baseline for --check (default: %(default)s)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRACTION",
        help="--check relative tolerance band (default: %(default)s = 20%%)",
    )
    bench.set_defaults(func=cmd_bench)

    from repro.serve.cli import register_serve_commands

    register_serve_commands(sub, default_cache_dir=DEFAULT_CACHE_DIR)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, FileNotFoundError) as exc:
        # Bad axis values, unknown experiment/workload/objective names,
        # missing --from files: report cleanly (with the registry's listing
        # of valid names where applicable) instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (`repro submit ... | head`): exit with
        # the conventional SIGPIPE status, and point stdout at /dev/null so
        # the interpreter's shutdown flush doesn't print a second traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
