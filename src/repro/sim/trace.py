"""Extracting per-layer operand densities from real (reduced) training runs.

The architecture evaluation needs, for every convolution of the full-size
models, the densities of its operands (I, dO, mask, dI, O).  Running full-size
AlexNet/ResNet in numpy is not feasible, so the densities are *measured* on
reduced-width models trained on synthetic data — the sparsity a ReLU or the
pruning algorithm produces depends on the activation/gradient statistics, not
on the layer width — and then mapped onto the full-size
:class:`~repro.models.spec.ModelSpec` by relative depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.counts import LayerDensities
from repro.data.synthetic import Dataset
from repro.models.spec import ConvStructure, ModelSpec
from repro.nn.layers.base import Layer
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.pruning.config import PruningConfig
from repro.pruning.controller import PruningController
from repro.sparsity.profiler import SparsityProfiler


@dataclass(frozen=True)
class MeasuredDensities:
    """Ordered per-layer densities measured on a reduced model."""

    layer_names: tuple[str, ...]
    densities: dict[str, LayerDensities]

    def __len__(self) -> int:
        return len(self.layer_names)

    def at_fraction(self, fraction: float) -> LayerDensities:
        """Densities of the measured layer closest to a relative depth in [0, 1]."""
        if not self.layer_names:
            raise ValueError("no measured layers")
        fraction = min(max(fraction, 0.0), 1.0)
        index = int(round(fraction * (len(self.layer_names) - 1)))
        return self.densities[self.layer_names[index]]


def profile_training_densities(
    model: Layer,
    dataset: Dataset,
    pruning: PruningConfig | None = None,
    epochs: int = 1,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
) -> MeasuredDensities:
    """Train ``model`` briefly while measuring per-conv-layer densities.

    The pruning controller (if any) is attached *before* the profiler so the
    measured ``dO`` densities are the post-pruning densities the accelerator
    would see.  Returns densities averaged over all profiled batches.
    """
    callbacks = []
    controller = None
    if pruning is not None:
        controller = PruningController(model, pruning)
        callbacks.append(controller)
    profiler = SparsityProfiler(model)
    callbacks.append(profiler)

    trainer = Trainer(model, SGD(model.parameters(), lr=lr, momentum=momentum), callbacks=callbacks)
    trainer.fit(
        dataset.images,
        dataset.labels,
        epochs=epochs,
        batch_size=batch_size,
        shuffle_rng=np.random.default_rng(seed),
    )

    names = profiler.layer_names()
    densities: dict[str, LayerDensities] = {}
    for index, name in enumerate(names):
        trace = profiler.trace_for(name)
        input_density = trace.mean_input_density()
        grad_output_density = trace.mean_grad_output_density()
        grad_input_density = trace.mean_grad_input_density()
        # The forward ReLU mask over this layer's input positions has the same
        # density as the input activations themselves (they are the ReLU's
        # output); the first layer reads the raw image and has no mask.
        mask_density = input_density if index > 0 else 1.0
        # The layer's output activations become the next layer's input.
        if index + 1 < len(names):
            next_trace = profiler.trace_for(names[index + 1])
            output_density = next_trace.mean_input_density()
        else:
            output_density = 1.0
        densities[name] = LayerDensities(
            input_density=float(np.clip(input_density, 0.0, 1.0)),
            grad_output_density=float(np.clip(grad_output_density, 0.0, 1.0)),
            mask_density=float(np.clip(mask_density, 0.0, 1.0)),
            grad_input_density=float(np.clip(grad_input_density, 0.0, 1.0)),
            output_density=float(np.clip(output_density, 0.0, 1.0)),
        )
    return MeasuredDensities(layer_names=tuple(names), densities=densities)


def map_densities_to_spec(measured: MeasuredDensities, spec: ModelSpec) -> dict[str, LayerDensities]:
    """Assign measured densities to every conv layer of a full-size spec.

    Layers are matched by relative depth: the spec's i-th convolution (out of
    N) receives the densities measured at the same fractional depth of the
    reduced model.  The first layer keeps a dense input (raw image), and
    layers without a ReLU mask (projection shortcuts) get mask density 1.0.
    """
    num_layers = spec.num_conv_layers
    mapped: dict[str, LayerDensities] = {}
    for index, layer in enumerate(spec.conv_layers):
        fraction = index / max(num_layers - 1, 1)
        source = measured.at_fraction(fraction)
        input_density = source.input_density if index > 0 else 1.0
        mask_density = source.mask_density
        if not layer.has_relu_mask:
            mask_density = 1.0
        if layer.structure is ConvStructure.CONV_ONLY:
            # Shortcut convolutions still read sparse activations and sparse
            # gradients, they just lack their own ReLU.
            mask_density = 1.0
        mapped[layer.name] = LayerDensities(
            input_density=input_density,
            grad_output_density=source.grad_output_density,
            mask_density=mask_density,
            grad_input_density=source.grad_input_density,
            output_density=source.output_density,
        )
    return mapped
