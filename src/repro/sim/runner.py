"""End-to-end workload simulation: SparseTrain vs the dense baseline.

This module ties the pieces together for one workload (a full-size model
spec plus per-layer densities): compile the sparse and dense programs, run
them on the SparseTrain configuration and the dense-baseline configuration,
and return a :class:`~repro.arch.results.ComparisonResult` carrying the
speedup and energy-efficiency numbers the paper's Fig. 8 / Fig. 9 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.runner import default_runner

from repro.arch.accelerator import AcceleratorSimulator
from repro.arch.config import ArchConfig, dense_baseline_config, sparsetrain_config
from repro.arch.energy import EnergyModel, default_energy_model
from repro.arch.results import ComparisonResult, SimulationResult
from repro.dataflow.compiler import compile_training_iteration
from repro.dataflow.counts import LayerDensities
from repro.models.spec import ModelSpec


@dataclass(frozen=True)
class WorkloadResult:
    """Comparison result plus the inputs that produced it (for reporting)."""

    spec: ModelSpec
    densities: dict[str, LayerDensities]
    comparison: ComparisonResult

    @property
    def workload_name(self) -> str:
        return f"{self.spec.name}/{self.spec.dataset}"

    @property
    def speedup(self) -> float:
        return self.comparison.speedup

    @property
    def energy_efficiency(self) -> float:
        return self.comparison.energy_efficiency


def simulate_sparsetrain(
    spec: ModelSpec,
    densities: dict[str, LayerDensities],
    config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
) -> SimulationResult:
    """Simulate one SparseTrain training iteration (per sample) of ``spec``."""
    config = config if config is not None else sparsetrain_config()
    energy_model = energy_model if energy_model is not None else default_energy_model()
    program = compile_training_iteration(spec, densities=densities, sparse=True)
    simulator = AcceleratorSimulator(config, energy_model)
    return simulator.run_program(program, densities=densities)


def simulate_baseline(
    spec: ModelSpec,
    config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
) -> SimulationResult:
    """Simulate one dense-baseline training iteration (per sample) of ``spec``."""
    config = config if config is not None else dense_baseline_config()
    energy_model = energy_model if energy_model is not None else default_energy_model()
    program = compile_training_iteration(spec, densities=None, sparse=False)
    simulator = AcceleratorSimulator(config, energy_model)
    return simulator.run_program(program)


def compare_workload(
    spec: ModelSpec,
    densities: dict[str, LayerDensities],
    sparse_config: ArchConfig | None = None,
    baseline_config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
) -> WorkloadResult:
    """Run both architectures on one workload and package the comparison."""
    energy_model = energy_model if energy_model is not None else default_energy_model()
    sparse_result = simulate_sparsetrain(spec, densities, sparse_config, energy_model)
    baseline_result = simulate_baseline(spec, baseline_config, energy_model)
    comparison = ComparisonResult(
        workload=f"{spec.name}/{spec.dataset}",
        sparsetrain=sparse_result,
        baseline=baseline_result,
    )
    return WorkloadResult(spec=spec, densities=densities, comparison=comparison)


# ---------------------------------------------------------------------------
# Batch API
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadJob:
    """One ``compare_workload`` invocation, packaged so batches can be
    shipped to worker processes (every field is picklable)."""

    spec: ModelSpec
    densities: dict[str, LayerDensities]
    sparse_config: ArchConfig | None = None
    baseline_config: ArchConfig | None = None
    energy_model: EnergyModel | None = None


def _run_job(job: WorkloadJob) -> WorkloadResult:
    return compare_workload(
        job.spec,
        job.densities,
        sparse_config=job.sparse_config,
        baseline_config=job.baseline_config,
        energy_model=job.energy_model,
    )


def simulate_many(
    jobs: Sequence[WorkloadJob],
    max_workers: int | None = None,
    partial: list[WorkloadResult] | None = None,
) -> list[WorkloadResult]:
    """Run a batch of workload comparisons, optionally across processes.

    ``max_workers=None`` or ``1`` runs serially in-process (deterministic,
    test-friendly); larger values fan the jobs out over worker processes via
    the shared :class:`repro.api.runner.Runner` primitive (which also owns
    the serial fallback for sandboxes that forbid spawning, and the
    terminate-and-join teardown that keeps an interrupt from orphaning
    workers).  Results are returned in job order either way.  ``partial``,
    when given, receives each result as it is delivered, so an interrupted
    batch surfaces everything completed before the interrupt.  This is the
    light-weight batch primitive for callers that already hold specs and
    densities; design-space sweeps over architecture/pruning knobs (with
    caching and deduplication) live in :mod:`repro.explore`.
    """
    return default_runner(max_workers).map(_run_job, list(jobs), partial=partial)
