"""Training-step simulation: density measurement, workload comparison, reports."""

from repro.sim.report import format_breakdown, format_energy_table, format_latency_table
from repro.sim.runner import (
    WorkloadJob,
    WorkloadResult,
    compare_workload,
    simulate_baseline,
    simulate_many,
    simulate_sparsetrain,
)
from repro.sim.trace import (
    MeasuredDensities,
    map_densities_to_spec,
    profile_training_densities,
)

__all__ = [
    "MeasuredDensities",
    "profile_training_densities",
    "map_densities_to_spec",
    "WorkloadJob",
    "WorkloadResult",
    "compare_workload",
    "simulate_many",
    "simulate_sparsetrain",
    "simulate_baseline",
    "format_latency_table",
    "format_energy_table",
    "format_breakdown",
]
