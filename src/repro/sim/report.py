"""Text reports for simulation results (Fig. 8 / Fig. 9 style tables)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.runner import WorkloadResult


def format_latency_table(results: Sequence[WorkloadResult]) -> str:
    """Fig. 8 style table: per-sample latency and speedup per workload."""
    header = (
        f"{'Workload':<26}{'Baseline us':>14}{'SparseTrain us':>16}{'Speedup':>10}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.workload_name:<26}"
            f"{result.comparison.baseline.latency_us:>14.1f}"
            f"{result.comparison.sparsetrain.latency_us:>16.1f}"
            f"{result.speedup:>9.2f}x"
        )
    if results:
        mean_speedup = float(np.mean([r.speedup for r in results]))
        lines.append("-" * len(header))
        lines.append(f"{'Average speedup':<56}{mean_speedup:>9.2f}x")
    return "\n".join(lines)


def format_energy_table(results: Sequence[WorkloadResult]) -> str:
    """Fig. 9 style table: per-sample energy breakdown and efficiency gain."""
    header = (
        f"{'Workload':<26}{'Base uJ':>10}{'Sparse uJ':>11}{'Effic.':>8}"
        f"{'Base SRAM%':>12}{'SRAM red.':>11}{'Comb red.':>11}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        comparison = result.comparison
        baseline_sram_frac = comparison.baseline.total_energy.fraction("sram")
        lines.append(
            f"{result.workload_name:<26}"
            f"{comparison.baseline.energy_uj:>10.1f}"
            f"{comparison.sparsetrain.energy_uj:>11.1f}"
            f"{comparison.energy_efficiency:>7.2f}x"
            f"{100 * baseline_sram_frac:>11.1f}%"
            f"{100 * comparison.sram_energy_reduction:>10.1f}%"
            f"{100 * comparison.combinational_energy_reduction:>10.1f}%"
        )
    if results:
        mean_eff = float(np.mean([r.energy_efficiency for r in results]))
        lines.append("-" * len(header))
        lines.append(f"{'Average energy efficiency':<56}{mean_eff:>9.2f}x")
    return "\n".join(lines)


def format_breakdown(result: WorkloadResult) -> str:
    """Per-component energy breakdown of one workload (both architectures)."""
    lines = [f"Energy breakdown — {result.workload_name}"]
    for label, sim in (
        ("Dense baseline", result.comparison.baseline),
        ("SparseTrain", result.comparison.sparsetrain),
    ):
        fractions = sim.energy_fractions()
        parts = ", ".join(
            f"{name} {100 * frac:.1f}%" for name, frac in fractions.items()
        )
        lines.append(f"  {label:<16}{sim.energy_uj:>10.1f} uJ/sample  ({parts})")
    return "\n".join(lines)
