"""Optimisers for the Weight Update stage (SGD with momentum, plus Adam).

The paper uses plain SGD ("weights are updated according to a pre-set
learning rate α") and notes that weight update is not the performance
bottleneck; we still implement the standard momentum/weight-decay variants so
the reduced Table II training runs converge in a reasonable number of epochs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers.base import Parameter
from repro.utils.validation import check_positive_float


class Optimizer:
    """Base class holding the parameter list and the zero-grad helper."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer created with an empty parameter list")

    def zero_grad(self) -> None:
        """Clear the gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters)
        self.lr = check_positive_float(lr, "lr")
        if momentum < 0.0 or momentum >= 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update to every parameter with a gradient."""
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) — used by some ablation experiments."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = check_positive_float(lr, "lr")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = check_positive_float(eps, "eps")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.weight_decay = float(weight_decay)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        self._t += 1
        beta1, beta2 = self.betas
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(index, np.zeros_like(param.data))
            v = self._v.get(index, np.zeros_like(param.data))
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad * grad
            self._m[index] = m
            self._v[index] = v
            m_hat = m / (1 - beta1**self._t)
            v_hat = v / (1 - beta2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Step learning-rate schedule: multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if not hasattr(optimizer, "lr"):
            raise TypeError("optimizer does not expose an lr attribute")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and decay the learning rate if due."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
