"""A small, explicit numpy CNN training framework.

This package is the training substrate the SparseTrain reproduction runs on:
layers with explicit forward/backward, losses, optimisers and a mini-batch
trainer with callback hooks.  The gradient-pruning algorithm from the paper
plugs into it through layer gradient hooks (see :mod:`repro.pruning`).
"""

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    Linear,
    MaxPool2D,
    Parameter,
    ReLU,
    ResidualBlock,
    Sequential,
)
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn.trainer import (
    Callback,
    EpochStats,
    Trainer,
    TrainingHistory,
    accuracy,
)

__all__ = [
    "Layer",
    "Parameter",
    "Conv2D",
    "Linear",
    "ReLU",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "Sequential",
    "ResidualBlock",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "SGD",
    "Adam",
    "StepLR",
    "Trainer",
    "Callback",
    "EpochStats",
    "TrainingHistory",
    "accuracy",
]
