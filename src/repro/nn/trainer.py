"""Training loop: batching, forward/backward/update, metrics and callbacks.

The :class:`Trainer` drives the three stages the paper describes (Forward,
Backward = GTA + GTW, Weight Update) over mini-batches.  Callbacks observe the
loop at batch and epoch granularity; the gradient-pruning controller and the
sparsity profiler are both implemented as callbacks so they compose freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import Optimizer
from repro.utils.logging import get_logger

_LOG = get_logger("trainer")


class TrainerCallback(Protocol):
    """Observer interface for the training loop.

    All methods are optional in spirit; the default base class
    :class:`Callback` provides no-op implementations to subclass.
    """

    def on_epoch_start(self, trainer: "Trainer", epoch: int) -> None: ...

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: "EpochStats") -> None: ...

    def on_batch_start(self, trainer: "Trainer", step: int) -> None: ...

    def on_batch_end(self, trainer: "Trainer", step: int, loss: float) -> None: ...


class Callback:
    """No-op base implementation of :class:`TrainerCallback`."""

    def on_epoch_start(self, trainer: "Trainer", epoch: int) -> None:
        return None

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: "EpochStats") -> None:
        return None

    def on_batch_start(self, trainer: "Trainer", step: int) -> None:
        return None

    def on_batch_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        return None


@dataclass
class EpochStats:
    """Aggregate statistics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_loss: float | None = None
    test_accuracy: float | None = None


@dataclass
class TrainingHistory:
    """Per-epoch statistics for a whole training run."""

    epochs: list[EpochStats] = field(default_factory=list)

    @property
    def final_train_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].train_accuracy

    @property
    def final_test_accuracy(self) -> float | None:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].test_accuracy

    @property
    def best_test_accuracy(self) -> float | None:
        accs = [e.test_accuracy for e in self.epochs if e.test_accuracy is not None]
        return max(accs) if accs else None

    def train_losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def train_accuracies(self) -> list[float]:
        return [e.train_accuracy for e in self.epochs]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == np.asarray(labels)))


class Trainer:
    """Mini-batch trainer for classification models.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.layers.base.Layer` mapping images to logits.
    optimizer:
        Optimiser over ``model.parameters()``.
    loss:
        Loss object; defaults to softmax cross-entropy.
    callbacks:
        Observers invoked around batches and epochs (pruning controller,
        sparsity profiler, custom logging...).
    """

    def __init__(
        self,
        model: Layer,
        optimizer: Optimizer,
        loss: SoftmaxCrossEntropy | None = None,
        callbacks: list[Callback] | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.callbacks: list[Callback] = list(callbacks or [])
        self.global_step = 0

    def add_callback(self, callback: Callback) -> None:
        """Register an additional callback."""
        self.callbacks.append(callback)

    # ------------------------------------------------------------------
    # Single-batch primitives
    # ------------------------------------------------------------------
    def train_step(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """Run Forward, GTA+GTW and Weight Update on one mini-batch.

        Returns ``(loss, accuracy)`` for the batch.
        """
        for callback in self.callbacks:
            callback.on_batch_start(self, self.global_step)

        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model.forward(images)
        loss_value = self.loss.forward(logits, labels)
        grad = self.loss.backward()
        self.model.backward(grad)
        self.optimizer.step()

        batch_accuracy = accuracy(logits, labels)
        for callback in self.callbacks:
            callback.on_batch_end(self, self.global_step, loss_value)
        self.global_step += 1
        return loss_value, batch_accuracy

    def evaluate(self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> tuple[float, float]:
        """Evaluate the model on a held-out set; returns ``(loss, accuracy)``."""
        self.model.eval()
        losses: list[float] = []
        correct = 0
        total = 0
        eval_loss = SoftmaxCrossEntropy()
        for start in range(0, len(images), batch_size):
            batch_x = images[start : start + batch_size]
            batch_y = labels[start : start + batch_size]
            logits = self.model.forward(batch_x)
            losses.append(eval_loss.forward(logits, batch_y) * len(batch_x))
            correct += int(np.sum(np.argmax(logits, axis=1) == batch_y))
            total += len(batch_x)
        self.model.train()
        return float(np.sum(losses) / max(total, 1)), correct / max(total, 1)

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        epochs: int,
        batch_size: int = 32,
        test_images: np.ndarray | None = None,
        test_labels: np.ndarray | None = None,
        shuffle_rng: np.random.Generator | None = None,
        scheduler=None,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the per-epoch history."""
        if len(train_images) != len(train_labels):
            raise ValueError("train_images and train_labels length mismatch")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = shuffle_rng if shuffle_rng is not None else np.random.default_rng(0)

        history = TrainingHistory()
        num_samples = len(train_images)
        for epoch in range(epochs):
            for callback in self.callbacks:
                callback.on_epoch_start(self, epoch)

            order = rng.permutation(num_samples)
            epoch_losses: list[float] = []
            epoch_accs: list[float] = []
            for start in range(0, num_samples, batch_size):
                idx = order[start : start + batch_size]
                loss_value, batch_acc = self.train_step(train_images[idx], train_labels[idx])
                epoch_losses.append(loss_value)
                epoch_accs.append(batch_acc)

            stats = EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(epoch_losses)),
                train_accuracy=float(np.mean(epoch_accs)),
            )
            if test_images is not None and test_labels is not None:
                stats.test_loss, stats.test_accuracy = self.evaluate(test_images, test_labels)
            if scheduler is not None:
                scheduler.step()

            history.epochs.append(stats)
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, stats)
            _LOG.debug(
                "epoch %d: train_loss=%.4f train_acc=%.4f test_acc=%s",
                epoch,
                stats.train_loss,
                stats.train_accuracy,
                stats.test_accuracy,
            )
        return history
