"""Weight initialisation schemes.

Kaiming (He) initialisation is the default for convolution and linear layers
feeding ReLU non-linearities, matching what the paper's AlexNet/ResNet
training setups use in practice.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng


def kaiming_normal(
    shape: tuple[int, ...],
    fan_in: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """He-normal initialisation: ``N(0, sqrt(2 / fan_in))``."""
    rng = derive_rng(rng)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """He-uniform initialisation: ``U(-bound, bound)`` with ``bound = sqrt(6/fan_in)``."""
    rng = derive_rng(rng)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot-normal initialisation: ``N(0, sqrt(2 / (fan_in + fan_out)))``."""
    rng = derive_rng(rng)
    std = np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, BN beta)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (BN gamma)."""
    return np.ones(shape, dtype=np.float64)
