"""Functional numpy kernels for CNN training.

These are the computational primitives used by the layer classes in
:mod:`repro.nn.layers`.  Convolutions are implemented with an im2col
transformation so both the forward pass and the two backward products (the
GTA product ``dI = dO * W+`` and the GTW product ``dW = dO * I`` from the
paper's Section II) reduce to dense matrix multiplications — fast enough in
numpy to actually train the reduced models used for the Table II experiments.

Shape conventions follow the paper: activations are ``(N, C, H, W)`` tensors
(batch, channels, height, width) and convolution weights are
``(F, C, K, K)`` tensors (output channels, input channels, kernel height,
kernel width).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.utils.validation import check_group_split


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding} gives non-positive output {out}"
        )
    return out


@lru_cache(maxsize=256)
def _im2col_indices_cached(
    channels: int,
    height: int,
    width: int,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Build (and memoize) the (k, i, j) gather indices for one geometry.

    The indices depend only on the layer geometry, never on the batch or the
    data, so training reuses one cached copy per (shape, kernel, stride,
    padding) instead of rebuilding the index tensors on every forward and
    backward call.  The cached arrays are marked read-only: every consumer
    only gathers/scatters through them.
    """
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for array in (k, i, j):
        array.setflags(write=False)
    return k, i, j, out_h, out_w


def _im2col_indices(
    in_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Memoized (k, i, j) gather indices for im2col (batch size irrelevant)."""
    _, channels, height, width = in_shape
    return _im2col_indices_cached(
        int(channels), int(height), int(width),
        int(kernel_h), int(kernel_w), int(stride), int(padding),
    )


def im2col_cache_info():
    """Hit/miss statistics of the im2col index cache (for benchmarks/tests)."""
    return _im2col_indices_cached.cache_info()


def im2col_cache_clear() -> None:
    """Drop all memoized im2col index tensors."""
    _im2col_indices_cached.cache_clear()


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns an array of shape ``(C*KH*KW, N*OH*OW)`` where each column holds
    the receptive field of one output position.
    """
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    x_padded = np.pad(x, pad_width, mode="constant") if padding > 0 else x
    k, i, j, _, _ = _im2col_indices(x.shape, kernel_h, kernel_w, stride, padding)
    cols = x_padded[:, k, i, j]
    cols = cols.transpose(1, 2, 0).reshape(kernel_h * kernel_w * x.shape[1], -1)
    return cols


def col2im(
    cols: np.ndarray,
    in_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold columns back into an (N, C, H, W) tensor, accumulating overlaps.

    This is the adjoint of :func:`im2col` and is used to compute the gradient
    with respect to the convolution input (the paper's GTA step).
    """
    batch, channels, height, width = in_shape
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    x_padded = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)
    k, i, j, _, _ = _im2col_indices(in_shape, kernel_h, kernel_w, stride, padding)
    cols_reshaped = cols.reshape(channels * kernel_h * kernel_w, -1, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, i, j), cols_reshaped)
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------

def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward 2-D convolution, optionally grouped.

    ``weight`` has shape ``(F, C/groups, KH, KW)``; output channel ``f`` only
    convolves the input-channel slice of its group (``groups == C == F`` is a
    depthwise convolution).  Returns ``(output, x_cols)`` where ``x_cols`` is
    the im2col buffer cached for the backward pass — a single 2-D buffer for
    ``groups == 1``, a tuple of per-group buffers otherwise.
    """
    if groups > 1:
        return _grouped_conv2d_forward(x, weight, bias, stride, padding, groups)
    batch = x.shape[0]
    out_channels, _, kernel_h, kernel_w = weight.shape
    out_h = conv_output_size(x.shape[2], kernel_h, stride, padding)
    out_w = conv_output_size(x.shape[3], kernel_w, stride, padding)

    x_cols = im2col(x, kernel_h, kernel_w, stride, padding)
    w_rows = weight.reshape(out_channels, -1)
    out = w_rows @ x_cols
    if bias is not None:
        out += bias.reshape(-1, 1)
    out = out.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
    return np.ascontiguousarray(out), x_cols


def _grouped_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    groups: int,
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Grouped forward pass: one im2col convolution per channel group.

    The per-group col buffers are returned as a tuple (not stacked into one
    array): the backward pass only ever consumes them group by group, so
    stacking would copy the whole im2col memory for nothing.
    """
    out_channels, group_in, _, _ = weight.shape
    if x.shape[1] != group_in * groups:
        raise ValueError(
            f"input has {x.shape[1]} channels; weight {weight.shape} with "
            f"groups={groups} expects {group_in * groups}"
        )
    _, group_out = check_group_split(x.shape[1], out_channels, groups)
    outputs, col_buffers = [], []
    for g in range(groups):
        x_g = x[:, g * group_in : (g + 1) * group_in]
        w_g = weight[g * group_out : (g + 1) * group_out]
        b_g = bias[g * group_out : (g + 1) * group_out] if bias is not None else None
        out_g, cols_g = conv2d_forward(x_g, w_g, b_g, stride, padding)
        outputs.append(out_g)
        col_buffers.append(cols_g)
    return np.concatenate(outputs, axis=1), tuple(col_buffers)


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    x_cols: np.ndarray | tuple[np.ndarray, ...],
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    need_input_grad: bool = True,
    groups: int = 1,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Backward 2-D convolution, optionally grouped.

    Implements both backward products from the paper:

    * GTA — gradient to input activations ``dI = sum_i dO_i * W+_{i,j}``.
    * GTW — gradient to weights ``dW_{i,j} = dO_i * I_j``.

    ``x_cols`` is the buffer returned by :func:`conv2d_forward` (a tuple of
    per-group buffers when ``groups > 1``).  Returns ``(grad_input, grad_weight,
    grad_bias)``; ``grad_input`` is ``None`` when ``need_input_grad`` is
    ``False`` (first layer of a network).
    """
    if groups > 1:
        return _grouped_conv2d_backward(
            grad_out, x_shape, x_cols, weight, stride, padding, need_input_grad, groups
        )
    out_channels, _, kernel_h, kernel_w = weight.shape
    grad_out_rows = grad_out.transpose(1, 2, 3, 0).reshape(out_channels, -1)

    grad_bias = grad_out.sum(axis=(0, 2, 3))
    grad_weight = (grad_out_rows @ x_cols.T).reshape(weight.shape)

    grad_input = None
    if need_input_grad:
        w_rows = weight.reshape(out_channels, -1)
        grad_cols = w_rows.T @ grad_out_rows
        grad_input = col2im(grad_cols, x_shape, kernel_h, kernel_w, stride, padding)
    return grad_input, grad_weight, grad_bias


def _grouped_conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    x_cols: tuple[np.ndarray, ...],
    weight: np.ndarray,
    stride: int,
    padding: int,
    need_input_grad: bool,
    groups: int,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Grouped backward pass: run the dense backward per channel group."""
    batch, channels, height, width = x_shape
    out_channels = weight.shape[0]
    group_in, group_out = check_group_split(channels, out_channels, groups)
    if len(x_cols) != groups:
        raise ValueError(
            f"x_cols has {len(x_cols)} group buffers, expected {groups}"
        )
    grad_inputs, grad_weights, grad_biases = [], [], []
    for g in range(groups):
        grad_out_g = grad_out[:, g * group_out : (g + 1) * group_out]
        weight_g = weight[g * group_out : (g + 1) * group_out]
        grad_input_g, grad_weight_g, grad_bias_g = conv2d_backward(
            grad_out_g,
            (batch, group_in, height, width),
            x_cols[g],
            weight_g,
            stride,
            padding,
            need_input_grad=need_input_grad,
        )
        grad_inputs.append(grad_input_g)
        grad_weights.append(grad_weight_g)
        grad_biases.append(grad_bias_g)
    grad_input = np.concatenate(grad_inputs, axis=1) if need_input_grad else None
    return grad_input, np.concatenate(grad_weights), np.concatenate(grad_biases)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Forward max pooling.

    Returns ``(output, argmax)`` where ``argmax`` stores, for every output
    element, the flat index of the winning element inside its window.  This is
    the "mask recorded in the forward stage" that the paper's GTA step reuses.
    """
    stride = kernel if stride is None else stride
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)

    x_reshaped = x.reshape(batch * channels, 1, height, width)
    cols = im2col(x_reshaped, kernel, kernel, stride, 0)
    argmax = np.argmax(cols, axis=0)
    out = cols[argmax, np.arange(cols.shape[1])]
    out = out.reshape(out_h, out_w, batch, channels).transpose(2, 3, 0, 1)
    return np.ascontiguousarray(out), argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    argmax: np.ndarray,
    kernel: int,
    stride: int | None = None,
) -> np.ndarray:
    """Backward max pooling: route gradients to the argmax positions."""
    stride = kernel if stride is None else stride
    batch, channels, height, width = x_shape
    grad_flat = grad_out.transpose(2, 3, 0, 1).reshape(-1)
    cols = np.zeros((kernel * kernel, grad_flat.size), dtype=grad_out.dtype)
    cols[argmax, np.arange(grad_flat.size)] = grad_flat
    grad_x = col2im(
        cols, (batch * channels, 1, height, width), kernel, kernel, stride, 0
    )
    return grad_x.reshape(x_shape)


def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Forward average pooling over non-overlapping or strided windows."""
    stride = kernel if stride is None else stride
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    x_reshaped = x.reshape(batch * channels, 1, height, width)
    cols = im2col(x_reshaped, kernel, kernel, stride, 0)
    out = cols.mean(axis=0)
    out = out.reshape(out_h, out_w, batch, channels).transpose(2, 3, 0, 1)
    return np.ascontiguousarray(out)


def avgpool2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int | None = None,
) -> np.ndarray:
    """Backward average pooling: spread gradients uniformly over each window."""
    stride = kernel if stride is None else stride
    batch, channels, height, width = x_shape
    grad_flat = grad_out.transpose(2, 3, 0, 1).reshape(-1)
    cols = np.tile(grad_flat / (kernel * kernel), (kernel * kernel, 1))
    grad_x = col2im(
        cols, (batch * channels, 1, height, width), kernel, kernel, stride, 0
    )
    return grad_x.reshape(x_shape)


# ---------------------------------------------------------------------------
# Activations and normalisation
# ---------------------------------------------------------------------------

def relu_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """ReLU forward; returns ``(output, mask)`` with the non-zero mask."""
    mask = x > 0
    return x * mask, mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """ReLU backward using the mask recorded in the forward pass."""
    return grad_out * mask


def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    training: bool,
    axes: tuple[int, ...],
) -> tuple[np.ndarray, dict]:
    """Batch normalisation forward over ``axes`` (e.g. ``(0, 2, 3)`` for NCHW).

    Running statistics are updated in place when ``training`` is true.
    Returns ``(output, cache)`` where ``cache`` feeds the backward pass.
    """
    shape = [1] * x.ndim
    for axis in range(x.ndim):
        if axis not in axes:
            shape[axis] = x.shape[axis]

    if training:
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        count = x.size / mean.size
        # Unbiased variance for the running estimate, biased for normalisation
        # (matches the convention used by mainstream frameworks).
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1 - momentum
        running_mean += momentum * mean
        running_var *= 1 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    mean_b = mean.reshape(shape)
    var_b = var.reshape(shape)
    inv_std = 1.0 / np.sqrt(var_b + eps)
    x_hat = (x - mean_b) * inv_std
    out = gamma.reshape(shape) * x_hat + beta.reshape(shape)
    cache = {
        "x_hat": x_hat,
        "inv_std": inv_std,
        "gamma": gamma,
        "shape": shape,
        "axes": axes,
    }
    return out, cache


def batchnorm_backward(
    grad_out: np.ndarray, cache: dict
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch normalisation backward; returns ``(dx, dgamma, dbeta)``."""
    x_hat = cache["x_hat"]
    inv_std = cache["inv_std"]
    gamma = cache["gamma"]
    shape = cache["shape"]
    axes = cache["axes"]

    count = grad_out.size / gamma.size
    dbeta = grad_out.sum(axis=axes)
    dgamma = (grad_out * x_hat).sum(axis=axes)

    gamma_b = gamma.reshape(shape)
    dx_hat = grad_out * gamma_b
    mean_dx_hat = dx_hat.mean(axis=axes).reshape(shape)
    mean_dx_hat_xhat = (dx_hat * x_hat).mean(axis=axes).reshape(shape)
    dx = inv_std * (dx_hat - mean_dx_hat - x_hat * mean_dx_hat_xhat)
    # The training-mode backward divides by the per-feature count implicitly
    # through the two means above, so no further scaling by ``count`` needed.
    del count
    return dx, dgamma, dbeta


# ---------------------------------------------------------------------------
# Linear / classifier head
# ---------------------------------------------------------------------------

def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    """Affine transform ``y = x @ W.T + b`` for ``x`` of shape (N, in)."""
    out = x @ weight.T
    if bias is not None:
        out += bias
    return out


def linear_backward(
    grad_out: np.ndarray, x: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward affine transform; returns ``(dx, dW, db)``."""
    grad_input = grad_out @ weight
    grad_weight = grad_out.T @ x
    grad_bias = grad_out.sum(axis=0)
    return grad_input, grad_weight, grad_bias


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient with respect to the logits.

    ``labels`` are integer class indices of shape (N,).
    """
    batch = logits.shape[0]
    probs = softmax(logits)
    eps = np.finfo(probs.dtype).tiny
    loss = -np.log(probs[np.arange(batch), labels] + eps).mean()
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return float(loss), grad
