"""Loss functions.

Each loss exposes ``forward(predictions, targets) -> loss`` and caches what it
needs to later return the gradient with respect to the predictions from
``backward()`` — the entry point of the paper's GTA sweep.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F


class SoftmaxCrossEntropy:
    """Softmax cross-entropy over integer class labels."""

    def __init__(self) -> None:
        self._grad: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Compute the mean loss and cache the gradient w.r.t. the logits."""
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, classes), got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("labels contain indices outside [0, num_classes)")
        loss, grad = F.cross_entropy_loss(logits, labels)
        self._grad = grad
        return loss

    def backward(self) -> np.ndarray:
        """Return the gradient of the loss with respect to the logits."""
        if self._grad is None:
            raise RuntimeError("backward called before forward")
        return self._grad

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MeanSquaredError:
    """Mean squared error between predictions and targets of equal shape."""

    def __init__(self) -> None:
        self._grad: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape}, targets {targets.shape}"
            )
        diff = predictions - targets
        self._grad = 2.0 * diff / diff.size
        return float(np.mean(diff * diff))

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise RuntimeError("backward called before forward")
        return self._grad

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
