"""Composite layers: Sequential containers, residual and depthwise blocks."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn.layers.activation import ReLU
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm2D
from repro.nn.layers.conv import Conv2D


class Sequential(Layer):
    """Chain of layers applied in order.

    Backward runs the layers in reverse order, which is exactly the paper's
    GTA sweep from the loss back to the input layer.
    """

    def __init__(self, layers: Iterable[Layer], name: str | None = None) -> None:
        super().__init__(name=name)
        self.layers: list[Layer] = list(layers)
        for index, layer in enumerate(self.layers):
            if not isinstance(layer, Layer):
                raise TypeError(
                    f"{self.name}: element {index} is {type(layer).__name__}, expected Layer"
                )

    def children(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def append(self, layer: Layer) -> None:
        """Append a layer to the end of the chain."""
        if not isinstance(layer, Layer):
            raise TypeError(f"expected Layer, got {type(layer).__name__}")
        self.layers.append(layer)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class ResidualBlock(Layer):
    """A basic ResNet block: Conv-BN-ReLU-Conv-BN plus identity/projection skip.

    The block is the Conv-BN-ReLU structure from the paper's Fig. 4: the
    gradient entering each internal convolution's backward (``dO``) is dense
    after passing through the BN backward, which is exactly why the paper
    prunes ``dO`` for this structure.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        prefix = self.name
        self.conv1 = Conv2D(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False,
            rng=rng, name=f"{prefix}.conv1",
        )
        self.bn1 = BatchNorm2D(out_channels, name=f"{prefix}.bn1")
        self.relu1 = ReLU(name=f"{prefix}.relu1")
        self.conv2 = Conv2D(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False,
            rng=rng, name=f"{prefix}.conv2",
        )
        self.bn2 = BatchNorm2D(out_channels, name=f"{prefix}.bn2")
        self.relu2 = ReLU(name=f"{prefix}.relu2")

        self.downsample_conv: Conv2D | None = None
        self.downsample_bn: BatchNorm2D | None = None
        if stride != 1 or in_channels != out_channels:
            self.downsample_conv = Conv2D(
                in_channels, out_channels, 1, stride=stride, padding=0, bias=False,
                rng=rng, name=f"{prefix}.down_conv",
            )
            self.downsample_bn = BatchNorm2D(out_channels, name=f"{prefix}.down_bn")

    def children(self) -> Iterator[Layer]:
        yield self.conv1
        yield self.bn1
        yield self.relu1
        yield self.conv2
        yield self.bn2
        yield self.relu2
        if self.downsample_conv is not None:
            yield self.downsample_conv
        if self.downsample_bn is not None:
            yield self.downsample_bn

    def _forward(self, x: np.ndarray) -> np.ndarray:
        out = self.conv1.forward(x)
        out = self.bn1.forward(out)
        out = self.relu1.forward(out)
        out = self.conv2.forward(out)
        out = self.bn2.forward(out)
        if self.downsample_conv is not None:
            identity = self.downsample_conv.forward(x)
            identity = self.downsample_bn.forward(identity)
        else:
            identity = x
        return self.relu2.forward(out + identity)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_out)
        # grad_sum splits into the residual branch and the skip branch.
        grad_branch = self.bn2.backward(grad_sum)
        grad_branch = self.conv2.backward(grad_branch)
        grad_branch = self.relu1.backward(grad_branch)
        grad_branch = self.bn1.backward(grad_branch)
        grad_branch = self.conv1.backward(grad_branch)

        if self.downsample_conv is not None:
            grad_skip = self.downsample_bn.backward(grad_sum)
            grad_skip = self.downsample_conv.backward(grad_skip)
        else:
            grad_skip = grad_sum
        return grad_branch + grad_skip


class DepthwiseSeparableBlock(Layer):
    """A MobileNetV1 block: depthwise Conv-BN-ReLU then pointwise Conv-BN-ReLU.

    The depthwise convolution (``groups == in_channels``) filters each channel
    independently; the 1x1 pointwise convolution mixes channels.  Both
    convolutions sit in Conv-BN-ReLU structures, so — like ResNet blocks —
    the pruning algorithm targets the ``dO`` gradient of each convolution.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        kernel_size: int = 3,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        prefix = self.name
        self.depthwise = Conv2D(
            in_channels, in_channels, kernel_size, stride=stride,
            padding=kernel_size // 2, groups=in_channels, bias=False,
            rng=rng, name=f"{prefix}.dw",
        )
        self.bn1 = BatchNorm2D(in_channels, name=f"{prefix}.dw_bn")
        self.relu1 = ReLU(name=f"{prefix}.dw_relu")
        self.pointwise = Conv2D(
            in_channels, out_channels, 1, stride=1, padding=0, bias=False,
            rng=rng, name=f"{prefix}.pw",
        )
        self.bn2 = BatchNorm2D(out_channels, name=f"{prefix}.pw_bn")
        self.relu2 = ReLU(name=f"{prefix}.pw_relu")

    def children(self) -> Iterator[Layer]:
        yield self.depthwise
        yield self.bn1
        yield self.relu1
        yield self.pointwise
        yield self.bn2
        yield self.relu2

    def _forward(self, x: np.ndarray) -> np.ndarray:
        out = self.depthwise.forward(x)
        out = self.bn1.forward(out)
        out = self.relu1.forward(out)
        out = self.pointwise.forward(out)
        out = self.bn2.forward(out)
        return self.relu2.forward(out)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_out)
        grad = self.bn2.backward(grad)
        grad = self.pointwise.backward(grad)
        grad = self.relu1.backward(grad)
        grad = self.bn1.backward(grad)
        return self.depthwise.backward(grad)
