"""Pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.base import Layer
from repro.utils.validation import check_positive_int


class MaxPool2D(Layer):
    """Max pooling over square windows.

    The argmax positions recorded in the forward pass are the "mask" the
    paper's GTA step reuses: the backward pass only routes gradient to the
    winning position of each window, all other positions are exactly zero.
    """

    def __init__(self, kernel: int, stride: int | None = None, name: str | None = None) -> None:
        super().__init__(name=name)
        self.kernel = check_positive_int(kernel, "kernel")
        self.stride = check_positive_int(stride, "stride") if stride is not None else self.kernel
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def output_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        channels, height, width = in_shape
        out_h = F.conv_output_size(height, self.kernel, self.stride, 0)
        out_w = F.conv_output_size(width, self.kernel, self.stride, 0)
        return (channels, out_h, out_w)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.maxpool2d_forward(x, self.kernel, self.stride)
        self._argmax = argmax
        self._x_shape = x.shape
        return out

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return F.maxpool2d_backward(grad_out, self._x_shape, self._argmax, self.kernel, self.stride)


class AvgPool2D(Layer):
    """Average pooling over square windows."""

    def __init__(self, kernel: int, stride: int | None = None, name: str | None = None) -> None:
        super().__init__(name=name)
        self.kernel = check_positive_int(kernel, "kernel")
        self.stride = check_positive_int(stride, "stride") if stride is not None else self.kernel
        self._x_shape: tuple[int, int, int, int] | None = None

    def _forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return F.avgpool2d_forward(x, self.kernel, self.stride)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return F.avgpool2d_backward(grad_out, self._x_shape, self.kernel, self.stride)


class GlobalAvgPool2D(Layer):
    """Average pooling over the full spatial extent, producing (N, C)."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._x_shape: tuple[int, int, int, int] | None = None

    def _forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        _, _, height, width = self._x_shape
        scale = 1.0 / (height * width)
        return np.broadcast_to(
            grad_out[:, :, None, None] * scale, self._x_shape
        ).copy()
