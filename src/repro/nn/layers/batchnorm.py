"""Batch normalisation layers (2-D for NCHW feature maps, 1-D for vectors)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers.base import Layer, Parameter
from repro.utils.validation import check_positive_float, check_positive_int


class _BatchNorm(Layer):
    """Shared implementation; subclasses fix the reduction axes."""

    axes: tuple[int, ...] = (0,)

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        self.num_features = check_positive_int(num_features, "num_features")
        self.momentum = check_positive_float(momentum, "momentum")
        self.eps = check_positive_float(eps, "eps")
        self.gamma = Parameter(init.ones((num_features,)), name=f"{self.name}.gamma")
        self.beta = Parameter(init.zeros((num_features,)), name=f"{self.name}.beta")
        self.running_mean = np.zeros((num_features,), dtype=np.float64)
        self.running_var = np.ones((num_features,), dtype=np.float64)
        self._cache: dict | None = None

    def _own_parameters(self):
        return (self.gamma, self.beta)

    def _check_input(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def _forward(self, x: np.ndarray) -> np.ndarray:
        self._check_input(x)
        out, cache = F.batchnorm_forward(
            x,
            self.gamma.data,
            self.beta.data,
            self.running_mean,
            self.running_var,
            self.momentum,
            self.eps,
            self.training,
            self.axes,
        )
        self._cache = cache if self.training else None
        return out

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward requires a preceding training-mode forward"
            )
        grad_input, dgamma, dbeta = F.batchnorm_backward(grad_out, self._cache)
        self.gamma.accumulate_grad(dgamma)
        self.beta.accumulate_grad(dbeta)
        return grad_input


class BatchNorm2D(_BatchNorm):
    """Batch normalisation over (N, C, H, W), normalising each channel."""

    axes = (0, 2, 3)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected input (N, {self.num_features}, H, W), got {x.shape}"
            )


class BatchNorm1D(_BatchNorm):
    """Batch normalisation over (N, C) feature vectors."""

    axes = (0,)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected input (N, {self.num_features}), got {x.shape}"
            )
