"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers.base import Layer, Parameter
from repro.utils.validation import (
    check_group_split,
    check_non_negative_int,
    check_positive_int,
)


class Conv2D(Layer):
    """A standard 2-D convolution over NCHW activations.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts ``C`` and ``F`` in the paper's notation.
    kernel_size:
        Square kernel size ``K``.
    stride, padding:
        Spatial stride and zero padding.
    groups:
        Channel groups; output channel ``f`` only convolves the
        ``in_channels / groups`` input channels of its group.
        ``groups == in_channels == out_channels`` gives a depthwise
        convolution.  The weight tensor shape is
        ``(F, C / groups, K, K)`` and the fan-in used for initialisation
        shrinks accordingly.
    bias:
        Whether the layer carries a bias vector ``b``.
    rng:
        Generator used for weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        self.in_channels = check_positive_int(in_channels, "in_channels")
        self.out_channels = check_positive_int(out_channels, "out_channels")
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride, "stride")
        self.padding = check_non_negative_int(padding, "padding")
        self.groups = check_positive_int(groups, "groups")
        check_group_split(in_channels, out_channels, groups, name=self.name)

        fan_in = (in_channels // groups) * kernel_size * kernel_size
        weight = init.kaiming_normal(
            (out_channels, in_channels // groups, kernel_size, kernel_size), fan_in, rng
        )
        self.weight = Parameter(weight, name=f"{self.name}.weight")
        self.bias = Parameter(init.zeros((out_channels,)), name=f"{self.name}.bias") if bias else None

        self._cache_x_shape: tuple[int, int, int, int] | None = None
        self._cache_x_cols: np.ndarray | tuple[np.ndarray, ...] | None = None

    def _own_parameters(self):
        if self.bias is not None:
            return (self.weight, self.bias)
        return (self.weight,)

    def output_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        """Compute the (C, H, W) output shape for a (C, H, W) input shape."""
        _, height, width = in_shape
        out_h = F.conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        bias = self.bias.data if self.bias is not None else None
        out, x_cols = F.conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding, self.groups
        )
        self._cache_x_shape = x.shape
        self._cache_x_cols = x_cols
        return out

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x_cols is None or self._cache_x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        grad_input, grad_weight, grad_bias = F.conv2d_backward(
            grad_out,
            self._cache_x_shape,
            self._cache_x_cols,
            self.weight.data,
            self.stride,
            self.padding,
            need_input_grad=True,
            groups=self.groups,
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input
