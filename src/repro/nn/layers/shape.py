"""Shape-manipulation layers (flatten) and dropout regularisation."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import derive_rng
from repro.utils.validation import check_probability


class Flatten(Layer):
    """Flatten (N, C, H, W) feature maps into (N, C*H*W) vectors."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._x_shape: tuple[int, ...] | None = None

    def _forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return grad_out.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout: active only in training mode."""

    def __init__(
        self,
        rate: float = 0.5,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        self.rate = check_probability(rate, "rate")
        self.rng = derive_rng(rng)
        self._mask: np.ndarray | None = None

    def _forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
