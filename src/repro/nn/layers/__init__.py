"""Layer classes for the numpy CNN training framework."""

from repro.nn.layers.activation import ReLU
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.batchnorm import BatchNorm1D, BatchNorm2D
from repro.nn.layers.container import DepthwiseSeparableBlock, ResidualBlock, Sequential
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.shape import Dropout, Flatten

__all__ = [
    "Layer",
    "Parameter",
    "Conv2D",
    "Linear",
    "ReLU",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "Sequential",
    "ResidualBlock",
    "DepthwiseSeparableBlock",
]
