"""Activation layers (ReLU).

ReLU is the source of the paper's *natural* sparsity: its forward pass zeroes
negative activations (sparse ``I`` for the next CONV layer) and its backward
pass applies the recorded mask to the incoming gradient (sparse ``dO`` for the
preceding CONV layer in Conv-ReLU structures).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Pointwise ``max(0, x)`` with mask recording for the backward pass."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._mask: np.ndarray | None = None

    @property
    def mask(self) -> np.ndarray | None:
        """Non-zero mask recorded during the last forward pass.

        The accelerator's MSRC operation consumes exactly this mask to skip
        computing gradient values that ReLU would zero anyway.
        """
        return self._mask

    def _forward(self, x: np.ndarray) -> np.ndarray:
        out, mask = F.relu_forward(x)
        self._mask = mask
        return out

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return F.relu_backward(grad_out, self._mask)
