"""Fully connected (linear) layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers.base import Layer, Parameter
from repro.utils.validation import check_positive_int


class Linear(Layer):
    """Affine layer ``y = x @ W.T + b`` over (N, in_features) inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        weight = init.kaiming_normal((out_features, in_features), in_features, rng)
        self.weight = Parameter(weight, name=f"{self.name}.weight")
        self.bias = (
            Parameter(init.zeros((out_features,)), name=f"{self.name}.bias") if bias else None
        )
        self._cache_x: np.ndarray | None = None

    def _own_parameters(self):
        if self.bias is not None:
            return (self.weight, self.bias)
        return (self.weight,)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cache_x = x
        bias = self.bias.data if self.bias is not None else None
        return F.linear_forward(x, self.weight.data, bias)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        grad_input, grad_weight, grad_bias = F.linear_backward(
            grad_out, self._cache_x, self.weight.data
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input
