"""Layer and Parameter base classes for the numpy training framework.

The framework is deliberately explicit: every layer caches whatever it needs
during :meth:`Layer.forward` and consumes it in :meth:`Layer.backward`.  There
is no autograd tape — CNN training as described in the SparseTrain paper is a
fixed three-stage pipeline (Forward, GTA, GTW) and modelling it explicitly
keeps the correspondence between the numpy reference and the accelerator
dataflow obvious.

Gradient *hooks* are the integration point for the paper's contribution: the
stochastic activation-gradient pruning attaches to layers as a hook that
rewrites the gradient tensor flowing out of (or into) a layer's backward pass.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

GradHook = Callable[[np.ndarray], np.ndarray]
ForwardHook = Callable[["Layer", np.ndarray, np.ndarray], None]


class Parameter:
    """A trainable tensor with its accumulated gradient.

    Attributes
    ----------
    data:
        Current parameter values.
    grad:
        Gradient of the loss with respect to ``data``; ``None`` until the
        first backward pass, reset by the optimiser via :meth:`zero_grad`.
    name:
        Human-readable name used in reports and debugging.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient (creating it if absent)."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`_forward` and :meth:`_backward`; the public
    :meth:`forward`/:meth:`backward` wrappers apply registered gradient hooks
    and keep book-keeping consistent.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self.training = True
        self._grad_output_hooks: list[GradHook] = []
        self._grad_input_hooks: list[GradHook] = []
        self._forward_hooks: list[ForwardHook] = []

    # ------------------------------------------------------------------
    # Hook registration
    # ------------------------------------------------------------------
    def register_grad_output_hook(self, hook: GradHook) -> None:
        """Register a hook applied to the gradient *entering* backward.

        In the paper's terminology this is ``dO`` of the layer — the gradient
        with respect to the layer's output.
        """
        self._grad_output_hooks.append(hook)

    def register_grad_input_hook(self, hook: GradHook) -> None:
        """Register a hook applied to the gradient *leaving* backward.

        In the paper's terminology this is ``dI`` of the layer — the gradient
        with respect to the layer's input, which is what gets propagated to
        the previous layer.
        """
        self._grad_input_hooks.append(hook)

    def register_forward_hook(self, hook: ForwardHook) -> None:
        """Register an observer called as ``hook(layer, x, output)`` after forward.

        Forward hooks are observational only (their return value is ignored);
        the sparsity profiler uses them to measure activation densities
        without touching the layers themselves.
        """
        self._forward_hooks.append(hook)

    def clear_hooks(self) -> None:
        """Remove all registered gradient and forward hooks."""
        self._grad_output_hooks.clear()
        self._grad_input_hooks.clear()
        self._forward_hooks.clear()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Layer":
        """Put the layer (and sub-layers) in training mode."""
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Layer":
        """Put the layer (and sub-layers) in evaluation mode."""
        self.training = False
        for child in self.children():
            child.eval()
        return self

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def children(self) -> Iterable["Layer"]:
        """Yield immediate sub-layers; leaf layers yield nothing."""
        return ()

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of the layer and its children."""
        params: list[Parameter] = list(self._own_parameters())
        for child in self.children():
            params.extend(child.parameters())
        return params

    def _own_parameters(self) -> Iterable[Parameter]:
        return ()

    def zero_grad(self) -> None:
        """Reset gradients of every parameter owned by this layer tree."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the forward pass (caching whatever backward needs)."""
        x = np.asarray(x, dtype=np.float64)
        out = self._forward(x)
        for hook in self._forward_hooks:
            hook(self, x, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Run the backward pass, applying gradient hooks.

        ``grad_out`` is the gradient of the loss with respect to this layer's
        output; the return value is the gradient with respect to its input.
        """
        grad = np.asarray(grad_out, dtype=np.float64)
        for hook in self._grad_output_hooks:
            grad = hook(grad)
        grad_in = self._backward(grad)
        for hook in self._grad_input_hooks:
            grad_in = hook(grad_in)
        return grad_in

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # Subclass API -------------------------------------------------------
    def _forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
