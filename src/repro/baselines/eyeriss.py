"""Dense training baseline (Eyeriss-like row-stationary architecture).

The paper's baseline is Eyeriss [8] "modified to support the dense training
process" with the same number of PEs (168) and the same global buffer.  The
baseline therefore shares all of SparseTrain's machinery except the one thing
the paper varies: it does not exploit sparsity.  Concretely:

* every operand (zero or not) costs a PE cycle and a full K-wide MAC,
* operands are stored and moved in dense (uncompressed) form,
* no MSRC output skipping (the ReLU mask is not consulted),

which is exactly what compiling a program with ``sparse=False`` and running
it on a :func:`~repro.arch.config.dense_baseline_config` produces.  This
module wraps that recipe in a convenient API and adds the pure roofline
reference model used in sanity tests.
"""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorSimulator
from repro.arch.config import ArchConfig, dense_baseline_config
from repro.arch.energy import EnergyModel
from repro.arch.results import SimulationResult
from repro.dataflow.compiler import compile_training_iteration
from repro.models.spec import ModelSpec


class DenseBaselineSimulator:
    """Simulate the dense Eyeriss-like training baseline on a model."""

    def __init__(
        self,
        config: ArchConfig | None = None,
        energy_model: EnergyModel | None = None,
    ) -> None:
        self.config = config if config is not None else dense_baseline_config()
        if self.config.sparse_dataflow:
            raise ValueError(
                "DenseBaselineSimulator requires a config with sparse_dataflow=False"
            )
        self.energy_model = energy_model
        self._simulator = AcceleratorSimulator(self.config, energy_model)

    def run(self, spec: ModelSpec) -> SimulationResult:
        """Simulate one dense training iteration (per sample) of ``spec``."""
        program = compile_training_iteration(spec, densities=None, sparse=False)
        return self._simulator.run_program(program)


def dense_training_cycles_roofline(spec: ModelSpec, config: ArchConfig) -> float:
    """Compute-roofline cycle count for dense training of ``spec``.

    Every dense MAC is executed at the array's peak rate
    (``num_pes * kernel_size`` MACs per cycle).  Real schedules cannot beat
    this; tests assert the baseline simulator never reports fewer cycles.
    """
    total_macs = float(spec.conv_training_macs)
    return total_macs / config.peak_macs_per_cycle
