"""Baseline architectures the paper compares against."""

from repro.baselines.eyeriss import DenseBaselineSimulator, dense_training_cycles_roofline

__all__ = ["DenseBaselineSimulator", "dense_training_cycles_roofline"]
