"""First-order area model for the accelerator configurations.

The paper synthesises the PE, PPU and controller with Design Compiler
(GF 14 nm FinFET) and estimates the SRAM buffer with PCACTI to obtain area
numbers.  Neither tool is available here, so this module provides a
first-order analytical estimate built from published 14 nm-class component
densities: a K-wide 16-bit multiply-accumulate datapath, small register files,
a fixed PPU/controller overhead per group, and SRAM macro density for the
global buffer.

The absolute mm² values are indicative only; what the model is for is
*comparing configurations* (PE-count sweeps, buffer-size sweeps) on an
equal-area basis, e.g. to check that SparseTrain and the dense baseline with
the same PE count and buffer are an (approximately) iso-area comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ArchConfig


@dataclass(frozen=True)
class AreaModel:
    """Per-component area constants (mm², 14 nm-class).

    Attributes
    ----------
    mac_mm2:
        One 16-bit multiplier + accumulator lane.
    register_word_mm2:
        One 16-bit register-file word (Reg-1 / Reg-2 storage).
    ppu_mm2:
        One post-processing unit (ReLU, format converter, two accumulators).
    controller_mm2:
        The global controller and scheduling logic.
    sram_mm2_per_kib:
        SRAM macro area per KiB, including peripherals.
    """

    mac_mm2: float = 0.0008
    register_word_mm2: float = 0.000002
    ppu_mm2: float = 0.002
    controller_mm2: float = 0.05
    sram_mm2_per_kib: float = 0.0045

    def __post_init__(self) -> None:
        for name in (
            "mac_mm2",
            "register_word_mm2",
            "ppu_mm2",
            "controller_mm2",
            "sram_mm2_per_kib",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class AreaBreakdown:
    """Estimated area of one accelerator configuration, by component (mm²)."""

    pe_array_mm2: float
    register_mm2: float
    ppu_mm2: float
    controller_mm2: float
    sram_mm2: float

    @property
    def total_mm2(self) -> float:
        return (
            self.pe_array_mm2
            + self.register_mm2
            + self.ppu_mm2
            + self.controller_mm2
            + self.sram_mm2
        )

    def fraction(self, component: str) -> float:
        """Fraction of total area in ``component`` (pe_array/register/ppu/controller/sram)."""
        total = self.total_mm2
        if total == 0.0:
            return 0.0
        return getattr(self, f"{component}_mm2") / total


# Register words per PE: Reg-1 holds K weights/gradients, Reg-2 holds up to a
# row of partial sums (sized for the widest evaluated feature map row, 56).
_REG1_WORDS_PER_PE = 1
_REG2_WORDS_PER_PE = 64


def estimate_area(config: ArchConfig, model: AreaModel | None = None) -> AreaBreakdown:
    """Estimate the silicon area of an accelerator configuration."""
    model = model if model is not None else AreaModel()
    macs = config.num_pes * config.kernel_size
    register_words = config.num_pes * (
        _REG1_WORDS_PER_PE * config.kernel_size + _REG2_WORDS_PER_PE
    )
    return AreaBreakdown(
        pe_array_mm2=macs * model.mac_mm2,
        register_mm2=register_words * model.register_word_mm2,
        ppu_mm2=config.num_groups * model.ppu_mm2,
        controller_mm2=model.controller_mm2,
        sram_mm2=config.buffer_kib * model.sram_mm2_per_kib,
    )


def iso_area_pe_count(
    reference: ArchConfig,
    candidate: ArchConfig,
    model: AreaModel | None = None,
) -> int:
    """PE count that makes ``candidate`` match ``reference``'s total area.

    Useful for iso-area design-space sweeps: given a reference configuration,
    how many PEs can a candidate configuration (e.g. with a different buffer
    size) afford in the same footprint?  The result is floored at one PE group.
    """
    model = model if model is not None else AreaModel()
    reference_area = estimate_area(reference, model).total_mm2
    fixed = estimate_area(candidate.evolve(num_pes=candidate.pes_per_group), model)
    per_pe = (
        model.mac_mm2 * candidate.kernel_size
        + model.register_word_mm2
        * (_REG1_WORDS_PER_PE * candidate.kernel_size + _REG2_WORDS_PER_PE)
        + model.ppu_mm2 / candidate.pes_per_group
    )
    fixed_area = fixed.controller_mm2 + fixed.sram_mm2
    budget = reference_area - fixed_area
    if budget <= 0:
        return candidate.pes_per_group
    count = int(budget / per_pe)
    # Round down to a whole number of PE groups, at least one group.
    groups = max(count // candidate.pes_per_group, 1)
    return groups * candidate.pes_per_group
