"""PE group: three PEs sharing one Post Processing Unit (Fig. 7a)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.pe import PE, PEOpStats, execute_ops_arrays, stats_total
from repro.arch.ppu import PPU
from repro.dataflow.ops import RowOp


@dataclass
class GroupResult:
    """Result of running a batch of row operations on one PE group."""

    results: list[np.ndarray]
    stats: PEOpStats
    cycles: int
    ppu_cycles: int


class PEGroup:
    """A group of PEs plus one PPU, scheduled with a greedy least-loaded policy.

    Within a group the PEs operate independently on different row operations;
    the group's completion time is the busiest PE's cycle count.  The PPU
    post-processes finished rows; its work overlaps with PE computation so it
    only adds to the critical path when it exceeds the PE time (rare — it is
    one cycle per produced value).
    """

    def __init__(
        self,
        num_pes: int = 3,
        zero_skipping: bool = True,
        amortize_weight_load: bool = False,
        backend: str = "vector",
    ) -> None:
        if num_pes <= 0:
            raise ValueError(f"num_pes must be positive, got {num_pes}")
        self.pes = [
            PE(
                zero_skipping=zero_skipping,
                amortize_weight_load=amortize_weight_load,
                backend=backend,
            )
            for _ in range(num_pes)
        ]
        self.ppu = PPU()

    def run_ops(
        self,
        ops: list[RowOp],
        apply_relu: bool = False,
        accumulate_gradients: bool = False,
    ) -> GroupResult:
        """Run ``ops`` across the group's PEs and post-process the results."""
        pe_cycles = [0] * len(self.pes)
        total_stats = PEOpStats.zero()
        results: list[np.ndarray] = []
        ppu_cycles = 0

        for op in ops:
            pe_index = int(np.argmin(pe_cycles))
            result, stats = self.pes[pe_index].run(op)
            pe_cycles[pe_index] += stats.cycles
            total_stats = total_stats + stats
            _, row_cycles = self.ppu.process_row(
                result, apply_relu=apply_relu, accumulate_gradients=accumulate_gradients
            )
            ppu_cycles += row_cycles
            results.append(result)

        cycles = max(max(pe_cycles), 0)
        return GroupResult(
            results=results, stats=total_stats, cycles=cycles, ppu_cycles=ppu_cycles
        )

    def run_batch(
        self,
        ops: list[RowOp],
        apply_relu: bool = False,
        accumulate_gradients: bool = False,
    ) -> GroupResult:
        """Batched equivalent of :meth:`run_ops` (identical results and stats).

        The numerical work of all ops executes first through the pooled
        vector kernels (one set of numpy calls for the whole batch); the
        greedy least-loaded schedule is then replayed over the per-op cycle
        counts, so PE attribution, group cycles and PPU accounting match
        :meth:`run_ops` exactly.
        """
        first = self.pes[0]
        results, stat_arrays = execute_ops_arrays(
            ops,
            zero_skipping=first.zero_skipping,
            amortize_weight_load=first.amortize_weight_load,
            backend=first.backend,
        )

        # Replay the greedy least-loaded schedule over the per-op cycle
        # counts (plain-int loop), then attribute per-PE stat totals with one
        # bincount per field — identical outcome to run_ops' per-op updates.
        num_pes = len(self.pes)
        pe_cycles = [0] * num_pes
        assignment = np.zeros(len(results), dtype=np.int64)
        for index, op_cycles in enumerate(stat_arrays["cycles"].tolist()):
            pe_index = min(range(num_pes), key=pe_cycles.__getitem__)
            assignment[index] = pe_index
            pe_cycles[pe_index] += op_cycles
        for pe_index, pe in enumerate(self.pes):
            mine = assignment == pe_index
            if mine.any():
                pe.total_stats = pe.total_stats + stats_total(stat_arrays, mask=mine)

        ppu_cycles = 0
        for result in results:
            _, row_cycles = self.ppu.process_row(
                result, apply_relu=apply_relu, accumulate_gradients=accumulate_gradients
            )
            ppu_cycles += row_cycles

        cycles = max(max(pe_cycles), 0)
        return GroupResult(
            results=results,
            stats=stats_total(stat_arrays),
            cycles=cycles,
            ppu_cycles=ppu_cycles,
        )
