"""Layer-level accelerator simulator.

``AcceleratorSimulator`` executes the instruction stream produced by the
dataflow compiler and turns the expected event counts of every (layer, step)
into cycles and energy.  The model is deliberately explicit:

* **Compute cycles** — processed operands divided by the array's sustained
  operand rate (``num_pes * pe_utilization``; each PE consumes one operand per
  cycle and performs K MACs on it), plus the kernel-row reload overhead and a
  fixed per-step controller/drain cost.
* **DRAM cycles** — the step's operand traffic plus the weight tile traffic,
  divided by the DRAM bandwidth.  Transfers are double-buffered, so a step's
  latency is ``max(compute, dram)``, not the sum.
* **Energy** — counted events (MACs, register accesses, SRAM words, DRAM
  words, elapsed cycles for leakage) multiplied by the per-event costs of the
  :class:`~repro.arch.energy.EnergyModel`.

Running the same simulator on a program compiled with ``sparse=False`` and a
:func:`~repro.arch.config.dense_baseline_config` models the Eyeriss-like dense
training baseline with matched resources — the comparison the paper's Fig. 8
and Fig. 9 make.
"""

from __future__ import annotations

from repro.arch.buffer import GlobalBuffer
from repro.arch.config import ArchConfig
from repro.arch.dram import DRAM
from repro.arch.energy import (
    EnergyModel,
    EventCounts,
    default_energy_model,
    energy_from_events,
)
from repro.arch.results import SimulationResult, StepResult
from repro.dataflow.counts import LayerDensities, StepCounts, StepKind
from repro.dataflow.instructions import (
    LoadWeightsInstruction,
    Program,
    StepInstruction,
    StoreOutputInstruction,
)
from repro.models.spec import ConvLayerSpec


class AcceleratorSimulator:
    """Simulate one accelerator configuration executing compiled programs."""

    def __init__(self, config: ArchConfig, energy_model: EnergyModel | None = None) -> None:
        self.config = config
        self.energy_model = energy_model if energy_model is not None else default_energy_model()
        self.buffer = GlobalBuffer(config.buffer_words)
        self.dram = DRAM(config.dram_words_per_cycle)

    # ------------------------------------------------------------------
    # Per-step models
    # ------------------------------------------------------------------
    def compute_cycles(self, counts: StepCounts) -> float:
        """Cycles the PE array needs for one step (no DRAM stalls)."""
        config = self.config
        operand_rate = config.num_pes * config.pe_utilization
        work = counts.processed_operands / operand_rate
        weight_reload = (
            counts.weight_loads * config.weight_reload_overhead / config.num_pes
        )
        return work + weight_reload + config.sync_cycles_per_layer

    def dram_cycles(self, operand_words: float, weight_words: float) -> float:
        """Cycles to stream the step's DRAM traffic at the sustained bandwidth."""
        return self.dram.transfer_cycles(operand_words + weight_words)

    def _weight_tile_words(
        self, layer: ConvLayerSpec, densities: LayerDensities | None
    ) -> float:
        """Weight DRAM words for one step, including the tiling penalty."""
        densities = densities if densities is not None else LayerDensities.dense()
        factor = self.buffer.weight_tiling_factor(layer, densities, self.config.sparse_dataflow)
        return layer.weight_count * factor

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run_program(
        self,
        program: Program,
        densities: dict[str, LayerDensities] | None = None,
    ) -> SimulationResult:
        """Execute a compiled program and return per-sample cycles and energy.

        ``densities`` is only needed for the buffer-fit (weight tiling)
        analysis; the per-step operand counts are already baked into the
        program by the compiler.
        """
        result = SimulationResult(
            config_name=self.config.name,
            model_name=program.model_name,
            dataset=program.dataset,
            sparse=program.sparse,
            clock_ghz=self.config.clock_ghz,
        )

        pending_weight_words = 0.0
        pending_store_words = 0.0
        last_step_index: int | None = None

        for instruction in program.instructions:
            if isinstance(instruction, LoadWeightsInstruction):
                pending_weight_words += float(instruction.words)
                continue
            if isinstance(instruction, StoreOutputInstruction):
                # Output store belongs to the step that produced it.  Weight
                # gradients (the GTW step's output) are accumulated on chip
                # over the whole batch and written back once per iteration, so
                # their per-sample share divides by the batch size.
                words = float(instruction.words)
                if (
                    last_step_index is not None
                    and result.steps[last_step_index].step is StepKind.GTW
                ):
                    words /= self.config.batch_size
                pending_store_words += words
                if last_step_index is not None:
                    self._attach_store(result, last_step_index, pending_store_words)
                    pending_store_words = 0.0
                continue
            if not isinstance(instruction, StepInstruction):
                continue

            layer = instruction.layer
            counts = instruction.counts
            layer_densities = (densities or {}).get(layer.name) if densities else None

            weight_words = 0.0
            if pending_weight_words > 0.0:
                tiling = self.buffer.weight_tiling_factor(
                    layer,
                    layer_densities if layer_densities is not None else LayerDensities.dense(),
                    self.config.sparse_dataflow,
                )
                # Weights are fetched once per batch iteration and reused for
                # every sample in the batch, so the per-sample share divides
                # by the batch size.
                weight_words = pending_weight_words * tiling / self.config.batch_size
                pending_weight_words = 0.0

            compute = self.compute_cycles(counts)
            dram = self.dram_cycles(counts.dram_read_words, weight_words)
            cycles = max(compute, dram)

            dram_words = counts.dram_read_words + weight_words
            events = EventCounts(
                macs=counts.macs,
                reg_accesses=counts.reg_accesses,
                sram_words=counts.sram_words,
                dram_words=dram_words,
                cycles=cycles,
            )
            energy = energy_from_events(events, self.energy_model)

            self.buffer.record_reads(counts.sram_read_words)
            self.buffer.record_writes(counts.sram_write_words)
            self.dram.record_reads(counts.dram_read_words + weight_words)

            result.steps.append(
                StepResult(
                    layer_name=instruction.layer_name,
                    step=instruction.step,
                    compute_cycles=compute,
                    dram_cycles=dram,
                    cycles=cycles,
                    events=events,
                    energy=energy,
                )
            )
            last_step_index = len(result.steps) - 1
        return result

    def _attach_store(self, result: SimulationResult, step_index: int, words: float) -> None:
        """Fold an output-store transfer into the step that produced it."""
        if words <= 0.0:
            return
        step = result.steps[step_index]
        extra_dram_cycles = self.dram.transfer_cycles(words)
        new_dram_cycles = step.dram_cycles + extra_dram_cycles
        new_cycles = max(step.compute_cycles, new_dram_cycles)
        events = EventCounts(
            macs=step.events.macs,
            reg_accesses=step.events.reg_accesses,
            sram_words=step.events.sram_words,
            dram_words=step.events.dram_words + words,
            cycles=new_cycles,
        )
        self.dram.record_writes(words)
        result.steps[step_index] = StepResult(
            layer_name=step.layer_name,
            step=step.step,
            compute_cycles=step.compute_cycles,
            dram_cycles=new_dram_cycles,
            cycles=new_cycles,
            events=events,
            energy=energy_from_events(events, self.energy_model),
        )
