"""Off-chip DRAM model: traffic accounting and transfer-time estimation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_float


@dataclass
class DRAMStats:
    """Accumulated DRAM activity in 16-bit words."""

    read_words: float = 0.0
    write_words: float = 0.0

    @property
    def total_words(self) -> float:
        return self.read_words + self.write_words


class DRAM:
    """Bandwidth-limited DRAM interface.

    The simulator overlaps DRAM transfers with computation (double buffering
    in the global buffer), so a layer's latency is the maximum of its compute
    cycles and its DRAM transfer cycles rather than the sum.
    """

    def __init__(self, words_per_cycle: float) -> None:
        self.words_per_cycle = check_positive_float(words_per_cycle, "words_per_cycle")
        self.stats = DRAMStats()

    def record_reads(self, words: float) -> None:
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        self.stats.read_words += words

    def record_writes(self, words: float) -> None:
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        self.stats.write_words += words

    def transfer_cycles(self, words: float) -> float:
        """Cycles needed to move ``words`` at the sustained bandwidth."""
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        return words / self.words_per_cycle

    def reset(self) -> None:
        self.stats = DRAMStats()
