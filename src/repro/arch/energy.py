"""Energy model: per-event costs and breakdown accounting.

The paper estimates power from a synthesised 14 nm FinFET implementation
(Design Compiler / PrimeTime) and models the SRAM buffer with PCACTI.  None of
those tools are available here, so the Python model assigns an energy cost to
every *counted event* (MAC, register access, SRAM word, DRAM word) using
constants derived from published measurements — Horowitz's ISSCC 2014 "energy
table" (45 nm) scaled to a 14 nm-class process (~0.25x for logic, ~0.4x for
SRAM; DRAM interface energy dominated by I/O and left unscaled).

Absolute joules are therefore only indicative.  What the reproduction relies
on is (a) the *relative ordering* DRAM >> SRAM >> MAC ~ register, which holds
for any published table, and (b) using the *same* constants for SparseTrain
and for the dense baseline, so efficiency ratios (the Fig. 9 result) depend
only on the counted events.  Every constant can be overridden to test the
sensitivity of the conclusions (see the energy-model ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs in picojoules (16-bit datapath).

    Attributes
    ----------
    mac_pj:
        One 16-bit multiply-accumulate (combinational logic).
    reg_pj:
        One register-file access (read or write) of a 16-bit word.
    sram_pj:
        One 16-bit word read from or written to the global SRAM buffer.
    dram_pj:
        One 16-bit word transferred to/from off-chip DRAM.
    leakage_pj_per_cycle:
        Static energy of the whole accelerator per cycle (covers clock tree
        and idle logic); charged per elapsed cycle, not per event.
    """

    mac_pj: float = 0.3
    reg_pj: float = 0.15
    sram_pj: float = 2.5
    dram_pj: float = 100.0
    leakage_pj_per_cycle: float = 15.0

    def __post_init__(self) -> None:
        for name in ("mac_pj", "reg_pj", "sram_pj", "dram_pj", "leakage_pj_per_cycle"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    def scaled(self, factor: float) -> "EnergyModel":
        """Uniformly scale all constants (process-node what-if studies)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return EnergyModel(
            mac_pj=self.mac_pj * factor,
            reg_pj=self.reg_pj * factor,
            sram_pj=self.sram_pj * factor,
            dram_pj=self.dram_pj * factor,
            leakage_pj_per_cycle=self.leakage_pj_per_cycle * factor,
        )

    def with_overrides(self, **overrides: float) -> "EnergyModel":
        """Copy with selected constants replaced."""
        return replace(self, **overrides)


@dataclass
class EnergyBreakdown:
    """Accumulated energy per component, in picojoules.

    The component names mirror the paper's Fig. 9 legend: combinational logic
    (the MAC array), registers, SRAM (global buffer), DRAM, plus leakage.
    """

    combinational_pj: float = 0.0
    register_pj: float = 0.0
    sram_pj: float = 0.0
    dram_pj: float = 0.0
    leakage_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.combinational_pj
            + self.register_pj
            + self.sram_pj
            + self.dram_pj
            + self.leakage_pj
        )

    @property
    def total_uj(self) -> float:
        """Total energy in microjoules."""
        return self.total_pj * 1e-6

    def fraction(self, component: str) -> float:
        """Fraction of total energy spent in ``component``.

        ``component`` is one of ``"combinational"``, ``"register"``,
        ``"sram"``, ``"dram"``, ``"leakage"``.
        """
        total = self.total_pj
        if total == 0.0:
            return 0.0
        value = getattr(self, f"{component}_pj")
        return value / total

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown into this one (in place)."""
        self.combinational_pj += other.combinational_pj
        self.register_pj += other.register_pj
        self.sram_pj += other.sram_pj
        self.dram_pj += other.dram_pj
        self.leakage_pj += other.leakage_pj

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            combinational_pj=self.combinational_pj * factor,
            register_pj=self.register_pj * factor,
            sram_pj=self.sram_pj * factor,
            dram_pj=self.dram_pj * factor,
            leakage_pj=self.leakage_pj * factor,
        )

    def as_dict(self) -> dict[str, float]:
        """Component -> picojoules mapping (stable key order)."""
        return {
            "combinational": self.combinational_pj,
            "register": self.register_pj,
            "sram": self.sram_pj,
            "dram": self.dram_pj,
            "leakage": self.leakage_pj,
        }


@dataclass(frozen=True)
class EventCounts:
    """Counted events of a simulation region, the input to energy accounting."""

    macs: float = 0.0
    reg_accesses: float = 0.0
    sram_words: float = 0.0
    dram_words: float = 0.0
    cycles: float = 0.0

    def __add__(self, other: "EventCounts") -> "EventCounts":
        return EventCounts(
            macs=self.macs + other.macs,
            reg_accesses=self.reg_accesses + other.reg_accesses,
            sram_words=self.sram_words + other.sram_words,
            dram_words=self.dram_words + other.dram_words,
            cycles=self.cycles + other.cycles,
        )


def energy_from_events(events: EventCounts, model: EnergyModel) -> EnergyBreakdown:
    """Convert counted events into an energy breakdown."""
    return EnergyBreakdown(
        combinational_pj=events.macs * model.mac_pj,
        register_pj=events.reg_accesses * model.reg_pj,
        sram_pj=events.sram_words * model.sram_pj,
        dram_pj=events.dram_words * model.dram_pj,
        leakage_pj=events.cycles * model.leakage_pj_per_cycle,
    )


def default_energy_model() -> EnergyModel:
    """The 14 nm-class constants described in the module docstring."""
    return EnergyModel()
