"""Result containers produced by the architecture simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.energy import EnergyBreakdown, EventCounts
from repro.dataflow.counts import StepKind


@dataclass(frozen=True)
class StepResult:
    """Cycles and energy of one (layer, training step) on one architecture."""

    layer_name: str
    step: StepKind
    compute_cycles: float
    dram_cycles: float
    cycles: float
    events: EventCounts
    energy: EnergyBreakdown


@dataclass
class SimulationResult:
    """Outcome of simulating one training iteration of one sample.

    All quantities are per training *sample*; multiply by the batch size for
    per-iteration numbers.  ``latency_us`` and ``energy_uj`` are the
    quantities plotted in the paper's Fig. 8 and Fig. 9.
    """

    config_name: str
    model_name: str
    dataset: str
    sparse: bool
    clock_ghz: float
    steps: list[StepResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(step.cycles for step in self.steps)

    @property
    def latency_us(self) -> float:
        """Training latency per sample in microseconds."""
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        return self.total_cycles / (self.clock_ghz * 1e3)

    @property
    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for step in self.steps:
            total.add(step.energy)
        return total

    @property
    def energy_uj(self) -> float:
        """Training energy per sample in microjoules."""
        return self.total_energy.total_uj

    @property
    def total_macs(self) -> float:
        return sum(step.events.macs for step in self.steps)

    @property
    def total_sram_words(self) -> float:
        return sum(step.events.sram_words for step in self.steps)

    @property
    def total_dram_words(self) -> float:
        return sum(step.events.dram_words for step in self.steps)

    # ------------------------------------------------------------------
    # Slicing helpers
    # ------------------------------------------------------------------
    def cycles_by_step(self) -> dict[StepKind, float]:
        """Total cycles per training step kind."""
        out: dict[StepKind, float] = {kind: 0.0 for kind in StepKind}
        for step in self.steps:
            out[step.step] += step.cycles
        return out

    def cycles_by_layer(self) -> dict[str, float]:
        """Total cycles per layer."""
        out: dict[str, float] = {}
        for step in self.steps:
            out[step.layer_name] = out.get(step.layer_name, 0.0) + step.cycles
        return out

    def energy_fractions(self) -> dict[str, float]:
        """Fraction of total energy per component (Fig. 9 style)."""
        total = self.total_energy
        return {name: total.fraction(name) for name in ("combinational", "register", "sram", "dram", "leakage")}

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.config_name}: {self.model_name}/{self.dataset} "
            f"{self.latency_us:.1f} us/sample, {self.energy_uj:.1f} uJ/sample, "
            f"{self.total_macs / 1e9:.2f} GMAC"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """SparseTrain vs dense-baseline comparison for one workload."""

    workload: str
    sparsetrain: SimulationResult
    baseline: SimulationResult

    @property
    def speedup(self) -> float:
        """Baseline latency divided by SparseTrain latency (Fig. 8 metric)."""
        if self.sparsetrain.total_cycles == 0:
            return float("inf")
        return self.baseline.total_cycles / self.sparsetrain.total_cycles

    @property
    def energy_efficiency(self) -> float:
        """Baseline energy divided by SparseTrain energy (Fig. 9 metric)."""
        sparse_energy = self.sparsetrain.energy_uj
        if sparse_energy == 0:
            return float("inf")
        return self.baseline.energy_uj / sparse_energy

    @property
    def sram_energy_reduction(self) -> float:
        """Fractional reduction of SRAM energy vs the baseline."""
        baseline_sram = self.baseline.total_energy.sram_pj
        if baseline_sram == 0:
            return 0.0
        return 1.0 - self.sparsetrain.total_energy.sram_pj / baseline_sram

    @property
    def combinational_energy_reduction(self) -> float:
        """Fractional reduction of combinational-logic energy vs the baseline."""
        baseline_comb = self.baseline.total_energy.combinational_pj
        if baseline_comb == 0:
            return 0.0
        return 1.0 - self.sparsetrain.total_energy.combinational_pj / baseline_comb
