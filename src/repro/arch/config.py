"""Architecture configuration for SparseTrain and the dense baseline.

The paper's evaluation setup (Section VI): 168 PEs in both the proposed
architecture and the Eyeriss-like dense baseline, a 386 KB global SRAM buffer
for intermediate data, PEs grouped three-per-group with one PPU, synthesised
in a 14 nm FinFET process.  ``ArchConfig`` captures those knobs plus the few
modelling parameters the Python simulator needs (clock, utilisation, DRAM
bandwidth).  Named constructors give the two configurations used throughout
the experiments.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Mapping

from repro.utils.validation import (
    check_positive_float,
    check_positive_int,
    check_probability,
)

# 16-bit operands: two bytes per buffer word.
BYTES_PER_WORD = 2


@dataclass(frozen=True)
class ArchConfig:
    """Configuration of one accelerator instance.

    Attributes
    ----------
    name:
        Configuration label used in reports ("SparseTrain", "Dense baseline").
    num_pes:
        Total number of processing elements (168 in the paper).
    pes_per_group:
        PEs per PE group sharing one PPU (3 in the paper).
    kernel_size:
        Width of the PE's multiplier array / Reg-1 (K = 3, the dominant kernel
        size of the evaluated models; larger kernels are processed in K-wide
        slices).
    clock_ghz:
        Clock frequency used to convert cycles to seconds.
    buffer_kib:
        Global SRAM buffer capacity in KiB (386 KB in the paper).
    dram_words_per_cycle:
        Sustained DRAM bandwidth in 16-bit words per accelerator cycle.
    pe_utilization:
        Fraction of peak PE throughput sustained while a step runs; covers
        load imbalance between sparse rows and pipeline fill/drain.  The
        detailed PE-level simulator measures this effect exactly; the
        layer-level model applies this factor.
    sparse_dataflow:
        Whether the architecture exploits sparsity (zero skipping, compressed
        operands).  ``False`` models the dense Eyeriss-like baseline.
    weight_reload_overhead:
        Extra cycles per row operation for loading kernel rows into Reg-1,
        expressed as a fraction of the kernel size (1.0 = a full K-cycle load
        per row operation; lower values model weight-row reuse across output
        rows scheduled back to back).
    sync_cycles_per_layer:
        Fixed controller/drain overhead added per (layer, step).
    batch_size:
        Training batch size used to amortise per-iteration DRAM traffic
        (weight loads and weight-gradient write-back happen once per batch,
        not once per sample).  The paper trains with standard mini-batches;
        32 is used throughout the evaluation.
    """

    name: str = "SparseTrain"
    num_pes: int = 168
    pes_per_group: int = 3
    kernel_size: int = 3
    clock_ghz: float = 0.8
    buffer_kib: int = 386
    dram_words_per_cycle: float = 16.0
    pe_utilization: float = 0.85
    sparse_dataflow: bool = True
    weight_reload_overhead: float = 0.1
    sync_cycles_per_layer: int = 64
    batch_size: int = 32

    def __post_init__(self) -> None:
        check_positive_int(self.num_pes, "num_pes")
        check_positive_int(self.pes_per_group, "pes_per_group")
        check_positive_int(self.kernel_size, "kernel_size")
        check_positive_float(self.clock_ghz, "clock_ghz")
        check_positive_int(self.buffer_kib, "buffer_kib")
        check_positive_float(self.dram_words_per_cycle, "dram_words_per_cycle")
        check_probability(self.pe_utilization, "pe_utilization")
        if self.pe_utilization == 0.0:
            raise ValueError("pe_utilization must be > 0")
        if self.weight_reload_overhead < 0.0:
            raise ValueError("weight_reload_overhead must be >= 0")
        if self.sync_cycles_per_layer < 0:
            raise ValueError("sync_cycles_per_layer must be >= 0")
        check_positive_int(self.batch_size, "batch_size")
        if self.num_pes % self.pes_per_group != 0:
            raise ValueError(
                f"num_pes ({self.num_pes}) must be divisible by pes_per_group "
                f"({self.pes_per_group})"
            )

    @property
    def num_groups(self) -> int:
        """Number of PE groups (each with one PPU)."""
        return self.num_pes // self.pes_per_group

    @property
    def buffer_words(self) -> int:
        """Buffer capacity in 16-bit words."""
        return self.buffer_kib * 1024 // BYTES_PER_WORD

    @property
    def peak_macs_per_cycle(self) -> float:
        """Peak MAC throughput of the whole array (K MACs per PE per cycle)."""
        return self.num_pes * self.kernel_size

    # ------------------------------------------------------------------
    # Derivation and serialization (design-space sweeps, result caching)
    # ------------------------------------------------------------------
    def evolve(self, **overrides: Any) -> "ArchConfig":
        """Copy of this config with any subset of fields replaced.

        The generic sweep constructor: ``config.evolve(num_pes=336,
        buffer_kib=772)``.  Unknown field names raise ``ValueError`` so axis
        typos in a design space fail loudly instead of silently sweeping
        nothing.
        """
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ValueError(
                f"unknown ArchConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serialisable mapping of every field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchConfig":
        """Rebuild a config from :meth:`to_dict` output (validates fields)."""
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ValueError(
                f"unknown ArchConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(valid)}"
            )
        return cls(**dict(data))

    def with_pes(self, num_pes: int) -> "ArchConfig":
        """Deprecated: use :meth:`evolve` (``config.evolve(num_pes=...)``)."""
        warnings.warn(
            "ArchConfig.with_pes is deprecated and will be removed in the "
            "next major release (2.0); use evolve(num_pes=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evolve(num_pes=num_pes)

    def with_buffer(self, buffer_kib: int) -> "ArchConfig":
        """Deprecated: use :meth:`evolve` (``config.evolve(buffer_kib=...)``)."""
        warnings.warn(
            "ArchConfig.with_buffer is deprecated and will be removed in the "
            "next major release (2.0); use evolve(buffer_kib=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evolve(buffer_kib=buffer_kib)


def sparsetrain_config(**overrides) -> ArchConfig:
    """The proposed sparse-aware training architecture (paper Section V)."""
    return ArchConfig(name="SparseTrain", sparse_dataflow=True, **overrides)


def dense_baseline_config(**overrides) -> ArchConfig:
    """The Eyeriss-like dense training baseline with matched resources.

    Same PE count, same per-PE multiplier width, same buffer and clock — the
    only difference is that it neither skips zero operands nor stores data in
    compressed form, so the comparison isolates sparsity exploitation (the
    quantity Fig. 8 / Fig. 9 report).  The dense dataflow is perfectly load
    balanced, hence the slightly higher sustained utilisation.
    """
    overrides.setdefault("pe_utilization", 0.95)
    return ArchConfig(name="Dense baseline (Eyeriss-like)", sparse_dataflow=False, **overrides)
