"""Global SRAM buffer model.

The paper provisions a 386 KB SRAM global buffer "sufficient for storing data
used in each iteration" of the evaluated layers.  The Python model tracks two
things: the access count (every word read or written by the PE array costs
SRAM energy) and whether a layer's working set actually fits — when it does
not, the working set has to be streamed from DRAM in tiles and the weight
traffic multiplies accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.counts import LayerDensities
from repro.models.spec import ConvLayerSpec


@dataclass
class BufferStats:
    """Accumulated buffer activity in 16-bit words."""

    read_words: float = 0.0
    write_words: float = 0.0

    @property
    def total_words(self) -> float:
        return self.read_words + self.write_words


class GlobalBuffer:
    """Capacity accounting and access counting for the global SRAM buffer."""

    def __init__(self, capacity_words: int) -> None:
        if capacity_words <= 0:
            raise ValueError(f"capacity_words must be positive, got {capacity_words}")
        self.capacity_words = int(capacity_words)
        self.stats = BufferStats()

    def record_reads(self, words: float) -> None:
        """Count ``words`` read by the PE array."""
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        self.stats.read_words += words

    def record_writes(self, words: float) -> None:
        """Count ``words`` written by the PPUs / DMA."""
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        self.stats.write_words += words

    def reset(self) -> None:
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    # Working-set / tiling analysis
    # ------------------------------------------------------------------
    def activation_words(
        self,
        layer: ConvLayerSpec,
        densities: LayerDensities,
        sparse: bool = True,
    ) -> float:
        """Words needed to hold one sample's activations (input + output tile).

        Sparse tensors are stored compressed (values plus packed offsets,
        ~1.5 words per non-zero).
        """
        if sparse:
            input_words = layer.input_size * densities.input_density * 1.5
            output_words = layer.output_size * densities.output_density * 1.5
        else:
            input_words = float(layer.input_size)
            output_words = float(layer.output_size)
        return input_words + output_words

    def working_set_words(
        self,
        layer: ConvLayerSpec,
        densities: LayerDensities,
        sparse: bool = True,
    ) -> float:
        """Words needed to hold one sample's full working set (activations + weights)."""
        return self.activation_words(layer, densities, sparse) + layer.weight_count

    def fits(self, layer: ConvLayerSpec, densities: LayerDensities, sparse: bool = True) -> bool:
        """Whether the per-sample working set of ``layer`` fits in the buffer."""
        return self.working_set_words(layer, densities, sparse) <= self.capacity_words

    def weight_tiling_factor(
        self, layer: ConvLayerSpec, densities: LayerDensities, sparse: bool = True
    ) -> float:
        """How many times a layer's weights are re-fetched because of tiling.

        Weights are streamed through the buffer once as long as the layer's
        activations fit next to a reasonable weight tile.  When the
        activations themselves exceed the space left after reserving room for
        weights (at most half the buffer), they are processed in tiles and the
        weights must be re-read once per activation tile.  For the CIFAR and
        ImageNet geometries evaluated in the paper the per-sample activations
        comfortably fit the 386 KB buffer, so the factor is 1.0 — the paper's
        "sufficient for storing data used in each iteration" assumption — but
        the model degrades gracefully for buffer-size sweeps.
        """
        activation_words = self.activation_words(layer, densities, sparse)
        weight_space = min(float(layer.weight_count), self.capacity_words / 2.0)
        available = self.capacity_words - weight_space
        if activation_words <= available:
            return 1.0
        return float(np.ceil(activation_words / available))
