"""Controller / scheduler for the detailed (row-operation level) simulator.

The controller assigns row operations to PE groups with a greedy least-loaded
policy — the software counterpart of the paper's controller that keeps PEs fed
from the global buffer.  It is used for small layers (tests, examples and the
calibration of the layer-level model); the full-network Fig. 8 / Fig. 9 runs
use :class:`repro.arch.accelerator.AcceleratorSimulator` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.pe import PEOpStats
from repro.arch.pe_group import PEGroup
from repro.dataflow.ops import RowOp


@dataclass
class ScheduleResult:
    """Outcome of scheduling a batch of row operations onto the PE array."""

    results: list[np.ndarray]
    stats: PEOpStats
    cycles: int
    per_group_cycles: list[int]

    @property
    def utilization(self) -> float:
        """Achieved utilisation: average group cycles / critical-path cycles."""
        if self.cycles == 0 or not self.per_group_cycles:
            return 1.0
        return float(np.mean(self.per_group_cycles)) / self.cycles


class Controller:
    """Schedules row operations over the PE groups of one accelerator."""

    def __init__(self, config: ArchConfig, backend: str = "vector") -> None:
        self.config = config
        self.groups = [
            PEGroup(
                num_pes=config.pes_per_group,
                zero_skipping=config.sparse_dataflow,
                amortize_weight_load=config.weight_reload_overhead == 0.0,
                backend=backend,
            )
            for _ in range(config.num_groups)
        ]

    def run_ops(
        self,
        ops: list[RowOp],
        apply_relu: bool = False,
        accumulate_gradients: bool = False,
    ) -> ScheduleResult:
        """Run ``ops`` over all PE groups, preserving result order.

        Operations are dealt to groups round-robin in chunks so every group
        receives a contiguous, similarly sized share; each group then
        load-balances internally across its PEs.  Result order matches input
        order so the caller can reassemble feature maps.
        """
        return self._run(ops, apply_relu, accumulate_gradients, batched=False)

    def run_batch(
        self,
        ops: list[RowOp],
        apply_relu: bool = False,
        accumulate_gradients: bool = False,
    ) -> ScheduleResult:
        """Batched equivalent of :meth:`run_ops` (identical results and stats).

        Every group executes its share through the pooled vector kernels
        (:meth:`PEGroup.run_batch`), so one layer-step of row operations
        costs a handful of numpy calls per group instead of a Python loop
        per operation.
        """
        return self._run(ops, apply_relu, accumulate_gradients, batched=True)

    def _run(
        self,
        ops: list[RowOp],
        apply_relu: bool,
        accumulate_gradients: bool,
        batched: bool,
    ) -> ScheduleResult:
        if not ops:
            return ScheduleResult(results=[], stats=PEOpStats.zero(), cycles=0, per_group_cycles=[])

        num_groups = len(self.groups)
        assignments: list[list[int]] = [[] for _ in range(num_groups)]
        for index in range(len(ops)):
            assignments[index % num_groups].append(index)

        results: list[np.ndarray | None] = [None] * len(ops)
        total_stats = PEOpStats.zero()
        per_group_cycles: list[int] = []
        for group, indices in zip(self.groups, assignments):
            if not indices:
                per_group_cycles.append(0)
                continue
            execute = group.run_batch if batched else group.run_ops
            group_result = execute(
                [ops[i] for i in indices],
                apply_relu=apply_relu,
                accumulate_gradients=accumulate_gradients,
            )
            for local_index, op_index in enumerate(indices):
                results[op_index] = group_result.results[local_index]
            total_stats = total_stats + group_result.stats
            per_group_cycles.append(group_result.cycles)

        cycles = max(per_group_cycles) if per_group_cycles else 0
        return ScheduleResult(
            results=[r for r in results if r is not None],
            stats=total_stats,
            cycles=cycles,
            per_group_cycles=per_group_cycles,
        )
