"""Post Processing Unit model (the paper's Fig. 7b).

One PPU serves the three PEs of a PE group.  It receives finished partial-sum
rows, optionally applies ReLU, converts the result into the compressed format
before it is written back to the global buffer, and — during the GTA step —
accumulates both the sum and the absolute sum of every gradient that streams
through it.  Those two running accumulators are exactly what the bias-gradient
computation and the pruning-threshold determination need, which is why the
paper can claim the pruning algorithm runs "with almost no overhead":
no extra pass over the data is ever made.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.compressed import CompressedRow


@dataclass
class PPUStats:
    """Event counts accumulated by one PPU."""

    rows_processed: int = 0
    values_processed: int = 0
    relu_applied: int = 0
    values_written: int = 0
    accumulations: int = 0


@dataclass
class PPU:
    """Post-processing unit: ReLU, format conversion and streaming accumulators."""

    stats: PPUStats = field(default_factory=PPUStats)
    gradient_sum: float = 0.0
    gradient_abs_sum: float = 0.0
    gradient_count: int = 0

    def reset_accumulators(self) -> None:
        """Clear the per-layer gradient accumulators (done at layer boundaries)."""
        self.gradient_sum = 0.0
        self.gradient_abs_sum = 0.0
        self.gradient_count = 0

    def process_row(
        self,
        row: np.ndarray,
        apply_relu: bool = False,
        accumulate_gradients: bool = False,
    ) -> tuple[CompressedRow, int]:
        """Post-process one finished row.

        Parameters
        ----------
        row:
            The dense partial-sum row produced by the PE group.
        apply_relu:
            Apply ``max(0, x)`` before compression (Forward step of a
            Conv-ReLU structure).
        accumulate_gradients:
            Accumulate sum and absolute sum of the values (GTA step); feeds
            bias gradients and threshold determination.

        Returns
        -------
        (compressed_row, cycles)
            The compressed result and the number of PPU cycles spent (one per
            value streamed through, which overlaps with PE computation of the
            next row in the real pipeline).
        """
        row = np.asarray(row, dtype=np.float64)
        self.stats.rows_processed += 1
        self.stats.values_processed += int(row.size)

        if apply_relu:
            row = np.maximum(row, 0.0)
            self.stats.relu_applied += int(row.size)

        if accumulate_gradients:
            self.gradient_sum += float(row.sum())
            self.gradient_abs_sum += float(np.abs(row).sum())
            self.gradient_count += int(row.size)
            self.stats.accumulations += int(row.size)

        compressed = CompressedRow.from_dense(row)
        self.stats.values_written += compressed.nnz
        cycles = int(row.size)
        return compressed, cycles

    # ------------------------------------------------------------------
    # Quantities derived from the streaming accumulators
    # ------------------------------------------------------------------
    def bias_gradient(self) -> float:
        """Accumulated bias gradient of the rows streamed so far."""
        return self.gradient_sum

    def mean_abs_gradient(self) -> float:
        """Mean absolute gradient, the input to threshold determination."""
        if self.gradient_count == 0:
            return 0.0
        return self.gradient_abs_sum / self.gradient_count
