"""Vectorized (numpy scatter/gather) execution kernels for row operations.

These kernels execute whole batches of SRC/MSRC/OSRC operations with pooled
numpy arithmetic instead of the per-operand Python loops of the scalar PE
backend.  They are the hot path of the row-operation simulator: decomposing a
layer yields thousands of row operations, and the pooled kernels reduce the
per-operand work to a handful of scatter-accumulate calls over offset
arithmetic.

Equivalence contract
--------------------
The kernels are **bit-exact** against the scalar loops in
:mod:`repro.arch.pe`, both in values and in every event count:

* Products are formed from exactly the same operand pairs
  (``value * kernel[k]`` / ``value * grad[ow]``), so each addend is the same
  float64 as in the scalar loop.
* The scatter-accumulate (``np.bincount`` with weights, the fast equivalent
  of ``np.add.at`` into a zero-initialised buffer) adds its weights
  sequentially in input order, and the (operand, k) pair matrices are
  flattened row-major — operand outer, kernel position inner — which is
  exactly the scalar loop nesting.  Accumulation order, and therefore
  floating-point rounding, is identical.
* Operands with an explicitly stored zero value are counted as processed but
  contribute no addition, mirroring the scalar ``if value == 0.0: continue``.

Event counts are produced as per-op integer arrays (one entry per operation);
:mod:`repro.arch.pe` wraps them into :class:`~repro.arch.pe.PEOpStats` so
this module needs no import from the PE model (keeping the dependency
one-way: ``pe`` -> ``kernels`` -> ``dataflow``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataflow.compressed import CompressedRow, CompressedRowBatch
from repro.dataflow.ops import MSRCOp, OSRCOp, RowOp, SRCOp

# Per-op event counts: a dict of int64 arrays, one entry per operation, with
# keys matching the PEOpStats fields.
StatArrays = dict[str, np.ndarray]

STAT_KEYS = (
    "cycles",
    "macs",
    "processed_operands",
    "skipped_operands",
    "weight_loads",
    "reg_accesses",
)


def _extents(counts: np.ndarray) -> np.ndarray:
    """(n + 1,)-element cumulative extents vector for per-row counts."""
    starts = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return starts


def _scatter_add(size: int, indices: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Zero-initialised scatter-accumulate: ``out[indices[i]] += weights[i]``.

    ``np.bincount`` adds its weights one by one in input order — the same
    sequential semantics as ``np.add.at`` on a zeros buffer, at a fraction of
    the cost — so accumulation order (and float rounding) matches the scalar
    loops exactly.
    """
    if indices.size == 0:
        return np.zeros(size, dtype=np.float64)
    return np.bincount(indices, weights=weights, minlength=size)


def _pooled_operands(
    rows: Sequence[CompressedRow], zero_skipping: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pool the Port-1 operand streams of a batch of row operations.

    Returns ``(positions, values, counts, lengths, nnz)`` where ``positions``
    / ``values`` concatenate every operand the PE iterates over (the stored
    non-zeros when ``zero_skipping``, every dense position otherwise),
    ``counts`` gives the number of operands per row and ``nnz`` the stored
    non-zeros per row.
    """
    batch = CompressedRowBatch.from_rows(rows)
    nnz = batch.nnz_per_row
    if zero_skipping:
        return batch.offsets, batch.values, nnz, batch.lengths, nnz
    lengths = batch.lengths
    total = int(lengths.sum())
    dense_starts = _extents(lengths)
    # positions = concatenated arange(length) per row
    positions = np.arange(total, dtype=np.int64) - np.repeat(dense_starts[:-1], lengths)
    values = np.zeros(total, dtype=np.float64)
    values[batch.flat_positions()] = batch.values
    return positions, values, lengths, lengths, nnz


def _contributing_pairs(
    valid: np.ndarray, kernel_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the True entries of a pair-validity matrix.

    Equivalent to ``np.nonzero(valid)`` but via a flat scan plus one divmod,
    which is measurably cheaper on the multi-million-entry pair matrices.
    The returned order is row-major — operand outer, kernel position inner —
    matching the scalar loop nesting.
    """
    flat = np.flatnonzero(valid.ravel())
    pair_row = flat // kernel_size
    return pair_row, flat - pair_row * kernel_size


def _zero_stats(n: int) -> StatArrays:
    return {key: np.zeros(n, dtype=np.int64) for key in STAT_KEYS}


def src_batch(
    ops: Sequence[SRCOp], zero_skipping: bool, amortize_weight_load: bool
) -> tuple[list[np.ndarray], StatArrays]:
    """Pooled SRC execution; all ops must share kernel size and stride."""
    n = len(ops)
    kernel_size = int(ops[0].kernel_row.size)
    stride = int(ops[0].stride)

    out_lens = np.fromiter((op.out_len for op in ops), dtype=np.int64, count=n)
    out_starts = _extents(out_lens)
    flat_out = np.zeros(int(out_starts[-1]), dtype=np.float64)
    kernels = np.stack([op.kernel_row for op in ops])

    positions, values, counts, lengths, _ = _pooled_operands(
        [op.input_row for op in ops], zero_skipping
    )
    op_id = np.repeat(np.arange(n, dtype=np.int64), counts)

    if positions.size:
        k = np.arange(kernel_size, dtype=np.int64)
        remainder = positions[:, None] - k[None, :]
        if stride > 1:
            valid = remainder >= 0
            valid &= (remainder % stride) == 0
            ow = np.where(valid, remainder, 0) // stride
        else:
            valid = remainder >= 0
            ow = remainder
        valid &= ow < out_lens[op_id][:, None]
        valid &= (values != 0.0)[:, None]
        pair_row, pair_k = _contributing_pairs(valid, kernel_size)
        contrib_ops = op_id[pair_row]
        flat_out = _scatter_add(
            flat_out.size,
            out_starts[contrib_ops] + ow[pair_row, pair_k],
            values[pair_row] * kernels.ravel()[contrib_ops * kernel_size + pair_k],
        )

    results = [flat_out[out_starts[i] : out_starts[i + 1]] for i in range(n)]

    stats = _zero_stats(n)
    processed = counts
    macs = processed * kernel_size
    load_cycles = 0 if amortize_weight_load else kernel_size
    stats["processed_operands"] = processed
    stats["macs"] = macs
    stats["cycles"] = load_cycles + processed
    if zero_skipping:
        stats["skipped_operands"] = lengths - processed
    stats["weight_loads"] = np.full(n, kernel_size, dtype=np.int64)
    stats["reg_accesses"] = 2 * macs + processed + kernel_size
    return results, stats


def msrc_batch(
    ops: Sequence[MSRCOp], zero_skipping: bool, amortize_weight_load: bool
) -> tuple[list[np.ndarray], StatArrays]:
    """Pooled MSRC execution; all ops must share kernel size and stride."""
    n = len(ops)
    kernel_size = int(ops[0].kernel_row.size)
    stride = int(ops[0].stride)

    out_lens = np.fromiter((op.out_len for op in ops), dtype=np.int64, count=n)
    out_starts = _extents(out_lens)
    flat_out = np.zeros(int(out_starts[-1]), dtype=np.float64)
    flat_mask = np.concatenate([op.output_mask for op in ops])
    kernels = np.stack([op.kernel_row for op in ops])

    positions, values, counts, lengths, nnz = _pooled_operands(
        [op.grad_row for op in ops], zero_skipping
    )
    op_id = np.repeat(np.arange(n, dtype=np.int64), counts)

    processed = counts.copy()
    skipped_masked = np.zeros(n, dtype=np.int64)
    macs = np.zeros(n, dtype=np.int64)
    if positions.size:
        k = np.arange(kernel_size, dtype=np.int64)
        targets = positions[:, None] * stride + k[None, :]
        in_range = targets < out_lens[op_id][:, None]
        flat_targets = out_starts[op_id][:, None] + targets
        live = np.zeros_like(in_range)
        live[in_range] = flat_mask[flat_targets[in_range]]
        if zero_skipping:
            has_live = live.any(axis=1)
            processed = np.bincount(op_id[has_live], minlength=n).astype(np.int64)
            skipped_masked = np.bincount(op_id[~has_live], minlength=n).astype(np.int64)
            macs = np.bincount(
                op_id, weights=live.sum(axis=1), minlength=n
            ).astype(np.int64)
            contributes = live & (values != 0.0)[:, None]
        else:
            macs = np.bincount(
                op_id, weights=in_range.sum(axis=1), minlength=n
            ).astype(np.int64)
            contributes = in_range & (values != 0.0)[:, None]
        pair_row, pair_k = _contributing_pairs(contributes, kernel_size)
        flat_out = _scatter_add(
            flat_out.size,
            flat_targets[pair_row, pair_k],
            values[pair_row] * kernels.ravel()[op_id[pair_row] * kernel_size + pair_k],
        )

    if zero_skipping:
        # Identical to the scalar backend's per-op ``out * mask``.
        flat_out *= flat_mask
    results = [flat_out[out_starts[i] : out_starts[i + 1]] for i in range(n)]

    stats = _zero_stats(n)
    load_cycles = 0 if amortize_weight_load else kernel_size
    stats["processed_operands"] = processed
    stats["macs"] = macs
    stats["cycles"] = load_cycles + processed
    if zero_skipping:
        stats["skipped_operands"] = skipped_masked + (lengths - nnz)
    else:
        stats["skipped_operands"] = skipped_masked
    stats["weight_loads"] = np.full(n, kernel_size, dtype=np.int64)
    stats["reg_accesses"] = 2 * macs + processed + kernel_size
    return results, stats


def osrc_batch(
    ops: Sequence[OSRCOp], zero_skipping: bool, amortize_weight_load: bool
) -> tuple[list[np.ndarray], StatArrays]:
    """Pooled OSRC execution; all ops must share kernel size and stride."""
    del amortize_weight_load  # OSRC loads no kernel row
    n = len(ops)
    kernel_size = int(ops[0].kernel_size)
    stride = int(ops[0].stride)

    grad_batch = CompressedRowBatch.from_rows([op.grad_row for op in ops])
    grad_lens = grad_batch.lengths
    grad_starts = _extents(grad_lens)
    grad_flat = np.zeros(int(grad_starts[-1]), dtype=np.float64)
    member_flat = np.zeros(int(grad_starts[-1]), dtype=bool)
    grad_positions = grad_batch.flat_positions()
    grad_flat[grad_positions] = grad_batch.values
    member_flat[grad_positions] = True
    grad_nnz = grad_batch.nnz_per_row

    positions, values, counts, lengths, _ = _pooled_operands(
        [op.input_row for op in ops], zero_skipping
    )
    op_id = np.repeat(np.arange(n, dtype=np.int64), counts)

    dw_flat = np.zeros(n * kernel_size, dtype=np.float64)
    processed = counts.copy()
    skipped_unpaired = np.zeros(n, dtype=np.int64)
    macs = np.zeros(n, dtype=np.int64)
    if positions.size:
        kw = np.arange(kernel_size, dtype=np.int64)
        remainder = positions[:, None] - kw[None, :]
        valid = remainder >= 0
        if stride > 1:
            valid &= (remainder % stride) == 0
            ow = np.where(valid, remainder, 0) // stride
        else:
            ow = remainder
        valid &= ow < grad_lens[op_id][:, None]
        flat_ow = grad_starts[op_id][:, None] + ow
        if zero_skipping:
            membership = np.zeros_like(valid)
            membership[valid] = member_flat[flat_ow[valid]]
            valid &= membership
            has_pairing = valid.any(axis=1)
            processed = np.bincount(op_id[has_pairing], minlength=n).astype(np.int64)
            skipped_unpaired = np.bincount(op_id[~has_pairing], minlength=n).astype(
                np.int64
            )
        macs = np.bincount(op_id, weights=valid.sum(axis=1), minlength=n).astype(
            np.int64
        )
        contributes = valid & (values != 0.0)[:, None]
        pair_row, pair_k = _contributing_pairs(contributes, kernel_size)
        dw_flat = _scatter_add(
            dw_flat.size,
            op_id[pair_row] * kernel_size + pair_k,
            values[pair_row] * grad_flat[flat_ow[pair_row, pair_k]],
        )

    results = [dw_flat[i * kernel_size : (i + 1) * kernel_size] for i in range(n)]

    stats = _zero_stats(n)
    stats["processed_operands"] = processed
    stats["macs"] = macs
    stats["cycles"] = processed.copy()
    if zero_skipping:
        stats["skipped_operands"] = skipped_unpaired + (lengths - counts)
    stats["reg_accesses"] = 2 * macs + processed + grad_nnz
    return results, stats


_DISPATCH = {SRCOp: src_batch, MSRCOp: msrc_batch, OSRCOp: osrc_batch}


def execute_batch(
    ops: Sequence[RowOp], zero_skipping: bool, amortize_weight_load: bool
) -> tuple[list[np.ndarray], StatArrays]:
    """Execute a heterogeneous batch of row operations with pooled kernels.

    Operations are grouped by (type, kernel size, stride) — within a layer
    step all ops share one group, so the whole step runs in a few numpy
    calls — and the per-op results/stats are reassembled in input order.
    """
    n = len(ops)
    results: list[np.ndarray | None] = [None] * n
    stats = _zero_stats(n)

    # Two-level grouping keeps the per-op Python work minimal: a cheap
    # class-keyed partition first, then a C-speed uniformity check on the
    # (kernel size, stride) geometry; the slow per-op tuple-key dict only
    # runs for genuinely mixed-geometry batches (tests, ad-hoc op soups).
    by_class: dict[type, list[int]] = {}
    for index, op in enumerate(ops):
        cls = op.__class__
        try:
            by_class[cls].append(index)
        except KeyError:
            by_class[cls] = [index]

    for cls, indices in by_class.items():
        try:
            kernel_fn = _DISPATCH[cls]
        except KeyError:  # pragma: no cover - defensive
            raise TypeError(f"unsupported op type {cls.__name__}") from None
        sub_ops = list(ops) if len(indices) == n else [ops[i] for i in indices]
        count = len(sub_ops)
        if cls is OSRCOp:
            ksizes = np.fromiter(
                (op.kernel_size for op in sub_ops), dtype=np.int64, count=count
            )
        else:
            ksizes = np.fromiter(
                (op.kernel_row.size for op in sub_ops), dtype=np.int64, count=count
            )
        strides = np.fromiter(
            (op.stride for op in sub_ops), dtype=np.int64, count=count
        )
        geometry = ksizes * (int(strides.max()) + 1) + strides
        first_geometry = geometry[0]
        if (geometry == first_geometry).all():
            partitions = [np.asarray(indices, dtype=np.int64)]
            runs = [sub_ops]
        else:
            partitions, runs = [], []
            index_array = np.asarray(indices, dtype=np.int64)
            for code in np.unique(geometry):
                members = np.flatnonzero(geometry == code)
                partitions.append(index_array[members])
                runs.append([sub_ops[i] for i in members])
        for index_array, run_ops in zip(partitions, runs):
            sub_results, sub_stats = kernel_fn(
                run_ops, zero_skipping, amortize_weight_load
            )
            if index_array.size == n:
                return sub_results, sub_stats
            for global_index, result in zip(index_array.tolist(), sub_results):
                results[global_index] = result
            for key in STAT_KEYS:
                stats[key][index_array] = sub_stats[key]
    return [r for r in results if r is not None], stats
