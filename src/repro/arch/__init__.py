"""Accelerator architecture model (the paper's Section V).

PE / PPU / PE-group row-operation models, the global buffer and DRAM, the
controller that schedules row operations, the layer-level accelerator
simulator, and the energy model.
"""

from repro.arch.accelerator import AcceleratorSimulator
from repro.arch.area import AreaBreakdown, AreaModel, estimate_area, iso_area_pe_count
from repro.arch.buffer import BufferStats, GlobalBuffer
from repro.arch.config import (
    ArchConfig,
    dense_baseline_config,
    sparsetrain_config,
)
from repro.arch.controller import Controller, ScheduleResult
from repro.arch.dram import DRAM, DRAMStats
from repro.arch.energy import (
    EnergyBreakdown,
    EnergyModel,
    EventCounts,
    default_energy_model,
    energy_from_events,
)
from repro.arch.pe import PE, PE_BACKENDS, PEOpStats, execute_ops
from repro.arch.pe_group import GroupResult, PEGroup
from repro.arch.ppu import PPU, PPUStats
from repro.arch.results import ComparisonResult, SimulationResult, StepResult

__all__ = [
    "ArchConfig",
    "sparsetrain_config",
    "dense_baseline_config",
    "EnergyModel",
    "EnergyBreakdown",
    "EventCounts",
    "default_energy_model",
    "energy_from_events",
    "PE",
    "PE_BACKENDS",
    "PEOpStats",
    "execute_ops",
    "PPU",
    "PPUStats",
    "PEGroup",
    "GroupResult",
    "GlobalBuffer",
    "BufferStats",
    "DRAM",
    "DRAMStats",
    "Controller",
    "ScheduleResult",
    "AcceleratorSimulator",
    "SimulationResult",
    "StepResult",
    "ComparisonResult",
    "AreaModel",
    "AreaBreakdown",
    "estimate_area",
    "iso_area_pe_count",
]
