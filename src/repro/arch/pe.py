"""Processing Element model (the paper's Fig. 7c).

The PE executes a complete 1-D row operation rather than a single multiply:
each cycle it consumes one (non-zero) operand from Port-1, multiplies it by
the K values held in Reg-1 and accumulates the K products into the partial
sums in Reg-2.  Sparse operands arrive in compressed form, so zero values
never cost a cycle; for MSRC the offset vector of the following ReLU mask
(Port-3) additionally lets the PE skip operands whose every output position is
masked off — the look-ahead logic means skipped operands cost no stall cycles.

``PE.run(op)`` returns both the exact numerical result of the operation (so
the dataflow can be validated end-to-end against the dense reference
convolution) and the event counts (cycles, MACs, register accesses) that the
performance/energy model consumes.

Two execution backends produce **bit-identical** results and stats:

* ``backend="vector"`` (default) — the pooled numpy scatter/gather kernels of
  :mod:`repro.arch.kernels`; orders of magnitude faster, used everywhere.
* ``backend="scalar"`` — the original per-operand Python loops, kept as the
  executable specification for differential testing
  (``tests/arch/test_pe_parity.py``).

``PE.run_batch`` (and the matching APIs on
:class:`~repro.arch.pe_group.PEGroup` and
:class:`~repro.arch.controller.Controller`) executes a whole layer-step of
row operations through the pooled kernels in a handful of numpy calls.
"""

from __future__ import annotations

from itertools import starmap
from typing import NamedTuple, Sequence

import numpy as np

from repro.arch import kernels as _kernels
from repro.dataflow.ops import MSRCOp, OSRCOp, RowOp, SRCOp

PE_BACKENDS = ("vector", "scalar")


class PEOpStats(NamedTuple):
    """Event counts of one row operation executed on one PE.

    A NamedTuple rather than a dataclass: the vectorized engine materialises
    one instance per row operation (thousands per layer-step), and tuple
    construction is an order of magnitude cheaper.
    """

    cycles: int
    macs: int
    processed_operands: int
    skipped_operands: int
    weight_loads: int
    reg_accesses: int

    def __add__(self, other: "PEOpStats") -> "PEOpStats":  # type: ignore[override]
        return PEOpStats(
            cycles=self.cycles + other.cycles,
            macs=self.macs + other.macs,
            processed_operands=self.processed_operands + other.processed_operands,
            skipped_operands=self.skipped_operands + other.skipped_operands,
            weight_loads=self.weight_loads + other.weight_loads,
            reg_accesses=self.reg_accesses + other.reg_accesses,
        )

    @classmethod
    def zero(cls) -> "PEOpStats":
        return cls(0, 0, 0, 0, 0, 0)


def stats_from_arrays(arrays: _kernels.StatArrays) -> list[PEOpStats]:
    """Wrap the kernels' per-op stat arrays into one PEOpStats per op.

    ``tolist`` converts each column to plain Python ints in one C call; the
    field order of ``STAT_KEYS`` matches the PEOpStats fields.
    """
    columns = (arrays[key].tolist() for key in _kernels.STAT_KEYS)
    return list(starmap(PEOpStats, zip(*columns)))


def stats_total(
    arrays: _kernels.StatArrays, mask: np.ndarray | None = None
) -> PEOpStats:
    """Sum the kernels' per-op stat arrays into one aggregate PEOpStats.

    ``mask`` restricts the sum to a boolean subset of the ops (used to
    attribute totals to individual PEs after scheduling).
    """
    if mask is None:
        return PEOpStats(*(int(arrays[key].sum()) for key in _kernels.STAT_KEYS))
    return PEOpStats(*(int(arrays[key][mask].sum()) for key in _kernels.STAT_KEYS))


def _arrays_from_stats(stats: Sequence[PEOpStats]) -> _kernels.StatArrays:
    """Column-wise (SoA) view of a list of per-op stats."""
    matrix = np.asarray(stats, dtype=np.int64).reshape(len(stats), len(_kernels.STAT_KEYS))
    return {key: matrix[:, index] for index, key in enumerate(_kernels.STAT_KEYS)}


def execute_ops_arrays(
    ops: Sequence[RowOp],
    zero_skipping: bool = True,
    amortize_weight_load: bool = False,
    backend: str = "vector",
) -> tuple[list[np.ndarray], _kernels.StatArrays]:
    """Stateless batch execution returning event counts in SoA form.

    This is the engine's native interface — per-op results plus one int64
    array per :class:`PEOpStats` field — and the shared primitive behind
    ``PE.run_batch``, ``PEGroup.run_batch`` and ``Controller.run_batch``.
    It touches no PE's accumulated totals, so callers can attribute the
    stats to whichever PE the schedule assigns.  Use :func:`execute_ops`
    when per-op ``PEOpStats`` objects are more convenient than arrays.
    """
    if backend not in PE_BACKENDS:
        raise ValueError(f"unknown PE backend {backend!r}; expected one of {PE_BACKENDS}")
    ops = list(ops)
    if not ops:
        return [], _kernels.execute_batch([], zero_skipping, amortize_weight_load)[1]
    if backend == "scalar":
        results, stats = _run_scalar_batch(ops, zero_skipping, amortize_weight_load)
        return results, _arrays_from_stats(stats)
    return _kernels.execute_batch(ops, zero_skipping, amortize_weight_load)


def execute_ops(
    ops: Sequence[RowOp],
    zero_skipping: bool = True,
    amortize_weight_load: bool = False,
    backend: str = "vector",
) -> tuple[list[np.ndarray], list[PEOpStats]]:
    """Stateless batch execution returning one :class:`PEOpStats` per op."""
    if backend == "scalar":
        return _run_scalar_batch(ops, zero_skipping, amortize_weight_load)
    results, arrays = execute_ops_arrays(ops, zero_skipping, amortize_weight_load, backend)
    return results, stats_from_arrays(arrays)


class PE:
    """A single processing element.

    Parameters
    ----------
    zero_skipping:
        When ``False`` the PE behaves like a dense PE: every operand position
        (zero or not) costs a cycle and a full K-wide MAC.  This models the
        Eyeriss-like baseline PE at matched peak throughput.
    amortize_weight_load:
        When ``True``, kernel-row loads are assumed to be overlapped with the
        previous operation's drain (the controller schedules row operations
        that reuse the same kernel row back to back), so they do not add
        cycles; they are still counted as register loads for energy.
    backend:
        ``"vector"`` (default) executes through the pooled numpy kernels;
        ``"scalar"`` through the original per-operand Python loops.  Both
        produce bit-identical values and stats.
    """

    def __init__(
        self,
        zero_skipping: bool = True,
        amortize_weight_load: bool = False,
        backend: str = "vector",
    ) -> None:
        if backend not in PE_BACKENDS:
            raise ValueError(
                f"unknown PE backend {backend!r}; expected one of {PE_BACKENDS}"
            )
        self.zero_skipping = zero_skipping
        self.amortize_weight_load = amortize_weight_load
        self.backend = backend
        self.total_stats = PEOpStats.zero()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, op: RowOp) -> tuple[np.ndarray, PEOpStats]:
        """Execute one row operation; returns (result, stats)."""
        if not isinstance(op, (SRCOp, MSRCOp, OSRCOp)):
            raise TypeError(f"unsupported op type {type(op).__name__}")
        if self.backend == "scalar":
            result, stats = _run_scalar(op, self.zero_skipping, self.amortize_weight_load)
        else:
            results, stats_list = execute_ops(
                [op], self.zero_skipping, self.amortize_weight_load, self.backend
            )
            result, stats = results[0], stats_list[0]
        self.total_stats = self.total_stats + stats
        return result, stats

    def run_batch(
        self, ops: Sequence[RowOp]
    ) -> tuple[list[np.ndarray], list[PEOpStats]]:
        """Execute a batch of row operations with pooled kernels.

        Equivalent to ``[self.run(op) for op in ops]`` — same results, same
        per-op stats, same ``total_stats`` accumulation — but the vector
        backend executes the whole batch in a handful of numpy calls.
        """
        results, stats_list = execute_ops(
            ops, self.zero_skipping, self.amortize_weight_load, self.backend
        )
        for stats in stats_list:
            self.total_stats = self.total_stats + stats
        return results, stats_list

    # Per-type entry points, kept for API compatibility and targeted tests.
    def run_src(self, op: SRCOp) -> tuple[np.ndarray, PEOpStats]:
        """Sparse Row Convolution: dense kernel row x sparse input row."""
        if self.backend == "scalar":
            return _scalar_src(op, self.zero_skipping, self.amortize_weight_load)
        results, stats = execute_ops(
            [op], self.zero_skipping, self.amortize_weight_load, self.backend
        )
        return results[0], stats[0]

    def run_msrc(self, op: MSRCOp) -> tuple[np.ndarray, PEOpStats]:
        """Masked Sparse Row Convolution: scatter dO into masked dI positions."""
        if self.backend == "scalar":
            return _scalar_msrc(op, self.zero_skipping, self.amortize_weight_load)
        results, stats = execute_ops(
            [op], self.zero_skipping, self.amortize_weight_load, self.backend
        )
        return results[0], stats[0]

    def run_osrc(self, op: OSRCOp) -> tuple[np.ndarray, PEOpStats]:
        """Output Store Row Convolution: two sparse rows, K-element result."""
        if self.backend == "scalar":
            return _scalar_osrc(op, self.zero_skipping, self.amortize_weight_load)
        results, stats = execute_ops(
            [op], self.zero_skipping, self.amortize_weight_load, self.backend
        )
        return results[0], stats[0]


# ---------------------------------------------------------------------------
# Scalar backend — the executable specification of the PE semantics
# ---------------------------------------------------------------------------

def _run_scalar_batch(
    ops: Sequence[RowOp], zero_skipping: bool, amortize_weight_load: bool
) -> tuple[list[np.ndarray], list[PEOpStats]]:
    results: list[np.ndarray] = []
    stats: list[PEOpStats] = []
    for op in ops:
        result, op_stats = _run_scalar(op, zero_skipping, amortize_weight_load)
        results.append(result)
        stats.append(op_stats)
    return results, stats


def _run_scalar(
    op: RowOp, zero_skipping: bool, amortize_weight_load: bool
) -> tuple[np.ndarray, PEOpStats]:
    if isinstance(op, SRCOp):
        return _scalar_src(op, zero_skipping, amortize_weight_load)
    if isinstance(op, MSRCOp):
        return _scalar_msrc(op, zero_skipping, amortize_weight_load)
    if isinstance(op, OSRCOp):
        return _scalar_osrc(op, zero_skipping, amortize_weight_load)
    raise TypeError(f"unsupported op type {type(op).__name__}")  # pragma: no cover


def _scalar_src(
    op: SRCOp, zero_skipping: bool, amortize_weight_load: bool
) -> tuple[np.ndarray, PEOpStats]:
    """SRC — Forward step."""
    kernel = op.kernel_row
    kernel_size = kernel.size
    out = np.zeros(op.out_len, dtype=np.float64)

    if zero_skipping:
        positions = op.input_row.offsets
        values = op.input_row.values
    else:
        dense = op.input_row.to_dense()
        positions = np.arange(dense.size)
        values = dense

    processed = 0
    macs = 0
    for position, value in zip(positions, values):
        processed += 1
        macs += kernel_size
        if value == 0.0:
            continue
        for k in range(kernel_size):
            remainder = position - k
            if remainder < 0:
                continue
            if op.stride > 1 and remainder % op.stride != 0:
                continue
            ow = remainder // op.stride
            if 0 <= ow < op.out_len:
                out[ow] += value * kernel[k]

    weight_loads = kernel_size
    load_cycles = 0 if amortize_weight_load else kernel_size
    cycles = load_cycles + processed
    reg_accesses = 2 * macs + processed + weight_loads
    stats = PEOpStats(
        cycles=cycles,
        macs=macs,
        processed_operands=processed,
        skipped_operands=int(op.input_row.length - processed) if zero_skipping else 0,
        weight_loads=weight_loads,
        reg_accesses=reg_accesses,
    )
    return out, stats


def _scalar_msrc(
    op: MSRCOp, zero_skipping: bool, amortize_weight_load: bool
) -> tuple[np.ndarray, PEOpStats]:
    """MSRC — GTA step."""
    kernel = op.kernel_row
    kernel_size = kernel.size
    out = np.zeros(op.out_len, dtype=np.float64)
    mask = op.output_mask

    if zero_skipping:
        positions = op.grad_row.offsets
        values = op.grad_row.values
    else:
        dense = op.grad_row.to_dense()
        positions = np.arange(dense.size)
        values = dense

    processed = 0
    skipped = 0
    macs = 0
    for position, value in zip(positions, values):
        start = position * op.stride
        targets = [
            start + k
            for k in range(kernel_size)
            if start + k < op.out_len and mask[start + k]
        ]
        if zero_skipping and not targets:
            # Every output this operand would touch is masked off: the
            # look-ahead logic skips it without spending a cycle.
            skipped += 1
            continue
        processed += 1
        if not zero_skipping:
            targets = [start + k for k in range(kernel_size) if start + k < op.out_len]
        macs += len(targets)
        if value != 0.0:
            for target in targets:
                out[target] += value * kernel[target - start]

    if not zero_skipping:
        # The dense baseline has no mask either: it computes every position
        # and lets the ReLU backward zero them later.
        out_unmasked = out
    else:
        out_unmasked = out * mask

    weight_loads = kernel_size
    load_cycles = 0 if amortize_weight_load else kernel_size
    cycles = load_cycles + processed
    reg_accesses = 2 * macs + processed + weight_loads
    stats = PEOpStats(
        cycles=cycles,
        macs=macs,
        processed_operands=processed,
        skipped_operands=skipped
        + (int(op.grad_row.length - op.grad_row.nnz) if zero_skipping else 0),
        weight_loads=weight_loads,
        reg_accesses=reg_accesses,
    )
    return out_unmasked, stats


def _scalar_osrc(
    op: OSRCOp, zero_skipping: bool, amortize_weight_load: bool
) -> tuple[np.ndarray, PEOpStats]:
    """OSRC — GTW step."""
    del amortize_weight_load  # OSRC loads no kernel row
    kernel_size = op.kernel_size
    dw = np.zeros(kernel_size, dtype=np.float64)
    grad_dense = op.grad_row.to_dense()
    # Boolean membership array instead of a per-op Python set: O(1) numpy
    # lookups and no per-op ``set(offsets.tolist())`` rebuild.
    grad_nonzero = np.zeros(op.grad_row.length, dtype=bool)
    grad_nonzero[op.grad_row.offsets] = True

    if zero_skipping:
        positions = op.input_row.offsets
        values = op.input_row.values
    else:
        dense = op.input_row.to_dense()
        positions = np.arange(dense.size)
        values = dense

    processed = 0
    skipped = 0
    macs = 0
    for position, value in zip(positions, values):
        # Pairings: dw[kw] needs input[ow*stride + kw] * grad[ow].
        pairings = []
        for kw in range(kernel_size):
            remainder = position - kw
            if remainder < 0:
                continue
            if op.stride > 1 and remainder % op.stride != 0:
                continue
            ow = remainder // op.stride
            if ow >= op.grad_row.length:
                continue
            if zero_skipping and not grad_nonzero[ow]:
                continue
            pairings.append((kw, ow))
        if zero_skipping and not pairings:
            skipped += 1
            continue
        processed += 1
        macs += len(pairings)
        if value != 0.0:
            for kw, ow in pairings:
                dw[kw] += value * grad_dense[ow]

    cycles = processed
    reg_accesses = 2 * macs + processed + op.grad_row.nnz
    stats = PEOpStats(
        cycles=cycles,
        macs=macs,
        processed_operands=processed,
        skipped_operands=skipped
        + (int(op.input_row.length - op.input_row.nnz) if zero_skipping else 0),
        weight_loads=0,
        reg_accesses=reg_accesses,
    )
    return dw, stats
