"""Processing Element model (the paper's Fig. 7c).

The PE executes a complete 1-D row operation rather than a single multiply:
each cycle it consumes one (non-zero) operand from Port-1, multiplies it by
the K values held in Reg-1 and accumulates the K products into the partial
sums in Reg-2.  Sparse operands arrive in compressed form, so zero values
never cost a cycle; for MSRC the offset vector of the following ReLU mask
(Port-3) additionally lets the PE skip operands whose every output position is
masked off — the look-ahead logic means skipped operands cost no stall cycles.

``PE.run(op)`` returns both the exact numerical result of the operation (so
the dataflow can be validated end-to-end against the dense reference
convolution) and the event counts (cycles, MACs, register accesses) that the
performance/energy model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.ops import MSRCOp, OSRCOp, RowOp, SRCOp


@dataclass(frozen=True)
class PEOpStats:
    """Event counts of one row operation executed on one PE."""

    cycles: int
    macs: int
    processed_operands: int
    skipped_operands: int
    weight_loads: int
    reg_accesses: int

    def __add__(self, other: "PEOpStats") -> "PEOpStats":
        return PEOpStats(
            cycles=self.cycles + other.cycles,
            macs=self.macs + other.macs,
            processed_operands=self.processed_operands + other.processed_operands,
            skipped_operands=self.skipped_operands + other.skipped_operands,
            weight_loads=self.weight_loads + other.weight_loads,
            reg_accesses=self.reg_accesses + other.reg_accesses,
        )

    @classmethod
    def zero(cls) -> "PEOpStats":
        return cls(0, 0, 0, 0, 0, 0)


class PE:
    """A single processing element.

    Parameters
    ----------
    zero_skipping:
        When ``False`` the PE behaves like a dense PE: every operand position
        (zero or not) costs a cycle and a full K-wide MAC.  This models the
        Eyeriss-like baseline PE at matched peak throughput.
    amortize_weight_load:
        When ``True``, kernel-row loads are assumed to be overlapped with the
        previous operation's drain (the controller schedules row operations
        that reuse the same kernel row back to back), so they do not add
        cycles; they are still counted as register loads for energy.
    """

    def __init__(self, zero_skipping: bool = True, amortize_weight_load: bool = False) -> None:
        self.zero_skipping = zero_skipping
        self.amortize_weight_load = amortize_weight_load
        self.total_stats = PEOpStats.zero()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, op: RowOp) -> tuple[np.ndarray, PEOpStats]:
        """Execute one row operation; returns (result, stats)."""
        if isinstance(op, SRCOp):
            result, stats = self.run_src(op)
        elif isinstance(op, MSRCOp):
            result, stats = self.run_msrc(op)
        elif isinstance(op, OSRCOp):
            result, stats = self.run_osrc(op)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported op type {type(op).__name__}")
        self.total_stats = self.total_stats + stats
        return result, stats

    # ------------------------------------------------------------------
    # SRC — Forward step
    # ------------------------------------------------------------------
    def run_src(self, op: SRCOp) -> tuple[np.ndarray, PEOpStats]:
        """Sparse Row Convolution: dense kernel row x sparse input row."""
        kernel = op.kernel_row
        kernel_size = kernel.size
        out = np.zeros(op.out_len, dtype=np.float64)

        if self.zero_skipping:
            positions = op.input_row.offsets
            values = op.input_row.values
        else:
            dense = op.input_row.to_dense()
            positions = np.arange(dense.size)
            values = dense

        processed = 0
        macs = 0
        for position, value in zip(positions, values):
            processed += 1
            macs += kernel_size
            if value == 0.0:
                continue
            for k in range(kernel_size):
                remainder = position - k
                if remainder < 0:
                    continue
                if op.stride > 1 and remainder % op.stride != 0:
                    continue
                ow = remainder // op.stride
                if 0 <= ow < op.out_len:
                    out[ow] += value * kernel[k]

        weight_loads = kernel_size
        load_cycles = 0 if self.amortize_weight_load else kernel_size
        cycles = load_cycles + processed
        reg_accesses = 2 * macs + processed + weight_loads
        stats = PEOpStats(
            cycles=cycles,
            macs=macs,
            processed_operands=processed,
            skipped_operands=int(op.input_row.length - processed)
            if self.zero_skipping
            else 0,
            weight_loads=weight_loads,
            reg_accesses=reg_accesses,
        )
        return out, stats

    # ------------------------------------------------------------------
    # MSRC — GTA step
    # ------------------------------------------------------------------
    def run_msrc(self, op: MSRCOp) -> tuple[np.ndarray, PEOpStats]:
        """Masked Sparse Row Convolution: scatter dO into masked dI positions."""
        kernel = op.kernel_row
        kernel_size = kernel.size
        out = np.zeros(op.out_len, dtype=np.float64)
        mask = op.output_mask

        if self.zero_skipping:
            positions = op.grad_row.offsets
            values = op.grad_row.values
        else:
            dense = op.grad_row.to_dense()
            positions = np.arange(dense.size)
            values = dense

        processed = 0
        skipped = 0
        macs = 0
        for position, value in zip(positions, values):
            start = position * op.stride
            targets = [
                start + k
                for k in range(kernel_size)
                if start + k < op.out_len and mask[start + k]
            ]
            if self.zero_skipping and not targets:
                # Every output this operand would touch is masked off: the
                # look-ahead logic skips it without spending a cycle.
                skipped += 1
                continue
            processed += 1
            if not self.zero_skipping:
                targets = [start + k for k in range(kernel_size) if start + k < op.out_len]
            macs += len(targets)
            if value != 0.0:
                for target in targets:
                    out[target] += value * kernel[target - start]

        if not self.zero_skipping:
            # The dense baseline has no mask either: it computes every position
            # and lets the ReLU backward zero them later.
            out_unmasked = out
        else:
            out_unmasked = out * mask

        weight_loads = kernel_size
        load_cycles = 0 if self.amortize_weight_load else kernel_size
        cycles = load_cycles + processed
        reg_accesses = 2 * macs + processed + weight_loads
        stats = PEOpStats(
            cycles=cycles,
            macs=macs,
            processed_operands=processed,
            skipped_operands=skipped
            + (int(op.grad_row.length - op.grad_row.nnz) if self.zero_skipping else 0),
            weight_loads=weight_loads,
            reg_accesses=reg_accesses,
        )
        return out_unmasked, stats

    # ------------------------------------------------------------------
    # OSRC — GTW step
    # ------------------------------------------------------------------
    def run_osrc(self, op: OSRCOp) -> tuple[np.ndarray, PEOpStats]:
        """Output Store Row Convolution: two sparse rows, K-element result."""
        kernel_size = op.kernel_size
        dw = np.zeros(kernel_size, dtype=np.float64)
        grad_dense = op.grad_row.to_dense()
        grad_nnz_positions = set(op.grad_row.offsets.tolist())

        if self.zero_skipping:
            positions = op.input_row.offsets
            values = op.input_row.values
        else:
            dense = op.input_row.to_dense()
            positions = np.arange(dense.size)
            values = dense

        processed = 0
        skipped = 0
        macs = 0
        for position, value in zip(positions, values):
            # Pairings: dw[kw] needs input[ow*stride + kw] * grad[ow].
            pairings = []
            for kw in range(kernel_size):
                remainder = position - kw
                if remainder < 0:
                    continue
                if op.stride > 1 and remainder % op.stride != 0:
                    continue
                ow = remainder // op.stride
                if ow >= op.grad_row.length:
                    continue
                if self.zero_skipping and ow not in grad_nnz_positions:
                    continue
                pairings.append((kw, ow))
            if self.zero_skipping and not pairings:
                skipped += 1
                continue
            processed += 1
            macs += len(pairings)
            if value != 0.0:
                for kw, ow in pairings:
                    dw[kw] += value * grad_dense[ow]

        cycles = processed
        reg_accesses = 2 * macs + processed + op.grad_row.nnz
        stats = PEOpStats(
            cycles=cycles,
            macs=macs,
            processed_operands=processed,
            skipped_operands=skipped
            + (int(op.input_row.length - op.input_row.nnz) if self.zero_skipping else 0),
            weight_loads=0,
            reg_accesses=reg_accesses,
        )
        return dw, stats
