"""Ambient trace context: the correlation half of distributed tracing.

A *trace* is one job's journey through the fleet — submitted over HTTP,
queued in the store, claimed by a worker process, executed as a pipeline.
Each process only ever sees its own slice of that journey, so spans must be
stamped with enough identity to be merged later: ``trace_id`` (shared by
every span of one job), ``job_id``, ``worker_id`` and ``pid``.

The stamp travels as *ambient context*: a thread-local stack of overlay
frames pushed by :func:`trace_context` around a unit of work.  Inner frames
inherit any field they leave as ``None``, so the HTTP handler can establish
``trace_id`` and the pipeline below it only needs to add nothing.  The
:data:`~repro.obs.trace.TRACE` buffer reads :func:`current_trace` whenever a
span closes and stamps the span — callers of ``trace_span`` never pass
identity explicitly.

Two deliberate properties:

* **Thread-scoped, like the span stack.**  A worker thread executing a job
  wraps the whole execution in one ``trace_context``; helper threads it
  spawns (heartbeats) do their own non-traced work.  This mirrors the
  parent-span stack in :mod:`repro.obs.trace` so the two always agree.
* **Late binding.**  ``bind_trace`` rewrites the *innermost* frame, which
  matters at submission: the HTTP front-end opens its span before the store
  decides whether the submission dedup-attaches to an existing job (keeping
  that job's original ``trace_id``).  After ``submit`` returns, the handler
  binds the authoritative ids so the span — recorded when the frame exits —
  carries them.

Process-wide defaults (``set_trace_defaults``) cover identity that never
changes within a process, such as a worker's ``worker_id``.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

#: The fields an overlay frame may carry.  Order matters: it is the
#: precedence-independent canonical listing used when merging frames.
_FIELDS = ("trace_id", "job_id", "worker_id")

_local = threading.local()
_defaults: dict[str, str] = {}
_defaults_lock = threading.Lock()


@dataclass(frozen=True)
class TraceContext:
    """An immutable snapshot of the ambient correlation fields."""

    trace_id: str | None = None
    job_id: str | None = None
    worker_id: str | None = None

    def to_dict(self) -> dict[str, str]:
        """Only the bound fields, for log/span stamping."""
        return {
            field: value
            for field in _FIELDS
            if (value := getattr(self, field)) is not None
        }


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id, assigned once at job submission."""
    return uuid.uuid4().hex


def _frames() -> list[dict[str, str]]:
    stack = getattr(_local, "frames", None)
    if stack is None:
        stack = []
        _local.frames = stack
    return stack


def set_trace_defaults(**fields: str | None) -> None:
    """Set process-wide fallback fields (typically a worker's ``worker_id``).

    Defaults sit *below* every :func:`trace_context` frame; a ``None`` value
    clears the default.
    """
    with _defaults_lock:
        for field, value in fields.items():
            if field not in _FIELDS:
                raise ValueError(f"unknown trace field {field!r}")
            if value is None:
                _defaults.pop(field, None)
            else:
                _defaults[field] = str(value)


def current_trace() -> TraceContext:
    """The merged ambient context: defaults overlaid by every open frame."""
    merged: dict[str, str] = dict(_defaults)
    for frame in _frames():
        merged.update(frame)
    return TraceContext(**{field: merged.get(field) for field in _FIELDS})


@contextmanager
def trace_context(
    trace_id: str | None = None,
    job_id: str | None = None,
    worker_id: str | None = None,
) -> Iterator[TraceContext]:
    """Push an overlay frame; ``None`` fields inherit from the outer scope.

    Yields the merged :class:`TraceContext` in effect inside the frame
    (before any :func:`bind_trace` rewrites).
    """
    frame = {
        field: str(value)
        for field, value in (
            ("trace_id", trace_id),
            ("job_id", job_id),
            ("worker_id", worker_id),
        )
        if value is not None
    }
    stack = _frames()
    stack.append(frame)
    try:
        yield current_trace()
    finally:
        # Pop by identity: a frame leaked by a generator being closed out of
        # order must not pop someone else's.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is frame:
                del stack[index]
                break


def bind_trace(**fields: str | None) -> None:
    """Rewrite fields of the *innermost* open frame (late binding).

    With no open frame the fields fall through to the process defaults —
    callers that want late binding should already be inside a
    :func:`trace_context`.
    """
    for field in fields:
        if field not in _FIELDS:
            raise ValueError(f"unknown trace field {field!r}")
    stack = _frames()
    if not stack:
        set_trace_defaults(**fields)
        return
    frame = stack[-1]
    for field, value in fields.items():
        if value is None:
            frame.pop(field, None)
        else:
            frame[field] = str(value)


__all__ = [
    "TraceContext",
    "bind_trace",
    "current_trace",
    "new_trace_id",
    "set_trace_defaults",
    "trace_context",
]
