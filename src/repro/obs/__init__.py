"""``repro.obs`` — unified metrics, tracing and progress telemetry.

The dependency-free observability layer every other subsystem records into:

* :mod:`repro.obs.metrics` — a process-global :class:`MetricsRegistry` of
  counters, gauges and streaming log-bucket histograms (p50/p95/p99 without
  stored samples), with JSON-snapshot and Prometheus-text exporters.
* :mod:`repro.obs.trace` — :func:`trace_span`, a context manager recording
  structured spans (start/duration/parent/attrs) into a bounded in-memory
  ring with JSONL and Chrome-trace (Perfetto) exporters.

Instrumented seams: pipeline stage execution (:mod:`repro.api.stages`), the
worker-pool :class:`~repro.api.Runner`, the persistent result/density caches,
and the :mod:`repro.serve` scheduler + store — surfaced by the service's
``GET /stats`` / ``GET /metrics`` endpoints and the ``repro stats`` /
``repro trace`` CLI verbs.

Overhead policy: recording is always on (locked integer adds and a bounded
deque append); nothing is formatted or written until an exporter or snapshot
is explicitly requested, so the hot path cost is fixed and tiny (the bench
gate bounds it at <= 2% on the simulate stage).
"""

from __future__ import annotations

from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    GROWTH,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    REGISTRY,
    metrics,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    Span,
    TRACE,
    TraceBuffer,
    current_span_id,
    trace_span,
)

__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "DEFAULT_CAPACITY",
    "GROWTH",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE",
    "TraceBuffer",
    "current_span_id",
    "metrics",
    "trace_span",
]
