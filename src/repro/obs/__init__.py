"""``repro.obs`` — unified metrics, tracing and progress telemetry.

The dependency-free observability layer every other subsystem records into:

* :mod:`repro.obs.metrics` — a process-global :class:`MetricsRegistry` of
  counters, gauges and streaming log-bucket histograms (p50/p95/p99 without
  stored samples), with JSON-snapshot and Prometheus-text exporters.
* :mod:`repro.obs.trace` — :func:`trace_span`, a context manager recording
  structured spans (start/duration/parent/attrs) into a bounded in-memory
  ring with JSONL and Chrome-trace (Perfetto) exporters.
* :mod:`repro.obs.context` — the ambient trace context (``trace_id`` /
  ``job_id`` / ``worker_id``) that stamps every span so spans from many
  processes can be correlated into one distributed trace.
* :mod:`repro.obs.sink` — the per-DB span store and metrics time-series:
  each fleet process spools its spans and periodic metrics snapshots to
  bounded JSONL files beside ``serve.db``; readers merge them into one
  Chrome/Perfetto trace per job and one ``/metrics/history`` series.

Instrumented seams: pipeline stage execution (:mod:`repro.api.stages`), the
worker-pool :class:`~repro.api.Runner`, the persistent result/density caches,
and the :mod:`repro.serve` scheduler + store — surfaced by the service's
``GET /stats`` / ``GET /metrics`` endpoints and the ``repro stats`` /
``repro trace`` CLI verbs.

Overhead policy: recording is always on (locked integer adds and a bounded
deque append); nothing is formatted or written until an exporter or snapshot
is explicitly requested, so the hot path cost is fixed and tiny (the bench
gate bounds it at <= 2% on the simulate stage).
"""

from __future__ import annotations

from repro.obs.context import (
    TraceContext,
    bind_trace,
    current_trace,
    new_trace_id,
    set_trace_defaults,
    trace_context,
)
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    GROWTH,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    REGISTRY,
    metrics,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    Span,
    TRACE,
    TraceBuffer,
    current_span_id,
    spans_to_chrome_trace,
    trace_span,
)

__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "DEFAULT_CAPACITY",
    "GROWTH",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE",
    "TraceBuffer",
    "TraceContext",
    "bind_trace",
    "current_span_id",
    "current_trace",
    "metrics",
    "new_trace_id",
    "set_trace_defaults",
    "spans_to_chrome_trace",
    "trace_context",
    "trace_span",
]
