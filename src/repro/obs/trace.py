"""Structured spans and trace export — the tracing half of ``repro.obs``.

:func:`trace_span` is a context manager that records one timed span into a
bounded in-memory ring (:class:`TraceBuffer`).  Spans carry a name, wall-clock
start, duration, free-form attributes, the recording thread, and a parent id
maintained through a *thread-local* span stack — so nested ``trace_span``
calls in one thread parent naturally, while spans recorded concurrently from
other threads (scheduler workers, the HTTP handler pool) stay independent
roots instead of inheriting a random parent.

Every recorded span is additionally stamped with the ambient
:mod:`~repro.obs.context` fields (``trace_id``, ``job_id``, ``worker_id``)
and the recording ``pid`` — the identity that lets spans spooled by many
processes be merged back into one distributed trace
(:func:`repro.obs.sink.merge_trace`).

The ring is bounded (default 4096 spans) and recording is append-to-deque
cheap, so tracing stays on permanently; nothing touches the filesystem until
an exporter is invoked or a *sink* is installed:

* :meth:`TraceBuffer.write_jsonl` — one span dict per line, greppable;
* :meth:`TraceBuffer.write_chrome_trace` — the Chrome trace-event JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly (complete
  ``"ph": "X"`` events, microsecond timestamps);
* :meth:`TraceBuffer.add_sink` — a callback invoked per recorded span; the
  job service installs a :class:`~repro.obs.sink.SpanSpool` here so each
  process ships its spans to the per-DB span store as they close.  Sink
  failures are counted (``obs.sink_errors``) and swallowed: telemetry must
  never break the traced program.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.context import current_trace

# Default ring capacity: generously above one pipeline run's span count
# (tens), small enough that an always-on ring is invisible in memory.
DEFAULT_CAPACITY = 4096

_ids = itertools.count(1)
_stack = threading.local()


def _current_stack() -> list[int]:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = []
        _stack.spans = stack
    return stack


@dataclass(frozen=True)
class Span:
    """One completed span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float          # epoch seconds (wall clock, for cross-process alignment)
    duration: float       # seconds (monotonic clock)
    thread: str
    attrs: dict[str, Any] = field(default_factory=dict)
    # Distributed identity, stamped from the ambient trace context at record
    # time.  Defaults keep direct Span(...) construction working.
    trace_id: str | None = None
    job_id: str | None = None
    worker_id: str | None = None
    pid: int = field(default_factory=os.getpid)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "job_id": self.job_id,
            "worker_id": self.worker_id,
            "pid": self.pid,
        }


class TraceBuffer:
    """Bounded ring of completed spans with JSONL / Chrome-trace exporters."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._recorded = 0
        self._sinks: list[Callable[[Span], None]] = []

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1
            sinks = tuple(self._sinks)
        for sink in sinks:
            try:
                sink(span)
            except Exception:
                # A failing sink (disk full, torn-down spool) must not break
                # the traced program; count it and move on.
                from repro.obs.metrics import metrics

                metrics().counter("obs.sink_errors").inc()

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Install a per-span callback (e.g. a spool's ``record``)."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Span], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (including ones the ring evicted)."""
        return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> int:
        """One span JSON object per line; returns the span count written."""
        spans = self.spans()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event document for the retained spans.

        Complete events (``"ph": "X"``) with microsecond timestamps.  Events
        are grouped by each span's recording ``pid`` (spans replayed from
        other processes keep their own track), and process/thread names are
        emitted as metadata events so Perfetto's track labels read as names,
        not bare ids.
        """
        spans = self.spans()
        return spans_to_chrome_trace(span.to_dict() for span in spans)

    def write_chrome_trace(self, path: str | Path) -> int:
        """Write :meth:`to_chrome_trace` JSON; returns the span count."""
        document = self.to_chrome_trace()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        return len(
            [e for e in document["traceEvents"] if e["ph"] == "X"]
        )


def spans_to_chrome_trace(spans: Any) -> dict[str, Any]:
    """Convert span dicts (from any process) into one Chrome trace document.

    Tracks are keyed per ``(pid, thread)`` so merged multi-process traces
    render one process group per fleet member; each process's metadata row
    is named after its ``worker_id`` when known.
    """
    events: list[dict[str, Any]] = []
    thread_ids: dict[tuple[int, str], int] = {}
    process_names: dict[int, str] = {}
    for span in spans:
        if not isinstance(span, dict):
            span = span.to_dict()
        pid = int(span.get("pid") or os.getpid())
        thread = str(span.get("thread") or "?")
        tid = thread_ids.setdefault((pid, thread), len(thread_ids) + 1)
        worker_id = span.get("worker_id")
        if worker_id and pid not in process_names:
            process_names[pid] = str(worker_id)
        args = {"span_id": span.get("span_id")}
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        for key in ("trace_id", "job_id", "worker_id"):
            if span.get(key):
                args[key] = span[key]
        args.update(span.get("attrs") or {})
        events.append(
            {
                "name": span.get("name", "?"),
                "ph": "X",
                "ts": float(span.get("start", 0.0)) * 1e6,
                "dur": float(span.get("duration", 0.0)) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    metadata: list[dict[str, Any]] = []
    for pid in sorted({key[0] for key in thread_ids}):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_names.get(pid, f"pid {pid}")},
            }
        )
    for (pid, thread), tid in thread_ids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# The process-global ring every trace_span records into.
TRACE = TraceBuffer()


@contextmanager
def trace_span(name: str, buffer: TraceBuffer | None = None, **attrs: Any) -> Iterator[dict[str, Any]]:
    """Record one timed span around the enclosed block.

    Yields the span's mutable ``attrs`` dict so the block can attach results
    discovered mid-flight (``span["instructions"] = n``).  Nesting within a
    thread parents automatically; exceptions propagate after the span is
    recorded with an ``error`` attribute.  The ambient trace context is read
    when the span *closes*, so ids bound late (``bind_trace``) still stamp
    the enclosing span.
    """
    target = buffer if buffer is not None else TRACE
    span_id = next(_ids)
    stack = _current_stack()
    parent_id = stack[-1] if stack else None
    stack.append(span_id)
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield attrs
    except BaseException as exc:
        attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        duration = time.perf_counter() - start
        stack.pop()
        ctx = current_trace()
        target.record(
            Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=start_wall,
                duration=duration,
                thread=threading.current_thread().name,
                attrs=dict(attrs),
                trace_id=ctx.trace_id,
                job_id=ctx.job_id,
                worker_id=ctx.worker_id,
            )
        )


def current_span_id() -> int | None:
    """The innermost active span id on this thread, or ``None``."""
    stack = _current_stack()
    return stack[-1] if stack else None


__all__ = [
    "DEFAULT_CAPACITY",
    "Span",
    "TRACE",
    "TraceBuffer",
    "current_span_id",
    "spans_to_chrome_trace",
    "trace_span",
]
