"""Structured spans and trace export — the tracing half of ``repro.obs``.

:func:`trace_span` is a context manager that records one timed span into a
bounded in-memory ring (:class:`TraceBuffer`).  Spans carry a name, wall-clock
start, duration, free-form attributes, the recording thread, and a parent id
maintained through a *thread-local* span stack — so nested ``trace_span``
calls in one thread parent naturally, while spans recorded concurrently from
other threads (scheduler workers, the HTTP handler pool) stay independent
roots instead of inheriting a random parent.

The ring is bounded (default 4096 spans) and recording is append-to-deque
cheap, so tracing stays on permanently; nothing touches the filesystem until
an exporter is invoked:

* :meth:`TraceBuffer.write_jsonl` — one span dict per line, greppable;
* :meth:`TraceBuffer.write_chrome_trace` — the Chrome trace-event JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly (complete
  ``"ph": "X"`` events, microsecond timestamps).

Spans recorded inside worker *processes* (the :class:`~repro.api.Runner`
pool) live in that process's ring and are not shipped back; the parent
process's spans cover the fan-out call itself.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

# Default ring capacity: generously above one pipeline run's span count
# (tens), small enough that an always-on ring is invisible in memory.
DEFAULT_CAPACITY = 4096

_ids = itertools.count(1)
_stack = threading.local()


def _current_stack() -> list[int]:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = []
        _stack.spans = stack
    return stack


@dataclass(frozen=True)
class Span:
    """One completed span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float          # epoch seconds (wall clock, for cross-process alignment)
    duration: float       # seconds (monotonic clock)
    thread: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class TraceBuffer:
    """Bounded ring of completed spans with JSONL / Chrome-trace exporters."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (including ones the ring evicted)."""
        return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> int:
        """One span JSON object per line; returns the span count written."""
        spans = self.spans()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event document for the retained spans.

        Complete events (``"ph": "X"``) with microsecond timestamps; thread
        names are emitted as metadata events so Perfetto's track labels read
        as thread names, not bare ids.
        """
        spans = self.spans()
        pid = os.getpid()
        thread_ids: dict[str, int] = {}
        events: list[dict[str, Any]] = []
        for span in spans:
            tid = thread_ids.setdefault(span.thread, len(thread_ids) + 1)
            args = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
            for thread, tid in thread_ids.items()
        ]
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> int:
        """Write :meth:`to_chrome_trace` JSON; returns the span count."""
        document = self.to_chrome_trace()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        return len(
            [e for e in document["traceEvents"] if e["ph"] == "X"]
        )


# The process-global ring every trace_span records into.
TRACE = TraceBuffer()


@contextmanager
def trace_span(name: str, buffer: TraceBuffer | None = None, **attrs: Any) -> Iterator[dict[str, Any]]:
    """Record one timed span around the enclosed block.

    Yields the span's mutable ``attrs`` dict so the block can attach results
    discovered mid-flight (``span["instructions"] = n``).  Nesting within a
    thread parents automatically; exceptions propagate after the span is
    recorded with an ``error`` attribute.
    """
    target = buffer if buffer is not None else TRACE
    span_id = next(_ids)
    stack = _current_stack()
    parent_id = stack[-1] if stack else None
    stack.append(span_id)
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield attrs
    except BaseException as exc:
        attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        duration = time.perf_counter() - start
        stack.pop()
        target.record(
            Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=start_wall,
                duration=duration,
                thread=threading.current_thread().name,
                attrs=dict(attrs),
            )
        )


def current_span_id() -> int | None:
    """The innermost active span id on this thread, or ``None``."""
    stack = _current_stack()
    return stack[-1] if stack else None


__all__ = [
    "DEFAULT_CAPACITY",
    "Span",
    "TRACE",
    "TraceBuffer",
    "current_span_id",
    "trace_span",
]
