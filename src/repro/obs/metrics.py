"""Counters, gauges and streaming histograms — the metric half of ``repro.obs``.

Everything here is dependency-free and cheap enough to leave permanently
enabled: a counter increment is one locked integer add, a histogram
observation is one locked dict increment.  Nothing is written anywhere until
a consumer asks — ``MetricsRegistry.snapshot()`` for the JSON view the
``/stats`` endpoint serves, ``MetricsRegistry.render_prometheus()`` for the
``/metrics`` scrape format.

Histograms use a **fixed log-bucket layout**: bucket ``i`` covers
``(growth**i, growth**(i+1)]`` with ``growth = 10**(1/BUCKETS_PER_DECADE)``.
Only non-empty buckets are stored (a dict of ``index -> count``), so a
histogram is O(observed decades x buckets-per-decade) in memory regardless of
how many samples streamed through it.  Quantiles come from a cumulative walk
over the buckets; the estimate for a quantile is the geometric midpoint of
its bucket, so the relative error is bounded by ``sqrt(growth) - 1``
(~15% at the default 8 buckets/decade) and exact values are never stored.
Merging two histograms adds their bucket counts — exact, associative and
commutative, which is what makes per-worker histograms aggregatable.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterator, Mapping, NamedTuple

# Log-bucket layout: 8 buckets per decade => growth factor ~1.3335 and a
# worst-case relative quantile error of sqrt(growth)-1 ~= 15.5%.
BUCKETS_PER_DECADE = 8
GROWTH = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
_LOG_GROWTH = math.log(GROWTH)

# Values at or below this observe into the underflow bucket (timings are
# positive; zero only appears for degenerate/mocked clocks).
_MIN_VALUE = 1e-12
_UNDERFLOW = -10 ** 9  # sentinel bucket index for values <= _MIN_VALUE

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_index(value: float) -> int:
    """The log-bucket index covering ``value`` (lower-exclusive bounds)."""
    if value <= _MIN_VALUE:
        return _UNDERFLOW
    # ceil(log_growth(v)) - 1 gives the bucket whose range (g**i, g**(i+1)]
    # contains v; math.ceil on the float log is stable because consumers only
    # need *a* consistent bucketing, not exact boundary classification.
    return math.ceil(math.log(value) / _LOG_GROWTH) - 1


def bucket_bounds(index: int) -> tuple[float, float]:
    """The ``(low, high]`` value range of one bucket index."""
    if index == _UNDERFLOW:
        return (0.0, _MIN_VALUE)
    return (GROWTH ** index, GROWTH ** (index + 1))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, pool size, ...)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class HistogramSnapshot(NamedTuple):
    """Immutable view of a histogram at one instant."""

    count: int
    sum: float
    min: float | None
    max: float | None
    p50: float | None
    p95: float | None
    p99: float | None

    def to_dict(self) -> dict[str, Any]:
        return dict(self._asdict())


class Histogram:
    """Streaming log-bucket histogram: p50/p95/p99 without storing samples."""

    __slots__ = ("_lock", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bucket_index(value)
        with self._lock:
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (geometric bucket midpoint, clamped).

        The estimate lands in the same bucket as the true quantile, so its
        relative error is bounded by ``sqrt(GROWTH) - 1``.  ``None`` before
        the first observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return None
            rank = q * self._count
            cumulative = 0
            estimate: float | None = None
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= rank:
                    low, high = bucket_bounds(index)
                    estimate = math.sqrt(max(low, _MIN_VALUE) * high)
                    break
            if estimate is None:  # pragma: no cover - rank <= count always hits
                estimate = self._max
            # The true min/max are tracked exactly; never report outside them.
            return min(max(estimate, self._min), self._max)

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both inputs' observations (exact)."""
        merged = Histogram()
        for source in (self, other):
            with source._lock:
                for index, count in source._buckets.items():
                    merged._buckets[index] = merged._buckets.get(index, 0) + count
                merged._count += source._count
                merged._sum += source._sum
                for bound in (source._min, source._max):
                    if bound is None:
                        continue
                    if merged._min is None or bound < merged._min:
                        merged._min = bound
                    if merged._max is None or bound > merged._max:
                        merged._max = bound
        return merged

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return HistogramSnapshot(
            count=count,
            sum=total,
            min=low,
            max=high,
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
        )


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Process-wide name + labels -> metric map.

    Metric names are dotted lowercase (``runner.tasks.completed``); labels
    distinguish instances of the same metric (``stage="train"``,
    ``cache="densities"``).  Lookup creates on first use, so instrumentation
    sites never need registration boilerplate — but a name must keep one
    metric type for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelsKey], Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(
        self, name: str, labels: Mapping[str, Any], factory: Callable[[], Metric]
    ) -> Metric:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        metric = self._get_or_create(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Counter")
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        metric = self._get_or_create(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Gauge")
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        metric = self._get_or_create(name, labels, Histogram)
        if not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a Histogram"
            )
        return metric

    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[str, LabelsKey, Metric]]:
        with self._lock:
            entries = list(self._metrics.items())
        for (name, labels), metric in sorted(entries, key=lambda e: e[0]):
            yield name, labels, metric

    def reset(self) -> None:
        """Drop every metric (tests; a long-lived service never calls this)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Export formats
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-native view: ``{name: [{labels, <value|histogram fields>}]}``."""
        out: dict[str, list[dict[str, Any]]] = {}
        for name, labels, metric in self.items():
            entry: dict[str, Any] = {"labels": dict(labels)}
            if isinstance(metric, Histogram):
                entry.update(metric.snapshot().to_dict())
                entry["type"] = "histogram"
            elif isinstance(metric, Gauge):
                entry["value"] = metric.snapshot()
                entry["type"] = "gauge"
            else:
                entry["value"] = metric.snapshot()
                entry["type"] = "counter"
            out.setdefault(name, []).append(entry)
        return out

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (histograms as summaries)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for name, labels, metric in self.items():
            metric_name = f"{prefix}_{name}".replace(".", "_").replace("-", "_")
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                if metric_name not in seen_types:
                    lines.append(f"# TYPE {metric_name} summary")
                    seen_types.add(metric_name)
                for q, value in (("0.5", snap.p50), ("0.95", snap.p95), ("0.99", snap.p99)):
                    if value is None:
                        continue
                    label_text = _prom_labels(labels, extra=(("quantile", q),))
                    lines.append(f"{metric_name}{label_text} {value:.9g}")
                label_text = _prom_labels(labels)
                lines.append(f"{metric_name}_count{label_text} {snap.count}")
                lines.append(f"{metric_name}_sum{label_text} {snap.sum:.9g}")
            else:
                kind = "gauge" if isinstance(metric, Gauge) else "counter"
                if kind == "counter":
                    metric_name += "_total"
                if metric_name not in seen_types:
                    lines.append(f"# TYPE {metric_name} {kind}")
                    seen_types.add(metric_name)
                value = metric.snapshot()
                rendered = f"{value:.9g}" if isinstance(value, float) else str(value)
                lines.append(f"{metric_name}{_prom_labels(labels)} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(
    labels: LabelsKey, extra: tuple[tuple[str, str], ...] = ()
) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{value}"'.replace("\\", "\\\\").replace("\n", "\\n")
        for key, value in pairs
    )
    return "{" + body + "}"


# The process-global registry every instrumentation site records into.
REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return REGISTRY


__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "GROWTH",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "REGISTRY",
    "bucket_bounds",
    "bucket_index",
    "metrics",
]
