"""The per-DB span store and metrics time-series — durable fleet telemetry.

One job service = one SQLite store = one *obs directory* right beside it
(``serve.db`` → ``serve.db.obs/``).  Every process of the fleet — the HTTP
front-end, in-process scheduler workers, and each ``repro worker``
subprocess — runs a :class:`ProcessTelemetry` agent that

* installs a :class:`SpanSpool` as a sink on the process-global
  :data:`~repro.obs.trace.TRACE` ring, appending each completed span (already
  stamped with ``trace_id``/``job_id``/``worker_id``/``pid``) as one JSON
  line to its own ``spans-<host>-<pid>.jsonl`` file, and
* periodically snapshots the process's
  :class:`~repro.obs.metrics.MetricsRegistry` into a bounded
  ``metrics-<host>-<pid>.jsonl`` ring.

Per-process append-only files sidestep cross-process write contention
entirely (no locks shared with the job store's SQLite transactions) and make
crash forensics trivial: a SIGKILL'd worker's spool survives it, so the
merged trace still shows what the dead process did.

Bounding is three-layered: each spool rotates at ``max_bytes`` keeping one
predecessor generation, each metrics ring compacts down to ``capacity``
entries, and :func:`prune_obs_dir` caps the file count per kind so a
long-lived service's churn of worker pids cannot grow the directory without
bound.

Readers (:func:`read_spans`, :func:`read_metrics_history`) scan every
generation of every process's file, skipping torn or corrupt lines — a
process may die mid-write, and telemetry must degrade, not raise.
:func:`merge_trace` assembles one Chrome/Perfetto document from the spans of
every process that touched a job, plus a synthetic ``queue.wait`` span
derived from the job row (``started_at - max(created_at, not_before)`` —
by construction the same quantity the store observes into the
``serve.queue_wait_seconds`` histogram at claim time).
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs.metrics import MetricsRegistry, metrics
from repro.obs.trace import TRACE, Span, TraceBuffer, spans_to_chrome_trace

# Per-process spool rotation threshold and per-kind directory file cap.
DEFAULT_SPOOL_MAX_BYTES = 4 * 1024 * 1024
DEFAULT_DIR_MAX_FILES = 32
# Metrics ring: entries retained per process and the default snapshot cadence.
DEFAULT_HISTORY_CAPACITY = 360
DEFAULT_SNAPSHOT_INTERVAL = 2.0

_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def _safe_host() -> str:
    return _SAFE.sub("_", socket.gethostname() or "host") or "host"


def obs_dir_for(db_path: str | Path) -> Path:
    """The obs directory paired with a job-store database path."""
    return Path(str(db_path) + ".obs")


def prune_obs_dir(
    directory: str | Path,
    prefix: str,
    max_files: int = DEFAULT_DIR_MAX_FILES,
) -> list[Path]:
    """Delete the oldest ``<prefix>-*`` files beyond ``max_files``.

    Ordered by mtime so the spools of long-dead processes go first; returns
    the paths removed.  Missing files (a concurrent pruner) are skipped.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    candidates = sorted(
        (path for path in directory.glob(f"{prefix}-*") if path.is_file()),
        key=lambda path: (path.stat().st_mtime, path.name),
    )
    removed: list[Path] = []
    excess = len(candidates) - max_files
    for path in candidates[:max(0, excess)]:
        try:
            path.unlink()
            removed.append(path)
        except OSError:
            continue
    return removed


class SpanSpool:
    """Append-only JSONL span sink for one process, with size rotation.

    ``record`` is the :meth:`TraceBuffer.add_sink` callback: one
    ``json.dumps`` + buffered write + flush per span, serialized under a
    lock.  At ``max_bytes`` the file rotates to ``<name>.jsonl.1``
    (overwriting the previous generation), so one process retains at most
    two generations ≈ ``2 * max_bytes``.
    """

    def __init__(
        self,
        directory: str | Path,
        worker_id: str | None = None,
        max_bytes: int = DEFAULT_SPOOL_MAX_BYTES,
        max_files: int = DEFAULT_DIR_MAX_FILES,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id
        self.max_bytes = max_bytes
        self.path = self.directory / f"spans-{_safe_host()}-{os.getpid()}.jsonl"
        self._lock = threading.Lock()
        self._handle: Any = None
        self._size = 0
        prune_obs_dir(self.directory, "spans", max_files)

    def record(self, span: Span | dict[str, Any]) -> None:
        payload = span.to_dict() if isinstance(span, Span) else dict(span)
        if self.worker_id and not payload.get("worker_id"):
            payload["worker_id"] = self.worker_id
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                self._open()
            if self._size + len(line) > self.max_bytes and self._size > 0:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)

    def _open(self) -> None:
        self._handle = self.path.open("a", encoding="utf-8")
        self._size = self.path.stat().st_size

    def _rotate(self) -> None:
        self._handle.close()
        os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self._handle = self.path.open("a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def _iter_jsonl(path: Path) -> Iterable[dict[str, Any]]:
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn write from a killed process
                if isinstance(entry, dict):
                    yield entry
    except OSError:
        return


def read_spans(
    directory: str | Path,
    trace_id: str | None = None,
    job_id: str | None = None,
    limit: int = 100_000,
) -> list[dict[str, Any]]:
    """All spooled spans (every process, every generation), start-ordered.

    Filters by ``trace_id``/``job_id`` when given; tolerates missing
    directories and corrupt lines.
    """
    directory = Path(directory)
    spans: list[dict[str, Any]] = []
    if not directory.is_dir():
        return spans
    for path in sorted(directory.glob("spans-*.jsonl*")):
        for entry in _iter_jsonl(path):
            if trace_id is not None and entry.get("trace_id") != trace_id:
                continue
            if job_id is not None and entry.get("job_id") != job_id:
                continue
            spans.append(entry)
            if len(spans) >= limit:
                break
        if len(spans) >= limit:
            break
    spans.sort(key=lambda span: (span.get("start") or 0.0, span.get("span_id") or 0))
    return spans


def merge_trace(
    spans: list[dict[str, Any]], job: dict[str, Any] | None = None
) -> dict[str, Any]:
    """One Chrome/Perfetto document from the spans of every process.

    When the job row is given, a synthetic ``queue.wait`` span is prepended
    on its own pid-0 "job queue" track: duration
    ``started_at - max(created_at, not_before)``, the exact quantity the
    store observed into ``serve.queue_wait_seconds`` when the job was
    claimed.
    """
    document = spans_to_chrome_trace(spans)
    events = document["traceEvents"]
    queue_wait: float | None = None
    trace_id = next(
        (span.get("trace_id") for span in spans if span.get("trace_id")), None
    )
    if job is not None:
        trace_id = trace_id or job.get("trace_id")
        started = job.get("started_at")
        created = job.get("created_at")
        if started is not None and created is not None:
            became_due = max(created, job.get("not_before") or created)
            queue_wait = max(0.0, started - became_due)
            events.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": 0,
                    "args": {"name": "job queue"},
                },
            )
            events.append(
                {
                    "name": "queue.wait",
                    "ph": "X",
                    "ts": became_due * 1e6,
                    "dur": queue_wait * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        "synthetic": True,
                        "job_id": job.get("id"),
                        "trace_id": trace_id,
                        "state": job.get("state"),
                    },
                }
            )
    pids = sorted(
        {event["pid"] for event in events if event.get("ph") == "X" and event["pid"]}
    )
    document["metadata"] = {
        "trace_id": trace_id,
        "job_id": job.get("id") if job else None,
        "span_count": len(spans),
        "pids": pids,
        "queue_wait_s": queue_wait,
    }
    return document


class SnapshotRing:
    """A bounded per-process JSONL ring of metrics snapshots.

    Appends one ``{ts, pid, host, worker_id, metrics}`` line per snapshot;
    when the file holds twice ``capacity`` lines it is compacted (rewritten
    from the in-memory deque via a temp file + atomic replace), so the file
    is bounded at roughly ``2 * capacity`` entries at all times.
    """

    def __init__(
        self,
        directory: str | Path,
        worker_id: str | None = None,
        capacity: int = DEFAULT_HISTORY_CAPACITY,
        max_files: int = DEFAULT_DIR_MAX_FILES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id
        self.capacity = capacity
        self.path = self.directory / f"metrics-{_safe_host()}-{os.getpid()}.jsonl"
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._written = 0
        prune_obs_dir(self.directory, "metrics", max_files)

    def snapshot(
        self, registry: MetricsRegistry | None = None, now: float | None = None
    ) -> dict[str, Any]:
        registry = registry if registry is not None else metrics()
        entry = {
            "ts": time.time() if now is None else now,
            "pid": os.getpid(),
            "host": _safe_host(),
            "worker_id": self.worker_id,
            "metrics": registry.snapshot(),
        }
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        with self._lock:
            self._entries.append(entry)
            self._written += 1
            if self._written >= 2 * self.capacity:
                self._compact()
            else:
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line)
        return entry

    def _compact(self) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        os.replace(tmp, self.path)
        self._written = len(self._entries)

    def entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._entries)


def read_metrics_history(
    directory: str | Path,
    limit: int = DEFAULT_HISTORY_CAPACITY,
    since: float | None = None,
) -> list[dict[str, Any]]:
    """Merged snapshots across every process, timestamp-ascending.

    ``limit`` keeps the newest entries after merging; ``since`` drops
    entries at or before that epoch timestamp first.
    """
    directory = Path(directory)
    entries: list[dict[str, Any]] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("metrics-*.jsonl")):
        for entry in _iter_jsonl(path):
            if since is not None and (entry.get("ts") or 0.0) <= since:
                continue
            entries.append(entry)
    entries.sort(key=lambda entry: entry.get("ts") or 0.0)
    if limit is not None and len(entries) > limit:
        entries = entries[-limit:]
    return entries


class ProcessTelemetry:
    """Per-process telemetry agent: span spool + periodic metrics snapshots.

    ``start`` installs the spool as a :data:`TRACE` sink and launches a
    daemon thread snapshotting the registry every ``snapshot_interval``
    seconds; ``stop`` removes the sink, takes one final snapshot, and closes
    the spool.  Idempotent in both directions, cheap enough to run in every
    fleet process permanently.
    """

    def __init__(
        self,
        db_path: str | Path,
        worker_id: str | None = None,
        snapshot_interval: float = DEFAULT_SNAPSHOT_INTERVAL,
        history_capacity: int = DEFAULT_HISTORY_CAPACITY,
        spool_max_bytes: int = DEFAULT_SPOOL_MAX_BYTES,
        buffer: TraceBuffer | None = None,
    ) -> None:
        self.directory = obs_dir_for(db_path)
        self.snapshot_interval = snapshot_interval
        self.spool = SpanSpool(
            self.directory, worker_id=worker_id, max_bytes=spool_max_bytes
        )
        self.ring = SnapshotRing(
            self.directory, worker_id=worker_id, capacity=history_capacity
        )
        self._buffer = buffer if buffer is not None else TRACE
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = False

    def start(self) -> "ProcessTelemetry":
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        self._buffer.add_sink(self.spool.record)
        if self.snapshot_interval > 0:
            self._thread = threading.Thread(
                target=self._snapshot_loop, name="obs-telemetry", daemon=True
            )
            self._thread.start()
        return self

    def _snapshot_loop(self) -> None:
        while not self._stop.wait(self.snapshot_interval):
            try:
                self.ring.snapshot()
            except Exception:
                metrics().counter("obs.snapshot_errors").inc()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._buffer.remove_sink(self.spool.record)
        try:
            self.ring.snapshot()
        except Exception:
            metrics().counter("obs.snapshot_errors").inc()
        self.spool.close()

    def __enter__(self) -> "ProcessTelemetry":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = [
    "DEFAULT_DIR_MAX_FILES",
    "DEFAULT_HISTORY_CAPACITY",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "DEFAULT_SPOOL_MAX_BYTES",
    "ProcessTelemetry",
    "SnapshotRing",
    "SpanSpool",
    "merge_trace",
    "obs_dir_for",
    "prune_obs_dir",
    "read_metrics_history",
    "read_spans",
]
