"""SparseTrain (DAC 2020) reproduction.

A from-scratch Python implementation of *SparseTrain: Exploiting Dataflow
Sparsity for Efficient Convolutional Neural Networks Training* (Dai et al.,
DAC 2020), covering the three levels of the paper's contribution and every
substrate they depend on:

* :mod:`repro.pruning` — layer-wise stochastic activation-gradient pruning
  with analytic threshold determination and FIFO-based threshold prediction.
* :mod:`repro.dataflow` — the 1-D convolution training dataflow (SRC / MSRC /
  OSRC row operations), compressed operand formats, a compiler from model
  specifications to accelerator instruction streams, and closed-form operation
  counts.
* :mod:`repro.arch` — the sparse-aware accelerator (PE, PPU, PE groups,
  global buffer, DRAM, controller) with cycle and energy models, plus
  :mod:`repro.baselines` for the dense Eyeriss-like comparison point.
* :mod:`repro.nn`, :mod:`repro.data`, :mod:`repro.models` — the numpy CNN
  training framework, synthetic datasets and the AlexNet/ResNet model zoo the
  algorithm experiments run on.
* :mod:`repro.sim` and :mod:`repro.eval` — end-to-end workload simulation and
  the harnesses regenerating the paper's Table I, Table II, Fig. 8 and Fig. 9.
* :mod:`repro.explore` — design-space exploration over the simulator:
  declarative sweep spaces, a parallel cached evaluation engine, Pareto
  analysis and the ``python -m repro`` command line (:mod:`repro.cli`).
* :mod:`repro.obs` — unified telemetry: process-global metrics (counters,
  gauges, streaming log-bucket histograms), structured trace spans with
  Chrome-trace/JSONL export, surfaced through the job service's ``/stats``
  and ``/metrics`` endpoints and the ``repro stats`` / ``repro trace`` verbs.
"""

__version__ = "1.3.0"

from repro import (
    api,
    arch,
    baselines,
    data,
    dataflow,
    explore,
    models,
    nn,
    obs,
    pruning,
    sim,
    sparsity,
    utils,
)

__all__ = [
    "__version__",
    "api",
    "nn",
    "data",
    "models",
    "obs",
    "pruning",
    "sparsity",
    "dataflow",
    "arch",
    "baselines",
    "sim",
    "explore",
    "utils",
]
