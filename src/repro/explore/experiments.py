"""Registered ``sweep`` and ``pareto`` experiments over the exploration engine.

These wrap the design-space subsystem in the :mod:`repro.api` pipeline shape
(``compile -> simulate -> report``):

* ``compile`` builds the concrete :class:`DesignPoint` grid from the
  request's workloads and the ``pes`` / ``buffers`` / ``pruning_rates``
  parameters (optionally a seeded random subsample);
* ``simulate`` evaluates the points through :class:`ExplorationEngine` —
  deduplication, the persistent sweep cache resolved from the run options,
  and worker-pool fan-out through the shared Runner primitive;
* ``report`` renders the latency-ranked table (``sweep``) or per-workload
  Pareto frontiers (``pareto``).

``python -m repro sweep`` / ``pareto`` / ``run sweep`` all dispatch here.
"""

from __future__ import annotations

import operator
from typing import Any

from repro.analytic.fidelity import Fidelity, fidelity_of
from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    Stage,
    fidelity_dispatch,
    register_experiment,
)
from repro.explore.engine import DesignPoint, ExplorationEngine, points_for
from repro.explore.pareto import parse_objectives, pareto_by_workload
from repro.explore.space import DesignSpace, grid_axis
from repro.explore.report import format_frontier, format_records_table
from repro.models.zoo import normalize_dataset_name, normalize_model_name

# Sweep payloads are stored verbatim by the serve job store; a million-point
# analytic sweep must not turn one SQLite row into a gigabyte.  Reports keep
# the full record list in ``native`` and cap the serialized payload at this
# many (latency-ranked) records unless the request overrides ``max_records``.
DEFAULT_MAX_PAYLOAD_RECORDS = 10000

# Default sweep grid (kept in sync with the CLI's documented defaults).
DEFAULT_SWEEP_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("ResNet-18", "CIFAR-10"),
    ("VGG-16", "CIFAR-10"),
    ("MobileNetV1", "CIFAR-10"),
)
DEFAULT_PES: tuple[int, ...] = (84, 168, 336, 672)
DEFAULT_BUFFERS: tuple[int, ...] = (192, 386, 772)
DEFAULT_RATES: tuple[float, ...] = (0.5, 0.7, 0.9, 0.95)
DEFAULT_OBJECTIVE_NAMES: tuple[str, ...] = ("latency_us", "energy_uj", "area_mm2")


def _compile_stage(ctx: PipelineContext):
    """``compile`` — cross the parameter grid with the workload list.

    Returns a :class:`DesignPoint` list, except for full (unsampled,
    duplicate-free) grids at analytic fidelity, which stay in axis form
    (:class:`~repro.analytic.model.AnalyticGridPlan`): at 10^5+ points,
    materializing one point object per cell would dwarf the closed-form
    evaluation itself.
    """
    request = ctx.request
    workloads = request.workloads or DEFAULT_SWEEP_WORKLOADS
    pes = tuple(request.param("pes", list(DEFAULT_PES)))
    buffers = tuple(request.param("buffers", list(DEFAULT_BUFFERS)))
    rates = tuple(request.param("pruning_rates", list(DEFAULT_RATES)))
    sample = request.param("sample")
    if sample is None and fidelity_of(request) is Fidelity.ANALYTIC and all(
        len(set(axis)) == len(axis) for axis in (pes, buffers, rates)
    ):
        from repro.analytic.model import AnalyticGridPlan

        return AnalyticGridPlan(
            workloads=tuple(
                (normalize_model_name(m), normalize_dataset_name(d))
                for m, d in workloads
            ),
            pes=pes,
            buffers=buffers,
            rates=rates,
        )
    space = DesignSpace(
        axes=(
            grid_axis("num_pes", pes),
            grid_axis("buffer_kib", buffers),
            grid_axis("pruning_rate", rates),
        )
    )
    return points_for(space, workloads, sample=sample, seed=request.param("seed", 0))


def _engine_for(ctx: PipelineContext, parallel: bool | None = None) -> ExplorationEngine:
    options = ctx.options
    cache = ctx.extras.get("sweep_cache")
    if cache is None and "sweep_cache" not in ctx.extras:
        cache = options.sweep_cache()
    return ExplorationEngine(
        cache=cache,
        max_workers=options.max_workers,
        parallel=options.parallel if parallel is None else parallel,
    )


def _simulate_vectorized(ctx: PipelineContext) -> dict[str, Any]:
    """The default tier: the cached, parallel instruction-stream engine."""
    engine = _engine_for(ctx)
    records = engine.run(ctx["compile"])
    return {"records": records, "stats": engine.stats.describe()}


def _simulate_scalar(ctx: PipelineContext) -> dict[str, Any]:
    """The serial trust anchor: same engine, parallelism forced off."""
    engine = _engine_for(ctx, parallel=False)
    records = engine.run(ctx["compile"])
    return {"records": records, "stats": engine.stats.describe()}


def _simulate_analytic(ctx: PipelineContext) -> dict[str, Any]:
    """The closed-form tier, optionally followed by a Pareto re-simulation.

    Analytic records carry fidelity-salted keys
    (:func:`repro.analytic.model.analytic_point_key`) and are *not* written
    to the sweep cache: a point costs microseconds, so caching would only
    bloat the JSONL store without saving time.  With ``resim_pareto`` the
    per-workload Pareto band of the analytic sweep is re-evaluated through
    the regular engine — legacy keys, cache and all — so the band records
    are bit-identical to simulating those points directly.
    """
    from repro.analytic.model import (
        AnalyticGridPlan,
        analytic_point_key,
        evaluate_grid_analytic,
        evaluate_points_analytic,
    )

    compiled = ctx["compile"]
    if isinstance(compiled, AnalyticGridPlan):
        records = evaluate_grid_analytic(compiled)
        duplicates = 0  # duplicate-free axes => every grid cell is distinct
    else:
        records = evaluate_points_analytic(compiled)
        duplicates = len(compiled) - len(records)
    stats = (
        f"{len(compiled)} points ({duplicates} duplicate), "
        f"{len(records)} analytic (closed-form)"
    )
    result: dict[str, Any] = {"records": records, "stats": stats}
    if not ctx.request.param("resim_pareto", False):
        return result

    # Phase two: re-simulate only the analytic Pareto band.
    objectives = parse_objectives(
        tuple(ctx.request.param("objectives", list(DEFAULT_OBJECTIVE_NAMES)))
    )
    frontiers = pareto_by_workload(records, objectives)
    band_records = [
        record
        for workload in sorted(frontiers)
        for record in frontiers[workload]
    ]
    if isinstance(compiled, AnalyticGridPlan):
        # Grid points carry no energy overrides, so the band points can be
        # reconstructed from their records directly.
        band_points = [
            DesignPoint(r.model, r.dataset, r.pruning_rate, r.overrides)
            for r in band_records
        ]
    else:
        point_by_key = {analytic_point_key(point): point for point in compiled}
        band_points = [point_by_key[record.key] for record in band_records]
    engine = _engine_for(ctx)
    result["resimulated"] = engine.run(band_points)
    result["resim_stats"] = engine.stats.describe()
    return result


def _simulate_stage(ctx: PipelineContext) -> dict[str, Any]:
    """``simulate`` — evaluate at the tier the request's fidelity asks for."""
    return fidelity_dispatch(
        ctx,
        vectorized=_simulate_vectorized,
        analytic=_simulate_analytic,
        scalar=_simulate_scalar,
    )


def _sweep_report_stage(ctx: PipelineContext) -> ExperimentReport:
    simulated = ctx["simulate"]
    records, stats = simulated["records"], simulated["stats"]
    # attrgetter keeps the 10^6-record sort off the Python bytecode path.
    ranked = sorted(records, key=operator.attrgetter("latency_us"))
    top = ctx.request.param("top", 16)
    summary = format_records_table(ranked, limit=top) + f"\n\n{stats}"
    max_records = int(ctx.request.param("max_records", DEFAULT_MAX_PAYLOAD_RECORDS))
    payload: dict[str, Any] = {
        "records": [record.to_dict() for record in ranked[:max_records]],
        "stats": stats,
    }
    if len(records) > max_records:
        payload["records_truncated"] = True
        payload["records_total"] = len(records)
    native: dict[str, Any] = {"records": records, "stats": stats}
    if "resimulated" in simulated:
        resimulated = simulated["resimulated"]
        resim_stats = simulated.get("resim_stats", "")
        payload["resimulated"] = [record.to_dict() for record in resimulated]
        payload["resim_stats"] = resim_stats
        native["resimulated"] = resimulated
        native["resim_stats"] = resim_stats
        summary += (
            f"\n\nre-simulated Pareto band ({len(resimulated)} points; {resim_stats}):\n"
            + format_records_table(
                sorted(resimulated, key=operator.attrgetter("latency_us")), limit=top
            )
        )
    return ExperimentReport(payload=payload, summary=summary, native=native)


def _pareto_report_stage(ctx: PipelineContext) -> ExperimentReport:
    simulated = ctx["simulate"]
    records, stats = simulated["records"], simulated["stats"]
    objectives = parse_objectives(
        tuple(ctx.request.param("objectives", list(DEFAULT_OBJECTIVE_NAMES)))
    )
    frontiers = pareto_by_workload(records, objectives)
    lines = [stats]
    for workload in sorted(frontiers):
        lines.append("")
        lines.append(f"[{workload}]")
        lines.append(format_frontier(frontiers[workload], objectives))
    payload = {
        "stats": stats,
        "frontiers": {
            workload: [record.to_dict() for record in frontier]
            for workload, frontier in frontiers.items()
        },
    }
    return ExperimentReport(
        payload=payload,
        summary="\n".join(lines),
        native={"records": records, "frontiers": frontiers, "stats": stats},
    )


@register_experiment(
    "sweep",
    description="Design-space sweep (PE count x buffer x pruning rate x workloads)",
    category="design-space",
    supports_fidelity=True,
)
def build_sweep_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "sweep",
        [
            Stage("compile", _compile_stage, "build the design-point grid"),
            Stage("simulate", _simulate_stage, "cached, parallel engine evaluation"),
            Stage("report", _sweep_report_stage, "latency-ranked records table"),
        ],
    )


@register_experiment(
    "pareto",
    description="Per-workload Pareto frontiers over a design-space sweep",
    category="design-space",
    supports_fidelity=True,
)
def build_pareto_pipeline(request: ExperimentRequest) -> Pipeline:
    # Fail on a bad objective list at build time, before any simulation runs.
    parse_objectives(tuple(request.param("objectives", list(DEFAULT_OBJECTIVE_NAMES))))
    return Pipeline(
        "pareto",
        [
            Stage("compile", _compile_stage, "build the design-point grid"),
            Stage("simulate", _simulate_stage, "cached, parallel engine evaluation"),
            Stage("report", _pareto_report_stage, "Pareto frontier extraction"),
        ],
    )


__all__ = [
    "DEFAULT_SWEEP_WORKLOADS",
    "DEFAULT_PES",
    "DEFAULT_BUFFERS",
    "DEFAULT_RATES",
    "build_pareto_pipeline",
    "build_sweep_pipeline",
]
