"""Registered ``sweep`` and ``pareto`` experiments over the exploration engine.

These wrap the design-space subsystem in the :mod:`repro.api` pipeline shape
(``compile -> simulate -> report``):

* ``compile`` builds the concrete :class:`DesignPoint` grid from the
  request's workloads and the ``pes`` / ``buffers`` / ``pruning_rates``
  parameters (optionally a seeded random subsample);
* ``simulate`` evaluates the points through :class:`ExplorationEngine` —
  deduplication, the persistent sweep cache resolved from the run options,
  and worker-pool fan-out through the shared Runner primitive;
* ``report`` renders the latency-ranked table (``sweep``) or per-workload
  Pareto frontiers (``pareto``).

``python -m repro sweep`` / ``pareto`` / ``run sweep`` all dispatch here.
"""

from __future__ import annotations

from typing import Any

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    Stage,
    register_experiment,
)
from repro.explore.engine import DesignPoint, ExplorationEngine, points_for
from repro.explore.pareto import parse_objectives, pareto_by_workload
from repro.explore.space import DesignSpace, grid_axis
from repro.explore.report import format_frontier, format_records_table

# Default sweep grid (kept in sync with the CLI's documented defaults).
DEFAULT_SWEEP_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("ResNet-18", "CIFAR-10"),
    ("VGG-16", "CIFAR-10"),
    ("MobileNetV1", "CIFAR-10"),
)
DEFAULT_PES: tuple[int, ...] = (84, 168, 336, 672)
DEFAULT_BUFFERS: tuple[int, ...] = (192, 386, 772)
DEFAULT_RATES: tuple[float, ...] = (0.5, 0.7, 0.9, 0.95)
DEFAULT_OBJECTIVE_NAMES: tuple[str, ...] = ("latency_us", "energy_uj", "area_mm2")


def _compile_stage(ctx: PipelineContext) -> list[DesignPoint]:
    """``compile`` — cross the parameter grid with the workload list."""
    request = ctx.request
    workloads = request.workloads or DEFAULT_SWEEP_WORKLOADS
    space = DesignSpace(
        axes=(
            grid_axis("num_pes", tuple(request.param("pes", list(DEFAULT_PES)))),
            grid_axis(
                "buffer_kib", tuple(request.param("buffers", list(DEFAULT_BUFFERS)))
            ),
            grid_axis(
                "pruning_rate",
                tuple(request.param("pruning_rates", list(DEFAULT_RATES))),
            ),
        )
    )
    return points_for(
        space,
        workloads,
        sample=request.param("sample"),
        seed=request.param("seed", 0),
    )


def _simulate_stage(ctx: PipelineContext) -> dict[str, Any]:
    """``simulate`` — evaluate through the cached, parallel engine."""
    options = ctx.options
    cache = ctx.extras.get("sweep_cache")
    if cache is None and "sweep_cache" not in ctx.extras:
        cache = options.sweep_cache()
    engine = ExplorationEngine(
        cache=cache,
        max_workers=options.max_workers,
        parallel=options.parallel,
    )
    records = engine.run(ctx["compile"])
    return {"records": records, "stats": engine.stats.describe()}


def _sweep_report_stage(ctx: PipelineContext) -> ExperimentReport:
    simulated = ctx["simulate"]
    records, stats = simulated["records"], simulated["stats"]
    ranked = sorted(records, key=lambda r: r.latency_us)
    top = ctx.request.param("top", 16)
    summary = format_records_table(ranked, limit=top) + f"\n\n{stats}"
    payload = {
        "records": [record.to_dict() for record in records],
        "stats": stats,
    }
    return ExperimentReport(
        payload=payload, summary=summary, native={"records": records, "stats": stats}
    )


def _pareto_report_stage(ctx: PipelineContext) -> ExperimentReport:
    simulated = ctx["simulate"]
    records, stats = simulated["records"], simulated["stats"]
    objectives = parse_objectives(
        tuple(ctx.request.param("objectives", list(DEFAULT_OBJECTIVE_NAMES)))
    )
    frontiers = pareto_by_workload(records, objectives)
    lines = [stats]
    for workload in sorted(frontiers):
        lines.append("")
        lines.append(f"[{workload}]")
        lines.append(format_frontier(frontiers[workload], objectives))
    payload = {
        "stats": stats,
        "frontiers": {
            workload: [record.to_dict() for record in frontier]
            for workload, frontier in frontiers.items()
        },
    }
    return ExperimentReport(
        payload=payload,
        summary="\n".join(lines),
        native={"records": records, "frontiers": frontiers, "stats": stats},
    )


@register_experiment(
    "sweep",
    description="Design-space sweep (PE count x buffer x pruning rate x workloads)",
)
def build_sweep_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "sweep",
        [
            Stage("compile", _compile_stage, "build the design-point grid"),
            Stage("simulate", _simulate_stage, "cached, parallel engine evaluation"),
            Stage("report", _sweep_report_stage, "latency-ranked records table"),
        ],
    )


@register_experiment(
    "pareto",
    description="Per-workload Pareto frontiers over a design-space sweep",
)
def build_pareto_pipeline(request: ExperimentRequest) -> Pipeline:
    # Fail on a bad objective list at build time, before any simulation runs.
    parse_objectives(tuple(request.param("objectives", list(DEFAULT_OBJECTIVE_NAMES))))
    return Pipeline(
        "pareto",
        [
            Stage("compile", _compile_stage, "build the design-point grid"),
            Stage("simulate", _simulate_stage, "cached, parallel engine evaluation"),
            Stage("report", _pareto_report_stage, "Pareto frontier extraction"),
        ],
    )


__all__ = [
    "DEFAULT_SWEEP_WORKLOADS",
    "DEFAULT_PES",
    "DEFAULT_BUFFERS",
    "DEFAULT_RATES",
    "build_pareto_pipeline",
    "build_sweep_pipeline",
]
