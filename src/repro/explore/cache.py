"""Persistent JSON-lines cache for design-space evaluation results.

Every evaluated point is appended to an on-disk JSON-lines file keyed by a
stable content hash of its full input description (architecture config dicts,
workload, density parameters, energy model).  Repeated sweeps — a re-run CLI
invocation, a CI benchmark, an enlarged grid sharing points with a previous
one — skip every point that was already simulated with identical inputs.

The format is append-only and human-greppable: one ``{"key": ..., "record":
...}`` object per line.  If the same key is appended twice (two processes
racing on the same file), the last line wins on reload, and both carry the
same payload by construction, so the race is benign.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Any, Iterator, Mapping, NamedTuple

from repro.obs import metrics

# Default cache location, relative to the working directory (gitignored).
DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_CACHE_FILE = "sweeps.jsonl"


def stable_key(payload: Mapping[str, Any]) -> str:
    """Deterministic content hash of a JSON-serialisable mapping."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheInfo(NamedTuple):
    """Lookup statistics of one :class:`ResultCache` instance.

    Mirrors the ``functools.lru_cache``/``im2col_cache_info`` idiom:
    ``hits``/``misses`` count :meth:`ResultCache.get` outcomes, ``corrupt``
    counts JSONL lines dropped at load time, ``entries`` is the live size.
    """

    hits: int
    misses: int
    corrupt: int
    entries: int


class ResultCache:
    """On-disk key -> record-dict store with an in-memory index.

    Every lookup is double-counted: locally (:meth:`cache_info`) and into the
    process-global metrics registry (``cache.hits`` / ``cache.misses`` /
    ``cache.corrupt_lines`` counters labelled by the cache file's stem, e.g.
    ``cache="densities"``), which is where the service's ``/stats`` hit rates
    come from.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            path = Path(DEFAULT_CACHE_DIR) / DEFAULT_CACHE_FILE
        self.path = Path(path)
        self._records: dict[str, dict[str, Any]] = {}
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        corrupt = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    self._records[entry["key"]] = entry["record"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A truncated line (interrupted writer) only loses that
                    # one entry; the point is simply re-simulated.
                    corrupt += 1
        if corrupt:
            self._corrupt = corrupt
            metrics().counter("cache.corrupt_lines", cache=self.path.stem).inc(corrupt)
            warnings.warn(
                f"result cache {self.path}: skipped {corrupt} corrupt/truncated "
                f"line(s) (torn write?); the affected entries will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> dict[str, Any] | None:
        """Cached record dict for ``key``, or ``None`` on a miss."""
        record = self._records.get(key)
        if record is not None:
            self._hits += 1
            metrics().counter("cache.hits", cache=self.path.stem).inc()
        else:
            self._misses += 1
            metrics().counter("cache.misses", cache=self.path.stem).inc()
        return record

    def cache_info(self) -> CacheInfo:
        """Hit/miss/corrupt-line statistics of this cache instance."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            corrupt=self._corrupt,
            entries=len(self._records),
        )

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Store a record, appending it to the on-disk file."""
        record = dict(record)
        if self._records.get(key) == record:
            return
        self._records[key] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": key, "record": record}) + "\n")

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        yield from self._records.items()

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        self._records.clear()
        if self.path.exists():
            self.path.unlink()
