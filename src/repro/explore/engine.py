"""Batched design-point evaluation: dedup, cache, process-pool fan-out.

The engine turns ``(architecture overrides, pruning rate, workload)`` points
into latency/energy/area records by running the layer-level simulator on both
the SparseTrain and the dense-baseline configuration.  Around that single
evaluation it layers the machinery a survey-scale sweep needs:

* **deduplication** — identical points (same content hash) are evaluated once
  per run no matter how often they appear in the input;
* **persistent caching** — points found in a :class:`ResultCache` are never
  re-simulated, so a repeated sweep costs only file I/O;
* **parallel execution** — cache misses fan out over a
  ``ProcessPoolExecutor``; a serial fallback keeps tests deterministic and
  covers sandboxes where spawning processes is forbidden;
* **streaming** — :meth:`ExplorationEngine.run_iter` yields records as they
  complete so callers can report progress on long sweeps.

``evaluate_point`` is a module-level function of one picklable argument — the
unit of work shipped to worker processes, and the single seam tests
monkeypatch to prove a cached pass performs zero simulator calls.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Any, Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.api.runner import Runner

from repro.arch.area import estimate_area
from repro.arch.config import ArchConfig, dense_baseline_config, sparsetrain_config
from repro.arch.energy import EnergyModel
from repro.dataflow.compiler import uniform_densities
from repro.dataflow.counts import LayerDensities
from repro.explore.cache import ResultCache, stable_key
from repro.explore.space import ARCH_AXES, DesignSpace
from repro.models.spec import ModelSpec
from repro.models.zoo import get_model_spec, normalize_dataset_name, normalize_model_name
from repro.pruning.threshold import expected_density_after_pruning
from repro.sim.runner import compare_workload

# Analytic density-model constants (the ablation studies' assumptions): ReLU
# activations are ~45% dense, the natural (pre-pruning) gradient density is
# ~35%, and the propagated gradient keeps roughly twice the pruned density.
NATURAL_ACTIVATION_DENSITY = 0.45
NATURAL_GRADIENT_DENSITY = 0.35


def analytic_densities(
    spec: ModelSpec,
    pruning_rate: float,
    natural_grad_density: float = NATURAL_GRADIENT_DENSITY,
    activation_density: float = NATURAL_ACTIVATION_DENSITY,
) -> dict[str, LayerDensities]:
    """Closed-form density map for sweep studies (no training required).

    Uses the expected post-pruning density of normal gradients
    (:func:`expected_density_after_pruning`) so the pruning rate can be swept
    without re-training reduced models for every point.
    """
    grad_density = expected_density_after_pruning(pruning_rate, natural_grad_density)
    return uniform_densities(
        spec,
        input_density=activation_density,
        grad_output_density=grad_density,
        mask_density=activation_density,
        grad_input_density=min(1.0, grad_density * 2.0),
        output_density=activation_density,
    )


# Design grids repeat the same handful of architecture overrides across
# thousands of pruning-rate points, so config construction (frozen-dataclass
# replace + validation) and the to_dict expansion hashed into cache keys are
# memoized on the canonical override tuples.  All cached values are frozen
# dataclasses or read-only payload dicts shared across points.


@lru_cache(maxsize=65536)
def _configs_for(
    overrides: tuple[tuple[str, Any], ...],
) -> tuple[ArchConfig, ArchConfig]:
    changes = dict(overrides)
    return (
        sparsetrain_config().evolve(**changes),
        dense_baseline_config().evolve(**changes),
    )


@lru_cache(maxsize=65536)
def _energy_model_for(
    energy_overrides: tuple[tuple[str, float], ...],
) -> EnergyModel:
    return EnergyModel().with_overrides(**dict(energy_overrides))


@lru_cache(maxsize=65536)
def _config_payloads(
    overrides: tuple[tuple[str, Any], ...],
) -> tuple[dict[str, Any], dict[str, Any]]:
    sparse, baseline = _configs_for(overrides)
    return sparse.to_dict(), baseline.to_dict()


@lru_cache(maxsize=65536)
def _energy_payload(
    energy_overrides: tuple[tuple[str, float], ...],
) -> dict[str, Any]:
    return asdict(_energy_model_for(energy_overrides))


@dataclass(frozen=True)
class DesignPoint:
    """One (architecture, pruning rate, workload) evaluation request.

    ``overrides`` apply to *both* configurations (matched resources, the
    paper's iso-comparison discipline); ``energy_overrides`` replace
    :class:`EnergyModel` constants.  Both are stored as sorted tuples so the
    point is hashable, picklable and has a canonical JSON form.
    """

    model: str
    dataset: str
    pruning_rate: float = 0.9
    overrides: tuple[tuple[str, Any], ...] = ()
    energy_overrides: tuple[tuple[str, float], ...] = ()

    @classmethod
    def from_assignment(
        cls,
        model: str,
        dataset: str,
        assignment: Mapping[str, Any],
        energy_overrides: Mapping[str, float] | None = None,
    ) -> "DesignPoint":
        """Build a point from a :class:`DesignSpace` axis assignment."""
        arch = {k: v for k, v in assignment.items() if k in ARCH_AXES}
        extra = set(assignment) - set(arch) - {"pruning_rate"}
        if extra:
            raise ValueError(f"unknown assignment key(s) {sorted(extra)}")
        point = cls(
            model=normalize_model_name(model),
            dataset=normalize_dataset_name(dataset),
            pruning_rate=float(assignment.get("pruning_rate", 0.9)),
            overrides=tuple(sorted(arch.items())),
            energy_overrides=tuple(sorted((energy_overrides or {}).items())),
        )
        # Fail at construction time (in the driver) rather than inside a
        # worker: invalid combinations such as a PE count that is not a
        # multiple of the group size raise here.
        point.sparse_config()
        return point

    def sparse_config(self) -> ArchConfig:
        return _configs_for(self.overrides)[0]

    def baseline_config(self) -> ArchConfig:
        return _configs_for(self.overrides)[1]

    def energy_model(self) -> EnergyModel:
        return _energy_model_for(self.energy_overrides)

    @property
    def workload(self) -> str:
        return f"{self.model}/{self.dataset}"

    def key_payload(self) -> dict[str, Any]:
        """Full input description hashed into the cache key."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "pruning_rate": self.pruning_rate,
            "densities": {
                "kind": "analytic",
                "natural_grad_density": NATURAL_GRADIENT_DENSITY,
                "activation_density": NATURAL_ACTIVATION_DENSITY,
            },
            "sparse_config": dict(_config_payloads(self.overrides)[0]),
            "baseline_config": dict(_config_payloads(self.overrides)[1]),
            "energy_model": dict(_energy_payload(self.energy_overrides)),
        }

    @property
    def key(self) -> str:
        return stable_key(self.key_payload())


class EvaluationRecord(NamedTuple):
    """Objectives and diagnostics of one evaluated design point.

    A ``NamedTuple`` rather than a frozen dataclass: the analytic tier
    materializes one of these per grid cell, and ``tuple.__new__`` builds
    10^5 records ~3x faster than a frozen dataclass ``__init__`` (which
    pays one ``object.__setattr__`` call per field).
    """

    key: str
    model: str
    dataset: str
    pruning_rate: float
    overrides: tuple[tuple[str, Any], ...]
    num_pes: int
    buffer_kib: int
    latency_us: float
    energy_uj: float
    area_mm2: float
    baseline_latency_us: float
    baseline_energy_uj: float
    speedup: float
    energy_efficiency: float

    @property
    def workload(self) -> str:
        return f"{self.model}/{self.dataset}"

    def to_dict(self) -> dict[str, Any]:
        # Spelled out (not a __dataclass_fields__ loop): serializing the
        # capped payload of a 10^5-point sweep calls this 10^4 times.
        return {
            "key": self.key,
            "model": self.model,
            "dataset": self.dataset,
            "pruning_rate": self.pruning_rate,
            "overrides": dict(self.overrides),
            "num_pes": self.num_pes,
            "buffer_kib": self.buffer_kib,
            "latency_us": self.latency_us,
            "energy_uj": self.energy_uj,
            "area_mm2": self.area_mm2,
            "baseline_latency_us": self.baseline_latency_us,
            "baseline_energy_uj": self.baseline_energy_uj,
            "speedup": self.speedup,
            "energy_efficiency": self.energy_efficiency,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationRecord":
        kwargs = {name: data[name] for name in cls._fields}
        kwargs["overrides"] = tuple(sorted(dict(data["overrides"]).items()))
        return cls(**kwargs)


def evaluate_point(point: DesignPoint) -> EvaluationRecord:
    """Simulate one design point (the process-pool work unit)."""
    spec = get_model_spec(point.model, point.dataset)
    densities = analytic_densities(spec, point.pruning_rate)
    sparse_config = point.sparse_config()
    result = compare_workload(
        spec,
        densities,
        sparse_config=sparse_config,
        baseline_config=point.baseline_config(),
        energy_model=point.energy_model(),
    )
    area = estimate_area(sparse_config)
    # Built-in floats throughout: numpy scalars repr differently, which would
    # break the exact CSV round-trip of the report module.
    return EvaluationRecord(
        key=point.key,
        model=point.model,
        dataset=point.dataset,
        pruning_rate=float(point.pruning_rate),
        overrides=point.overrides,
        num_pes=sparse_config.num_pes,
        buffer_kib=sparse_config.buffer_kib,
        latency_us=float(result.comparison.sparsetrain.latency_us),
        energy_uj=float(result.comparison.sparsetrain.energy_uj),
        area_mm2=float(area.total_mm2),
        baseline_latency_us=float(result.comparison.baseline.latency_us),
        baseline_energy_uj=float(result.comparison.baseline.energy_uj),
        speedup=float(result.speedup),
        energy_efficiency=float(result.energy_efficiency),
    )


def points_for(
    space: DesignSpace,
    workloads: Sequence[tuple[str, str]],
    sample: int | None = None,
    seed: int = 0,
) -> list[DesignPoint]:
    """Cross a design space with a workload list into concrete points."""
    assignments = space.sample(sample, seed) if sample is not None else list(space.points())
    # The axis split is a property of the space, not of any one assignment:
    # resolve it once, then build each point's override tuple directly.  The
    # same prepared list is crossed with every workload, and per-assignment
    # dict filtering/sorting/validation would dominate million-point compiles.
    axis_names = {axis.name for axis in space.axes}
    extra = axis_names - set(ARCH_AXES) - {"pruning_rate"}
    if extra:
        raise ValueError(f"unknown assignment key(s) {sorted(extra)}")
    arch_keys = sorted(axis_names & set(ARCH_AXES))
    prepared: list[tuple[float, tuple[tuple[str, Any], ...]]] = []
    for assignment in assignments:
        overrides = tuple((key, assignment[key]) for key in arch_keys)
        # Invalid combinations (e.g. a PE count that is not a multiple of
        # the group size) raise here in the driver, once per unique combo.
        _configs_for(overrides)
        prepared.append((float(assignment.get("pruning_rate", 0.9)), overrides))
    return [
        DesignPoint(model, dataset, rate, overrides)
        for model, dataset in (
            (normalize_model_name(m), normalize_dataset_name(d))
            for m, d in workloads
        )
        for rate, overrides in prepared
    ]


@dataclass
class EngineStats:
    """Bookkeeping of one :meth:`ExplorationEngine.run` call."""

    requested: int = 0
    unique: int = 0
    cache_hits: int = 0
    evaluated: int = 0

    @property
    def deduplicated(self) -> int:
        return self.requested - self.unique

    def describe(self) -> str:
        return (
            f"{self.requested} points ({self.deduplicated} duplicate), "
            f"{self.cache_hits} cached, {self.evaluated} simulated"
        )


class ExplorationEngine:
    """Evaluate batches of design points with dedup, caching and parallelism.

    Parameters
    ----------
    cache:
        Persistent result store; ``None`` disables caching (every unique
        point is simulated every run).
    max_workers:
        Worker-process count for cache misses.  ``None`` lets
        ``ProcessPoolExecutor`` pick; ``0``/``1`` (or ``parallel=False``)
        selects the in-process serial path.
    parallel:
        Master switch for the process pool; the serial fallback is also used
        automatically when a pool cannot be created (sandboxed interpreters).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        max_workers: int | None = None,
        parallel: bool = True,
    ) -> None:
        self.cache = cache
        self.max_workers = max_workers
        self.parallel = parallel and (max_workers is None or max_workers > 1)
        self.stats = EngineStats()
        self._last_order: list[str] = []

    def run(self, points: Iterable[DesignPoint]) -> list[EvaluationRecord]:
        """Evaluate ``points``, returning one record per unique point.

        Records come back in first-seen input order regardless of the
        completion order of the worker processes.
        """
        records = {record.key: record for record in self.run_iter(points)}
        return [records[key] for key in self._last_order]

    def run_iter(self, points: Iterable[DesignPoint]) -> Iterator[EvaluationRecord]:
        """Stream records as they become available (cache hits first)."""
        stats = EngineStats()
        unique: dict[str, DesignPoint] = {}
        for point in points:
            stats.requested += 1
            unique.setdefault(point.key, point)
        stats.unique = len(unique)
        self._last_order = list(unique)
        self.stats = stats

        misses: list[DesignPoint] = []
        for key, point in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                stats.cache_hits += 1
                yield EvaluationRecord.from_dict(cached)
            else:
                misses.append(point)

        for record in self._execute(misses):
            stats.evaluated += 1
            if self.cache is not None:
                self.cache.put(record.key, record.to_dict())
            yield record

    def _execute(self, misses: list[DesignPoint]) -> Iterator[EvaluationRecord]:
        # The shared Runner primitive owns the pool, chunk sizing and the
        # serial fallback; ``evaluate_point`` is resolved through the module
        # global so tests can monkeypatch it to prove a cached pass performs
        # zero simulator calls.
        runner = Runner(max_workers=self.max_workers, parallel=self.parallel)
        yield from runner.imap(evaluate_point, misses)
