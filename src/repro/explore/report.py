"""Export and text reporting for design-space sweep results.

Records round-trip losslessly through both formats: JSON keeps native types,
CSV stores the architecture overrides as an embedded JSON cell (Python float
``repr`` round-trips exactly, so re-reading a CSV reproduces the records
bit-for-bit).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.explore.engine import EvaluationRecord
from repro.explore.pareto import DEFAULT_OBJECTIVES, Objective

CSV_FIELDS: tuple[str, ...] = (
    "key",
    "model",
    "dataset",
    "pruning_rate",
    "overrides",
    "num_pes",
    "buffer_kib",
    "latency_us",
    "energy_uj",
    "area_mm2",
    "baseline_latency_us",
    "baseline_energy_uj",
    "speedup",
    "energy_efficiency",
)

_INT_FIELDS = ("num_pes", "buffer_kib")
_FLOAT_FIELDS = (
    "pruning_rate",
    "latency_us",
    "energy_uj",
    "area_mm2",
    "baseline_latency_us",
    "baseline_energy_uj",
    "speedup",
    "energy_efficiency",
)


def write_json(records: Sequence[EvaluationRecord], path: str | Path) -> None:
    """Write records as a JSON document (``{"count": n, "records": [...]}``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"count": len(records), "records": [r.to_dict() for r in records]}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def read_json(path: str | Path) -> list[EvaluationRecord]:
    """Read records written by :func:`write_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return [EvaluationRecord.from_dict(entry) for entry in payload["records"]]


def write_csv(records: Sequence[EvaluationRecord], path: str | Path) -> None:
    """Write records as CSV (one row per record, header included)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for record in records:
            row = record.to_dict()
            row["overrides"] = json.dumps(row["overrides"], sort_keys=True)
            for name in _FLOAT_FIELDS:
                row[name] = repr(getattr(record, name))
            writer.writerow(row)


def read_csv(path: str | Path) -> list[EvaluationRecord]:
    """Read records written by :func:`write_csv`."""
    records: list[EvaluationRecord] = []
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            data: dict = dict(row)
            data["overrides"] = json.loads(row["overrides"])
            for name in _INT_FIELDS:
                data[name] = int(row[name])
            for name in _FLOAT_FIELDS:
                data[name] = float(row[name])
            records.append(EvaluationRecord.from_dict(data))
    return records


def export_records(records: Sequence[EvaluationRecord], path: str | Path) -> None:
    """Write records in the format implied by the file suffix (.csv/.json)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        write_csv(records, path)
    elif suffix == ".json":
        write_json(records, path)
    else:
        raise ValueError(f"unsupported export suffix {suffix!r}; use .csv or .json")


def load_records(path: str | Path) -> list[EvaluationRecord]:
    """Read records in the format implied by the file suffix (.csv/.json)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return read_csv(path)
    if suffix == ".json":
        return read_json(path)
    raise ValueError(f"unsupported import suffix {suffix!r}; use .csv or .json")


def format_records_table(
    records: Sequence[EvaluationRecord],
    limit: int | None = None,
) -> str:
    """Human-readable sweep table, sorted as given."""
    header = (
        f"{'Workload':<22}{'PEs':>6}{'KiB':>6}{'p':>6}"
        f"{'Lat us':>10}{'uJ':>10}{'mm2':>8}{'Spdup':>8}{'Effic':>8}"
    )
    lines = [header, "-" * len(header)]
    shown = records if limit is None else records[:limit]
    for record in shown:
        lines.append(
            f"{record.workload:<22}{record.num_pes:>6}{record.buffer_kib:>6}"
            f"{record.pruning_rate:>6.2f}"
            f"{record.latency_us:>10.1f}{record.energy_uj:>10.1f}"
            f"{record.area_mm2:>8.2f}{record.speedup:>7.2f}x"
            f"{record.energy_efficiency:>7.2f}x"
        )
    if limit is not None and len(records) > limit:
        lines.append(f"... ({len(records) - limit} more)")
    return "\n".join(lines)


def format_frontier(
    records: Sequence[EvaluationRecord],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> str:
    """Frontier table headed by the objective set it was extracted under."""
    directions = ", ".join(
        f"{'max' if objective.maximize else 'min'} {objective.name}"
        for objective in objectives
    )
    title = f"Pareto frontier ({len(records)} points; {directions})"
    return "\n".join([title, format_records_table(records)])
