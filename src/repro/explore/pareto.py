"""Pareto-frontier extraction and best-point queries over sweep records.

The sweep objectives are per-sample training latency, per-sample energy and
silicon area — three quantities that pull a design in different directions
(more PEs buy latency with area; a bigger buffer buys DRAM energy with SRAM
area).  A point is *dominated* when some other point is at least as good on
every objective and strictly better on one; the frontier is the set of
non-dominated points, the only designs a rational architect would build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.explore.engine import EvaluationRecord


@dataclass(frozen=True)
class Objective:
    """One optimisation objective: a record attribute and a direction."""

    name: str
    maximize: bool = False

    def value(self, record: EvaluationRecord) -> float:
        """Objective value in canonical minimising form."""
        raw = float(getattr(record, self.name))
        return -raw if self.maximize else raw


# Minimised by default: the latency/energy/area trade-off surface.
DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective("latency_us"),
    Objective("energy_uj"),
    Objective("area_mm2"),
)

# Attributes accepted by :func:`parse_objectives` with their natural direction.
_KNOWN_OBJECTIVES = {
    "latency_us": False,
    "energy_uj": False,
    "area_mm2": False,
    "baseline_latency_us": False,
    "baseline_energy_uj": False,
    "speedup": True,
    "energy_efficiency": True,
}


def parse_objectives(names: Sequence[str]) -> tuple[Objective, ...]:
    """Parse CLI objective specs (``"latency_us"``, ``"speedup:max"``, ...)."""
    objectives: list[Objective] = []
    for raw in names:
        name, _, direction = raw.partition(":")
        name = name.strip()
        if name not in _KNOWN_OBJECTIVES:
            raise ValueError(
                f"unknown objective {name!r}; choose from {sorted(_KNOWN_OBJECTIVES)}"
            )
        if direction and direction not in ("min", "max"):
            raise ValueError(f"objective direction must be min or max, got {direction!r}")
        maximize = direction == "max" if direction else _KNOWN_OBJECTIVES[name]
        objectives.append(Objective(name, maximize=maximize))
    if not objectives:
        raise ValueError("at least one objective is required")
    return tuple(objectives)


def dominates(
    a: EvaluationRecord,
    b: EvaluationRecord,
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> bool:
    """Whether ``a`` is at least as good as ``b`` everywhere and better somewhere."""
    strictly_better = False
    for objective in objectives:
        va, vb = objective.value(a), objective.value(b)
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_frontier(
    records: Sequence[EvaluationRecord],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> list[EvaluationRecord]:
    """Non-dominated subset of ``records``, in input order.

    Of several records with identical objective vectors, only the first is
    kept.  O(n^2) pairwise dominance — fine at sweep scales (thousands of
    points); swap in a divide-and-conquer skyline if sweeps grow far beyond
    that.
    """
    frontier: list[EvaluationRecord] = []
    seen_vectors: set[tuple[float, ...]] = set()
    for candidate in records:
        vector = tuple(objective.value(candidate) for objective in objectives)
        if vector in seen_vectors:
            continue
        if any(dominates(other, candidate, objectives) for other in records):
            continue
        seen_vectors.add(vector)
        frontier.append(candidate)
    return frontier


def pareto_by_workload(
    records: Sequence[EvaluationRecord],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> dict[str, list[EvaluationRecord]]:
    """Per-workload frontiers (workload -> non-dominated records).

    Dominance across different workloads is not meaningful — an AlexNet point
    "dominating" a ResNet point says nothing about the architecture — so the
    CLI and reports extract one frontier per (model, dataset) group.
    """
    groups: dict[str, list[EvaluationRecord]] = {}
    for record in records:
        groups.setdefault(record.workload, []).append(record)
    return {
        workload: pareto_frontier(group, objectives)
        for workload, group in groups.items()
    }


def best_point(
    records: Sequence[EvaluationRecord],
    objective: Objective | str,
) -> EvaluationRecord:
    """The single best record under one objective (ties: first in input)."""
    if isinstance(objective, str):
        (objective,) = parse_objectives([objective])
    if not records:
        raise ValueError("no records to select from")
    return min(records, key=objective.value)
