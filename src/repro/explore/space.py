"""Declarative parameter spaces over architecture and pruning knobs.

A design space is a set of named axes; every axis sweeps either an
:class:`~repro.arch.config.ArchConfig` field (``num_pes``, ``buffer_kib``,
``pe_utilization``, ...) or one of the sweep-level knobs the evaluation engine
understands (currently ``pruning_rate``).  Axes can be explicit grids,
log-spaced ranges or seeded random samples; the space enumerates their
Cartesian product as plain ``{axis name: value}`` assignments, which
:class:`~repro.explore.engine.DesignPoint` turns into simulator inputs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, fields
from typing import Any, Iterator, Sequence

from repro.arch.config import ArchConfig
from repro.utils.rng import new_rng

# ArchConfig fields an axis may sweep (everything except the display name).
ARCH_AXES = frozenset(f.name for f in fields(ArchConfig)) - {"name"}

# Sweep-level knobs handled by the engine rather than the config.
SPECIAL_AXES = frozenset({"pruning_rate"})

VALID_AXES = ARCH_AXES | SPECIAL_AXES


@dataclass(frozen=True)
class Axis:
    """One named sweep dimension with an explicit, ordered value tuple."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if self.name not in VALID_AXES:
            raise ValueError(
                f"unknown axis {self.name!r}; valid axes: {sorted(VALID_AXES)}"
            )
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")


def grid_axis(name: str, values: Sequence[Any]) -> Axis:
    """Axis over an explicit list of values."""
    return Axis(name, tuple(values))


def log_axis(
    name: str,
    low: float,
    high: float,
    num: int,
    integer: bool = False,
    multiple_of: int = 1,
) -> Axis:
    """Axis of ``num`` log-spaced values in ``[low, high]``.

    ``integer`` rounds every value (deduplicating afterwards);
    ``multiple_of`` additionally snaps to a multiple — e.g. PE counts must be
    a multiple of ``pes_per_group``.
    """
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    if low <= 0 or high <= 0:
        raise ValueError("log_axis bounds must be positive")
    if low > high:
        raise ValueError(f"low ({low}) must be <= high ({high})")
    if num == 1:
        raw = [math.sqrt(low * high)]
    else:
        step = (math.log(high) - math.log(low)) / (num - 1)
        raw = [math.exp(math.log(low) + i * step) for i in range(num)]
    return Axis(name, _snap(raw, integer, multiple_of))


def random_axis(
    name: str,
    low: float,
    high: float,
    num: int,
    seed: int = 0,
    integer: bool = False,
    multiple_of: int = 1,
) -> Axis:
    """Axis of ``num`` seeded uniform random values in ``[low, high]``."""
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    if low > high:
        raise ValueError(f"low ({low}) must be <= high ({high})")
    rng = new_rng(seed)
    raw = sorted(float(v) for v in rng.uniform(low, high, size=num))
    return Axis(name, _snap(raw, integer, multiple_of))


def _snap(raw: Sequence[float], integer: bool, multiple_of: int) -> tuple[Any, ...]:
    if not integer and multiple_of == 1:
        return tuple(raw)
    values: list[Any] = []
    for value in raw:
        snapped = max(multiple_of, round(value / multiple_of) * multiple_of)
        values.append(int(snapped) if integer or multiple_of > 1 else snapped)
    # Rounding can collapse neighbours; keep first occurrences in order.
    return tuple(dict.fromkeys(values))


@dataclass(frozen=True)
class DesignSpace:
    """Cartesian product of axes, enumerated as assignment dicts."""

    axes: tuple[Axis, ...]

    def __post_init__(self) -> None:
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")

    @property
    def size(self) -> int:
        """Number of points in the full grid."""
        result = 1
        for axis in self.axes:
            result *= len(axis.values)
        return result

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(f"no axis named {name!r}")

    def points(self) -> Iterator[dict[str, Any]]:
        """Enumerate the full grid in deterministic (row-major) order."""
        names = [axis.name for axis in self.axes]
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            yield dict(zip(names, combo))

    def sample(self, num: int, seed: int = 0) -> list[dict[str, Any]]:
        """Seeded random subset of the grid (without replacement)."""
        if num < 0:
            raise ValueError(f"num must be non-negative, got {num}")
        all_points = list(self.points())
        if num >= len(all_points):
            return all_points
        rng = new_rng(seed)
        indices = sorted(rng.choice(len(all_points), size=num, replace=False))
        return [all_points[int(i)] for i in indices]


def paper_neighborhood_space(
    pe_counts: Sequence[int] = (84, 168, 336, 672),
    buffer_kibs: Sequence[int] = (192, 386, 772),
    pruning_rates: Sequence[float] = (0.5, 0.7, 0.9, 0.95),
) -> DesignSpace:
    """The default 48-point grid around the paper's design point.

    Sweeps the PE array (0.5x-4x of the paper's 168), the global buffer
    (0.5x-2x of 386 KB) and the target pruning rate — the three knobs the
    paper's own evaluation varies one at a time.
    """
    return DesignSpace(
        axes=(
            grid_axis("num_pes", pe_counts),
            grid_axis("buffer_kib", buffer_kibs),
            grid_axis("pruning_rate", pruning_rates),
        )
    )
