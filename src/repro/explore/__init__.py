"""Design-space exploration: declarative sweeps over the simulator.

The subsystem turns the pure-function simulator (``ArchConfig`` x workload x
densities x ``EnergyModel`` -> latency/energy/area) into a survey-scale tool:

* :mod:`repro.explore.space` — declarative parameter spaces (grids,
  log-ranges, seeded random samples) over architecture and pruning knobs;
* :mod:`repro.explore.engine` — batched evaluation with deduplication,
  process-pool parallelism and streaming;
* :mod:`repro.explore.cache` — persistent JSON-lines result cache keyed by a
  stable content hash, so repeated sweeps cost file I/O only;
* :mod:`repro.explore.pareto` — Pareto-frontier extraction and best-point
  queries over latency/energy/area (or speedup/efficiency) objectives;
* :mod:`repro.explore.report` — CSV/JSON export and text tables.

``python -m repro sweep`` / ``python -m repro pareto`` drive all of it from
the command line (see :mod:`repro.cli`).
"""

from repro.explore.cache import DEFAULT_CACHE_DIR, ResultCache, stable_key
from repro.explore.engine import (
    DesignPoint,
    EngineStats,
    EvaluationRecord,
    ExplorationEngine,
    analytic_densities,
    evaluate_point,
    points_for,
)
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    best_point,
    dominates,
    pareto_by_workload,
    pareto_frontier,
    parse_objectives,
)
from repro.explore.report import (
    export_records,
    format_frontier,
    format_records_table,
    load_records,
    read_csv,
    read_json,
    write_csv,
    write_json,
)
from repro.explore.space import (
    Axis,
    DesignSpace,
    grid_axis,
    log_axis,
    paper_neighborhood_space,
    random_axis,
)

__all__ = [
    "Axis",
    "DesignSpace",
    "grid_axis",
    "log_axis",
    "random_axis",
    "paper_neighborhood_space",
    "DesignPoint",
    "EvaluationRecord",
    "ExplorationEngine",
    "EngineStats",
    "analytic_densities",
    "evaluate_point",
    "points_for",
    "ResultCache",
    "stable_key",
    "DEFAULT_CACHE_DIR",
    "Objective",
    "DEFAULT_OBJECTIVES",
    "parse_objectives",
    "dominates",
    "pareto_frontier",
    "pareto_by_workload",
    "best_point",
    "export_records",
    "load_records",
    "read_csv",
    "read_json",
    "write_csv",
    "write_json",
    "format_records_table",
    "format_frontier",
]
