"""``python -m repro bench`` — the staged performance benchmark.

Times the stages of the evaluation pipeline — reduced-model *training*
(density measurement), program *compilation*, workload *simulation* and the
row-operation *validation* path — and writes the measurements to
``BENCH_repro.json``, seeding the repository's performance trajectory.

The row-op validation stage doubles as the equivalence benchmark for the
vectorized execution engine: it decomposes one convolution layer into its
full SRC/MSRC/OSRC operation set, executes it on both PE backends, asserts
bit-identical values and event counts, and reports the scalar/vector speedup
(the acceptance bar is >= 10x).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    RunOptions,
    Stage,
    get_experiment,
    register_experiment,
)
from repro.arch.pe import execute_ops, execute_ops_arrays, stats_from_arrays
from repro.dataflow.compiler import compile_training_iteration
from repro.dataflow.decompose import (
    accumulate_forward,
    accumulate_gta,
    accumulate_gtw,
    decompose_forward,
    decompose_gta,
    decompose_gtw,
)
from repro.dataflow.reference import forward_by_rows, gta_by_rows, gtw_by_rows
from repro.eval.common import ExperimentScale
from repro.eval.fig8 import densities_for_workload, train_stage
from repro.explore.cache import ResultCache
from repro.models.spec import ConvLayerSpec, ConvStructure
from repro.models.zoo import get_model_spec
from repro.sim.runner import WorkloadJob, _run_job

DEFAULT_BENCH_PATH = "BENCH_repro.json"

# The workload every bench run times (small enough to train in seconds,
# representative of the Conv-ReLU family the paper leads with).
BENCH_WORKLOAD: tuple[tuple[str, str], ...] = (("AlexNet", "CIFAR-10"),)

# Scales: ``--smoke`` finishes in well under a minute on CI; the default run
# matches the quick experiment scale used by the benchmark suite.
SMOKE_SCALE = ExperimentScale.smoke()
FULL_SCALE = ExperimentScale.quick()


def _rowop_layer(smoke: bool) -> ConvLayerSpec:
    """The convolution layer the row-op validation stage decomposes.

    The full-scale layer exercises the large-kernel geometry class of the
    paper's workloads (AlexNet's 5x5/11x11 convolutions, ResNet's 7x7 stem)
    at reduced channel counts and unit stride — the densest row-pairing
    pattern — so the scalar reference pass stays affordable while every
    operand still pairs with K kernel taps.
    """
    if smoke:
        return ConvLayerSpec(
            name="bench_conv_smoke",
            in_channels=4,
            out_channels=8,
            kernel=3,
            stride=1,
            padding=1,
            in_height=12,
            in_width=12,
            structure=ConvStructure.CONV_RELU,
        )
    return ConvLayerSpec(
        name="bench_conv",
        in_channels=6,
        out_channels=12,
        kernel=7,
        stride=1,
        padding=3,
        in_height=24,
        in_width=24,
        structure=ConvStructure.CONV_RELU,
    )


@dataclass
class BenchResult:
    """All stage timings of one ``repro bench`` run."""

    smoke: bool
    stages: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def rowop_speedup(self) -> float:
        return float(self.stages["rowop_validate"]["speedup"])

    def stage_quantiles(self) -> dict[str, dict[str, Any]]:
        """Per-stage p50/p95 from the process-global metrics registry.

        The telemetry snapshot recorded alongside the raw timings: within one
        ``repro bench`` process the ``pipeline.stage.seconds`` histograms
        cover exactly this run's stages.
        """
        from repro.obs import metrics

        quantiles: dict[str, dict[str, Any]] = {}
        for entry in metrics().snapshot().get("pipeline.stage.seconds", ()):
            stage = entry["labels"].get("stage", "?")
            quantiles[stage] = {
                "count": entry["count"],
                "p50": entry["p50"],
                "p95": entry["p95"],
            }
        return quantiles

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "bench": "repro",
            "smoke": self.smoke,
            "workload": "/".join(BENCH_WORKLOAD[0]),
            "created_unix": time.time(),
            "stages": self.stages,
            "metrics": {"stage_seconds": self.stage_quantiles()},
            "rowop_speedup": self.rowop_speedup,
        }

    def format(self) -> str:
        lines = [f"{'stage':<16} {'seconds':>10}  notes"]
        for name, stage in self.stages.items():
            notes = ", ".join(
                f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
                for key, value in stage.items()
                if key != "seconds"
            )
            lines.append(f"{name:<16} {stage['seconds']:>10.3f}  {notes}")
        lines.append(f"row-op scalar/vector speedup: {self.rowop_speedup:.1f}x")
        return "\n".join(lines)


def _bench_rowops(smoke: bool, seed: int = 7) -> dict[str, Any]:
    """Time and cross-validate both PE backends on one decomposed layer."""
    layer = _rowop_layer(smoke)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
    x *= rng.random(x.shape) < 0.5
    weight = rng.normal(
        size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel)
    )
    grad_out = rng.normal(size=(layer.out_channels, layer.out_height, layer.out_width))
    grad_out *= rng.random(grad_out.shape) < 0.3
    mask = rng.random((layer.in_channels, layer.in_height, layer.in_width)) < 0.5

    ops = (
        decompose_forward(layer, x, weight)
        + decompose_gta(layer, grad_out, weight, mask)
        + decompose_gtw(layer, grad_out, x)
    )

    # Untimed warm-up so the timed vector passes do not pay one-off numpy
    # setup, page-fault and allocator costs.
    execute_ops_arrays(ops, backend="vector")

    # Validate both PE modes: the sparse (zero-skipping) dataflow and the
    # dense-baseline PE that the paper's comparison also simulates.  The
    # vector pass is cheap enough to repeat, so its time is the best of two
    # runs (standard noise suppression); the scalar pass runs once.
    scalar_seconds = 0.0
    vector_seconds = 0.0
    vector_results = None
    for zero_skipping in (True, False):
        start = time.perf_counter()
        scalar_results, scalar_stats = execute_ops(
            ops, zero_skipping=zero_skipping, backend="scalar"
        )
        scalar_seconds += time.perf_counter() - start

        mode_seconds = []
        for _ in range(2):
            start = time.perf_counter()
            mode_results, vector_arrays = execute_ops_arrays(
                ops, zero_skipping=zero_skipping, backend="vector"
            )
            mode_seconds.append(time.perf_counter() - start)
        vector_seconds += min(mode_seconds)

        # Hard equivalence gate: values and every per-op event count must be
        # bit-identical between the backends.
        for index, (scalar_row, vector_row) in enumerate(
            zip(scalar_results, mode_results)
        ):
            if not np.array_equal(scalar_row, vector_row):
                raise AssertionError(
                    f"row-op {index} (zero_skipping={zero_skipping}): "
                    "scalar/vector values differ"
                )
        if scalar_stats != stats_from_arrays(vector_arrays):
            raise AssertionError(
                f"row-op stats differ between backends (zero_skipping={zero_skipping})"
            )
        if zero_skipping:
            vector_results = mode_results

    # And the decomposition itself stays exact against the row-wise reference.
    n_fwd = layer.out_channels * layer.out_height * layer.in_channels * layer.kernel
    n_gta = layer.in_channels * layer.out_channels * layer.out_height * layer.kernel
    fwd_ops, gta_ops, gtw_ops = (
        ops[:n_fwd],
        ops[n_fwd : n_fwd + n_gta],
        ops[n_fwd + n_gta :],
    )
    fwd = accumulate_forward(layer, fwd_ops, vector_results[:n_fwd])
    gta = accumulate_gta(layer, gta_ops, vector_results[n_fwd : n_fwd + n_gta])
    gtw = accumulate_gtw(layer, gtw_ops, vector_results[n_fwd + n_gta :])
    np.testing.assert_allclose(
        fwd, forward_by_rows(x, weight, None, layer.stride, layer.padding), atol=1e-12
    )
    np.testing.assert_allclose(
        gta,
        gta_by_rows(
            grad_out, weight, x.shape, layer.stride, layer.padding, mask=mask
        ),
        atol=1e-12,
    )
    np.testing.assert_allclose(
        gtw, gtw_by_rows(grad_out, x, layer.kernel, layer.stride, layer.padding),
        atol=1e-12,
    )

    return {
        "seconds": vector_seconds,
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "speedup": scalar_seconds / max(vector_seconds, 1e-12),
        "ops": len(ops),
        "exact": True,
    }


# ---------------------------------------------------------------------------
# The bench pipeline: train -> compile -> simulate -> report
# ---------------------------------------------------------------------------
# The ``train`` stage is the fig8 pipeline's density-measurement stage run
# over BENCH_WORKLOAD, so bench shares both the measurement code path and the
# on-disk density cache (same content keys) with the figure harnesses.

def _is_smoke(request: ExperimentRequest) -> bool:
    return request.scale == SMOKE_SCALE


def _train_stage(ctx: PipelineContext):
    """``train`` — the fig8 density-measurement stage over the bench workload.

    A ``run bench`` request without explicit workloads means "the standard
    bench workload", not the fig8 quick grid the shared stage would default
    to, so the request is pinned to BENCH_WORKLOAD before delegating.
    """
    if not ctx.request.workloads:
        ctx.request = ExperimentRequest(
            experiment=ctx.request.experiment,
            workloads=BENCH_WORKLOAD,
            pruning_rate=ctx.request.pruning_rate,
            scale=ctx.request.scale,
            params=ctx.request.params,
        )
    return train_stage(ctx)


def _compile_stage(ctx: PipelineContext) -> dict[str, Any]:
    """``compile`` — lower the full-size spec to instruction programs."""
    model_name, dataset_name = ctx.request.workloads[0]
    spec = get_model_spec(model_name, dataset_name)
    densities = densities_for_workload(model_name, dataset_name, ctx["train"])
    sparse_program = compile_training_iteration(spec, densities=densities, sparse=True)
    dense_program = compile_training_iteration(spec, densities=None, sparse=False)
    return {
        "spec": spec,
        "densities": densities,
        "instructions": len(sparse_program.instructions)
        + len(dense_program.instructions),
    }


def _simulate_stage(ctx: PipelineContext):
    """``simulate`` — SparseTrain vs the dense baseline on the workload."""
    compiled = ctx["compile"]
    job = WorkloadJob(spec=compiled["spec"], densities=compiled["densities"])
    return ctx.runner.map(_run_job, [job])[0]


def _report_stage(ctx: PipelineContext) -> ExperimentReport:
    request = ctx.request
    smoke = _is_smoke(request)
    comparison = ctx["simulate"]
    result = BenchResult(smoke=smoke)
    result.stages["train"] = {
        "seconds": ctx.timings["train"],
        "cache_hit": ctx.stage_cache_hit("train"),
        "epochs": request.scale.epochs,
        "samples": request.scale.num_samples,
    }
    result.stages["compile"] = {
        "seconds": ctx.timings["compile"],
        "instructions": ctx["compile"]["instructions"],
    }
    result.stages["simulate"] = {
        "seconds": ctx.timings["simulate"],
        "speedup": float(comparison.speedup),
        "energy_efficiency": float(comparison.energy_efficiency),
    }
    # Row-op validation: both PE backends over one decomposed layer.
    result.stages["rowop_validate"] = _bench_rowops(smoke)
    return ExperimentReport(
        payload=result.to_payload(), summary=result.format(), native=result
    )


@register_experiment(
    "bench",
    description="Staged performance benchmark (train/compile/simulate/row-op validate)",
    category="validation",
)
def build_bench_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "bench",
        [
            Stage("train", _train_stage, "measure densities (timed, cached)"),
            Stage("compile", _compile_stage, "lower to instruction programs"),
            Stage("simulate", _simulate_stage, "SparseTrain vs dense baseline"),
            Stage("report", _report_stage, "stage timings + row-op validation"),
        ],
    )


def run_bench(
    smoke: bool = False,
    out: str | Path | None = DEFAULT_BENCH_PATH,
    density_cache: ResultCache | None = None,
    pruning_rate: float = 0.9,
) -> BenchResult:
    """Run every bench stage; write ``out`` (unless ``None``) and return results.

    A thin wrapper over the registered ``bench`` experiment pipeline; the
    stage timings in the result are the pipeline's own stage clock.
    """
    request = ExperimentRequest(
        experiment="bench",
        workloads=BENCH_WORKLOAD,
        pruning_rate=pruning_rate,
        scale=SMOKE_SCALE if smoke else FULL_SCALE,
    )
    result = get_experiment("bench").run(
        request,
        options=RunOptions(),
        extras={"density_cache": density_cache},
    )
    bench_result: BenchResult = result.native
    if out is not None:
        _write_atomic(Path(out), bench_result.to_payload())
    return bench_result


#: Stages whose baseline p95 is below this are skipped by the regression
#: check: sub-50ms quantiles are dominated by scheduler and allocator noise,
#: and a 20% band around them gates on nothing real.
MIN_STAGE_SECONDS = 0.05


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
    min_stage_seconds: float = MIN_STAGE_SECONDS,
) -> tuple[list[str], list[str]]:
    """Compare a bench payload against a committed baseline.

    Returns ``(violations, checked)``: human-readable violation strings
    (empty = pass) and notes describing every comparison actually made.
    Two gates, both relative with the same ``tolerance`` band:

    * ``rowop_speedup`` must not drop more than ``tolerance`` below the
      baseline — the vectorized-engine advantage is the repository's
      headline performance claim;
    * each stage's ``p95`` (from ``metrics.stage_seconds``) must not exceed
      the baseline by more than ``tolerance``, skipping stages whose
      baseline p95 sits under ``min_stage_seconds`` (pure noise) or that
      either run lacks.

    Raises ``ValueError`` when the two payloads ran at different scales
    (``smoke`` flags differ) — comparing a smoke run against a full-scale
    baseline measures the scale difference, not a regression.
    """
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        raise ValueError(
            "bench scale mismatch: current smoke="
            f"{bool(current.get('smoke'))} vs baseline smoke="
            f"{bool(baseline.get('smoke'))}; rerun at the baseline's scale"
        )
    violations: list[str] = []
    checked: list[str] = []

    base_speedup = float(baseline.get("rowop_speedup", 0.0))
    cur_speedup = float(current.get("rowop_speedup", 0.0))
    floor = base_speedup * (1.0 - tolerance)
    checked.append(
        f"rowop_speedup {cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
        f"(floor {floor:.2f}x)"
    )
    if cur_speedup < floor:
        violations.append(
            f"rowop_speedup regressed: {cur_speedup:.2f}x < "
            f"{floor:.2f}x ({base_speedup:.2f}x baseline - {tolerance:.0%})"
        )

    base_stages = (baseline.get("metrics") or {}).get("stage_seconds") or {}
    cur_stages = (current.get("metrics") or {}).get("stage_seconds") or {}
    for stage, base_info in base_stages.items():
        base_p95 = base_info.get("p95")
        cur_p95 = (cur_stages.get(stage) or {}).get("p95")
        if base_p95 is None or cur_p95 is None:
            checked.append(f"stage {stage}: skipped (p95 missing)")
            continue
        if base_p95 < min_stage_seconds:
            checked.append(
                f"stage {stage}: skipped (baseline p95 {base_p95:.3f}s "
                f"under the {min_stage_seconds:.2f}s noise floor)"
            )
            continue
        ceiling = base_p95 * (1.0 + tolerance)
        checked.append(
            f"stage {stage} p95 {cur_p95:.3f}s vs baseline {base_p95:.3f}s "
            f"(ceiling {ceiling:.3f}s)"
        )
        if cur_p95 > ceiling:
            violations.append(
                f"stage {stage} p95 regressed: {cur_p95:.3f}s > "
                f"{ceiling:.3f}s ({base_p95:.3f}s baseline + {tolerance:.0%})"
            )
    return violations, checked


def _write_atomic(out: Path, payload: dict[str, Any]) -> None:
    """Write the benchmark JSON via temp file + ``os.replace``.

    A reader (CI trend gates, a concurrent ``repro stats`` consumer) never
    sees a torn half-written file: the rename is atomic on POSIX, and the
    temp file lives in the target directory so the replace never crosses a
    filesystem boundary.  ``/dev/null``-style non-regular targets are written
    directly — there is nothing to tear.
    """
    text = json.dumps(payload, indent=2) + "\n"
    if out.exists() and not out.is_file():
        out.write_text(text, encoding="utf-8")
        return
    fd, tmp_name = tempfile.mkstemp(
        dir=str(out.parent) if str(out.parent) else ".",
        prefix=out.name + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, out)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise
