"""The process-global fault runtime: install a plan, thread ``fault_point``.

Production code calls :func:`fault_point` at its named fault sites; the
call is a near-free no-op (one ``is None`` check) unless a
:class:`~repro.faults.plan.FaultPlan` is active.  A plan becomes active
either explicitly (:func:`install_plan` — tests and the chaos harness) or
through the ``REPRO_FAULTS`` environment variable holding the plan's JSON
(worker subprocesses spawned by the fleet supervisor), read lazily on the
first ``fault_point`` hit so importing this module never touches the
environment.

Firing state (per-rule hit/fired counters, the seeded ``chance`` RNG) lives
here, not in the immutable plan, and is reported by :func:`fault_report`
for the chaos run's invariant report.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from random import Random
from typing import Any

from repro.faults.plan import FaultPlan, FaultRule, InjectedFault

#: Environment variable carrying a JSON fault plan into subprocesses.
ENV_VAR = "REPRO_FAULTS"

#: Exit status of a ``crash`` firing — the conventional SIGKILL code, so a
#: supervisor cannot tell an injected crash from a real one.
CRASH_EXIT_CODE = 137


class _RuleState:
    __slots__ = ("hits", "fired", "rng")

    def __init__(self, seed: int, index: int) -> None:
        self.hits = 0
        self.fired = 0
        self.rng = Random(f"{seed}:{index}")


class _ActivePlan:
    """One installed plan plus its mutable firing state (thread-safe)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._states = [
            _RuleState(plan.seed, index) for index in range(len(plan.rules))
        ]
        self._by_site: dict[str, list[int]] = {}
        for index, rule in enumerate(plan.rules):
            self._by_site.setdefault(rule.site, []).append(index)

    def decide(self, site: str, ctx: dict[str, Any]) -> FaultRule | None:
        """The rule to apply for this hit, or ``None`` (first firing wins)."""
        indices = self._by_site.get(site)
        if not indices:
            return None
        with self._lock:
            for index in indices:
                rule = self.plan.rules[index]
                if not rule.matches(ctx):
                    continue
                state = self._states[index]
                state.hits += 1
                if state.hits <= rule.after:
                    continue
                if rule.times is not None and state.fired >= rule.times:
                    continue
                if rule.chance < 1.0 and state.rng.random() >= rule.chance:
                    continue
                state.fired += 1
                return rule
        return None

    def report(self) -> dict[str, Any]:
        with self._lock:
            return {
                "seed": self.plan.seed,
                "name": self.plan.name,
                "rules": [
                    {
                        "site": rule.site,
                        "action": rule.action,
                        "match": {k: v for k, v in rule.match},
                        "hits": state.hits,
                        "fired": state.fired,
                    }
                    for rule, state in zip(self.plan.rules, self._states)
                ],
            }


_lock = threading.Lock()
_active: _ActivePlan | None = None
_env_checked = False


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process (replacing any active plan)."""
    global _active, _env_checked
    with _lock:
        _active = _ActivePlan(plan)
        _env_checked = True  # an explicit install outranks the environment


def clear_plan() -> None:
    """Deactivate fault injection (and stop consulting the environment)."""
    global _active, _env_checked
    with _lock:
        _active = None
        _env_checked = True


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any (environment loaded lazily)."""
    active = _get_active()
    return active.plan if active is not None else None


def fault_report() -> dict[str, Any] | None:
    """Per-rule hit/fired counts of the active plan (``None`` when inactive).

    Counts are per process: a worker subprocess's firings show up in *its*
    report, not the supervisor's — the chaos harness reads cross-process
    effects off the job store instead.
    """
    active = _get_active()
    return active.report() if active is not None else None


def _get_active() -> _ActivePlan | None:
    global _active, _env_checked
    if _active is not None or _env_checked:
        return _active
    with _lock:
        if _active is None and not _env_checked:
            _env_checked = True
            text = os.environ.get(ENV_VAR)
            if text:
                try:
                    _active = _ActivePlan(FaultPlan.from_json(text))
                except (ValueError, TypeError, KeyError) as exc:
                    warnings.warn(
                        f"ignoring malformed {ENV_VAR} fault plan: {exc}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
    return _active


def fault_point(site: str, **ctx: Any) -> None:
    """Declare a named fault site; a no-op unless an active rule fires.

    Raises :class:`InjectedFault` (``error``), sleeps (``hang``), or exits
    the process with :data:`CRASH_EXIT_CODE` (``crash``) when a rule of the
    active plan fires for this hit.  Context keywords are what rules match
    on — keep them cheap to compute, this call sits on hot paths.
    """
    active = _get_active()
    if active is None:
        return
    rule = active.decide(site, ctx)
    if rule is None:
        return
    if rule.action == "crash":
        # The SIGKILL simulator: no unwinding, no atexit, no flushing —
        # recovery must come from lease expiry and supervisor respawn.
        os._exit(CRASH_EXIT_CODE)
    if rule.action == "hang":
        time.sleep(rule.duration)
        return
    raise InjectedFault(site, rule.message)


__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "active_plan",
    "clear_plan",
    "fault_point",
    "fault_report",
    "install_plan",
]
