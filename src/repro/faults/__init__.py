"""``repro.faults`` — deterministic, dependency-free fault injection.

Failure is an input here, not an accident: a seeded
:class:`FaultPlan` names *which* failures fire at *which* sites
(``store.commit``, ``worker.claim``, ``stage.boundary``,
``http.response``, ``client.request``), production code declares those
sites with :func:`fault_point` (a no-op unless a plan is active), and the
same JSON plan can be shipped to every process of a worker fleet through
the ``REPRO_FAULTS`` environment variable.  ``repro chaos`` builds on this
to run seeded fault plans against a real fleet and assert the service's
bounding invariants — see DESIGN.md "Failure modes & degradation".

Minimal use::

    from repro.faults import FaultPlan, FaultRule, install_plan, clear_plan

    install_plan(FaultPlan(seed=7, rules=(
        FaultRule(site="store.commit", match={"op": "record_stage"},
                  action="error", times=1),
    )))
    try:
        ...  # the first record_stage commit raises InjectedFault
    finally:
        clear_plan()
"""

from __future__ import annotations

from repro.faults.plan import ACTIONS, FaultPlan, FaultRule, InjectedFault
from repro.faults.runtime import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    active_plan,
    clear_plan,
    fault_point,
    fault_report,
    install_plan,
)

__all__ = [
    "ACTIONS",
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fault_point",
    "fault_report",
    "install_plan",
]
