"""Seeded, serializable fault plans — failure as a first-class input.

A :class:`FaultPlan` is a deterministic description of *which* failures to
inject *where*: a seed plus an ordered tuple of :class:`FaultRule`\\ s, each
bound to one named fault **site** (``store.commit``, ``worker.claim``,
``stage.boundary``, ``http.response``, ``client.request`` — see
DESIGN.md for the naming scheme).  Plans round-trip through JSON, so the
same plan can be installed in-process (:func:`repro.faults.install_plan`)
and shipped to worker subprocesses through the ``REPRO_FAULTS``
environment variable — every process in a fleet then injects the *same*
failures at the *same* sites, and a chaos run becomes a repeatable
experiment instead of a flaky one.

Determinism contract: given one plan and one sequence of matching hits at
a site, the fired/skipped decisions are identical across runs.  ``chance``
rules draw from a :class:`random.Random` seeded from ``(plan seed, rule
index)`` and consume one draw per eligible hit, never from global
randomness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

#: The actions a rule can take when it fires.
#:
#: ``error``  raise :class:`InjectedFault` at the site (a transient failure
#:            the surrounding machinery must absorb: retry, requeue, 5xx).
#: ``crash``  ``os._exit(137)`` — the SIGKILL simulator.  The process dies
#:            without unwinding; recovery must come from *outside* (lease
#:            expiry, supervisor respawn).
#: ``hang``   sleep ``duration`` seconds at the site, then continue — a
#:            wedged stage or stalled peer, bounded only by deadlines.
ACTIONS: tuple[str, ...] = ("error", "crash", "hang")


class InjectedFault(RuntimeError):
    """A deterministically injected failure (``action="error"`` firing)."""

    def __init__(self, site: str, message: str = "") -> None:
        super().__init__(
            f"injected fault at {site!r}" + (f": {message}" if message else "")
        )
        self.site = site


def _normalize_match(match: Any) -> tuple[tuple[str, Any], ...]:
    if isinstance(match, Mapping):
        items = match.items()
    else:
        items = tuple(match)
    return tuple(sorted((str(key), value) for key, value in items))


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``action`` at ``site`` when conditions hold.

    Attributes
    ----------
    site:
        The named fault site this rule listens on.
    action:
        One of :data:`ACTIONS`.
    match:
        Subset match over the context keywords the site passes to
        :func:`~repro.faults.fault_point` — ``{"job": "<hash>"}`` targets
        one job, ``()`` matches every hit.  Keys absent from the context
        never match (no wildcard-by-omission surprises).
    after:
        Skip the first ``after`` matching hits before becoming eligible.
    times:
        Fire at most this many times (``None`` = every eligible hit).
    chance:
        Probability of firing per eligible hit, drawn from the rule's own
        seeded RNG (1.0 = always — fully deterministic).
    duration:
        Sleep length in seconds for ``hang``.
    message:
        Optional text carried by the raised :class:`InjectedFault`.
    """

    site: str
    action: str = "error"
    match: tuple[tuple[str, Any], ...] = ()
    after: int = 0
    times: int | None = 1
    chance: float = 1.0
    duration: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise ValueError("a fault rule needs a non-empty site name")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; actions are "
                f"{', '.join(ACTIONS)}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if not 0.0 <= self.chance <= 1.0:
            raise ValueError(f"chance must be in [0, 1], got {self.chance}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        object.__setattr__(self, "match", _normalize_match(self.match))

    def matches(self, ctx: Mapping[str, Any]) -> bool:
        """Whether every ``match`` pair equals the site's context value."""
        return all(
            key in ctx and ctx[key] == value for key, value in self.match
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "match": {key: value for key, value in self.match},
            "after": self.after,
            "times": self.times,
            "chance": self.chance,
            "duration": self.duration,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        return cls(
            site=data["site"],
            action=data.get("action", "error"),
            match=dict(data.get("match", {})),
            after=int(data.get("after", 0)),
            times=None if data.get("times") is None else int(data["times"]),
            chance=float(data.get("chance", 1.0)),
            duration=float(data.get("duration", 0.0)),
            message=data.get("message", ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered set of rules — one chaos experiment's input."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(f"rules must be FaultRule, got {rule!r}")

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(sorted({rule.site for rule in self.rules}))

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            name=data.get("name", ""),
            rules=tuple(
                FaultRule.from_dict(rule) for rule in data.get("rules", ())
            ),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


__all__ = ["ACTIONS", "FaultPlan", "FaultRule", "InjectedFault"]
