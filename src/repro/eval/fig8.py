"""Experiment E-F8 — reproduce Fig. 8 (training latency per sample and speedup).

The paper's Fig. 8 plots, for every (model, dataset) workload, the average
training latency per sample of the dense baseline and of SparseTrain, and
annotates the speedup: up to ~4.5x for AlexNet on CIFAR-10 and ~2.7x on
average.

Pipeline of this harness:

1. *Measure densities* — train reduced AlexNet/ResNet models on synthetic data
   with pruning enabled and profile the per-layer operand densities
   (:mod:`repro.sim.trace`).
2. *Map onto full-size specs* — assign the measured densities to the paper's
   exact AlexNet/ResNet-18/34 layer geometries by relative depth.
3. *Simulate* — compile sparse and dense programs, run them on the
   SparseTrain and dense-baseline configurations (168 PEs, 386 KB buffer
   each) and report per-sample latency and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.energy import EnergyModel
from repro.dataflow.counts import LayerDensities
from repro.eval.common import ExperimentScale, build_reduced_model, synthetic_dataset_for
from repro.eval.density_cache import load_cached_densities, store_cached_densities
from repro.explore.cache import ResultCache
from repro.models.zoo import get_model_spec, model_family
from repro.pruning.config import PruningConfig
from repro.sim.report import format_latency_table
from repro.sim.runner import WorkloadJob, WorkloadResult, simulate_many
from repro.sim.trace import MeasuredDensities, map_densities_to_spec, profile_training_densities

# The (model, dataset) grid of the paper's Fig. 8 / Fig. 9.
PAPER_FIG8_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("AlexNet", "CIFAR-100"),
    ("AlexNet", "ImageNet"),
    ("ResNet-18", "CIFAR-10"),
    ("ResNet-18", "CIFAR-100"),
    ("ResNet-18", "ImageNet"),
    ("ResNet-34", "CIFAR-10"),
    ("ResNet-34", "CIFAR-100"),
    ("ResNet-34", "ImageNet"),
)

# The paper grid extended with the efficiency-oriented families this
# reproduction adds (VGG's uniform 3x3 stacks and MobileNetV1's
# depthwise-separable pairs — the grouped-convolution stress test).
EXTENDED_FIG8_WORKLOADS: tuple[tuple[str, str], ...] = PAPER_FIG8_WORKLOADS + (
    ("VGG-16", "CIFAR-10"),
    ("VGG-16", "ImageNet"),
    ("MobileNetV1", "CIFAR-10"),
    ("MobileNetV1", "ImageNet"),
)

# Fast subset used by the benchmark suite (covers both model families, both
# dataset geometries).
QUICK_FIG8_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("AlexNet", "ImageNet"),
    ("ResNet-18", "CIFAR-10"),
    ("ResNet-18", "ImageNet"),
    ("ResNet-34", "CIFAR-10"),
)

# Reduced model trained to measure the densities of each model family.
FAMILY_REFERENCE_MODELS: dict[str, str] = {
    "AlexNet": "AlexNet",
    "ResNet": "ResNet-18",
    "VGG": "VGG-16",
    "MobileNet": "MobileNetV1",
}


@dataclass
class Fig8Result:
    """Latency/speedup results for a set of workloads."""

    workloads: list[WorkloadResult] = field(default_factory=list)

    @property
    def speedups(self) -> dict[str, float]:
        return {w.workload_name: w.speedup for w in self.workloads}

    @property
    def mean_speedup(self) -> float:
        if not self.workloads:
            return 0.0
        return float(np.mean([w.speedup for w in self.workloads]))

    @property
    def max_speedup(self) -> float:
        if not self.workloads:
            return 0.0
        return float(np.max([w.speedup for w in self.workloads]))

    def workload(self, name: str) -> WorkloadResult:
        for entry in self.workloads:
            if entry.workload_name == name:
                return entry
        raise KeyError(f"no workload named {name!r}")

    def format(self) -> str:
        return format_latency_table(self.workloads)


def measure_model_densities(
    model_name: str,
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    cache: ResultCache | None = None,
) -> MeasuredDensities:
    """Measure per-layer densities of one model family on synthetic data.

    Pass ``cache`` (see :mod:`repro.eval.density_cache`) to memoize the
    measurement on disk: the reduced-model training — the slowest stage of
    the fig8/fig9 pipeline — is skipped whenever an identical (model,
    pruning rate, scale) configuration was measured before.
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    cached = load_cached_densities(cache, model_name, pruning_rate, scale)
    if cached is not None:
        return cached
    train, _ = synthetic_dataset_for("CIFAR-10", scale)
    model = build_reduced_model(model_name, train.num_classes, scale)
    pruning = (
        PruningConfig(target_sparsity=pruning_rate, fifo_depth=3, seed=scale.seed)
        if pruning_rate > 0.0
        else None
    )
    # Conv-ReLU families (no batch norm) train with the smaller step size.
    lr = 0.01 if model_family(model_name) in ("AlexNet", "VGG") else 0.05
    measured = profile_training_densities(
        model,
        train,
        pruning=pruning,
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        lr=lr,
        seed=scale.seed,
    )
    store_cached_densities(cache, model_name, pruning_rate, scale, measured)
    return measured


def densities_for_workload(
    model_name: str,
    dataset_name: str,
    measured: dict[str, MeasuredDensities],
) -> dict[str, LayerDensities]:
    """Map the measured densities of a model family onto a full-size spec."""
    family = model_family(model_name)
    if family not in measured:
        raise KeyError(f"no measured densities for model family {family!r}")
    spec = get_model_spec(model_name, dataset_name)
    return map_densities_to_spec(measured[family], spec)


def measure_family_densities(
    workloads: tuple[tuple[str, str], ...],
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    cache: ResultCache | None = None,
) -> dict[str, MeasuredDensities]:
    """Measure densities for every model family appearing in ``workloads``.

    One reduced model is trained per family (not per workload), mirroring the
    paper's setup where each family's sparsity statistics transfer across
    datasets and depths.  ``cache`` memoizes the per-family measurements on
    disk (see :func:`measure_model_densities`).
    """
    families = []
    for model_name, _ in workloads:
        family = model_family(model_name)
        if family not in families:
            families.append(family)
    return {
        family: measure_model_densities(
            FAMILY_REFERENCE_MODELS[family], pruning_rate, scale, cache=cache
        )
        for family in families
    }


def run_fig8(
    workloads: tuple[tuple[str, str], ...] = QUICK_FIG8_WORKLOADS,
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    sparse_config: ArchConfig | None = None,
    baseline_config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
    measured: dict[str, MeasuredDensities] | None = None,
    density_cache: ResultCache | None = None,
    max_workers: int | None = None,
) -> Fig8Result:
    """Regenerate the Fig. 8 latency/speedup comparison.

    ``measured`` can be passed to reuse density measurements across calls
    (e.g. Fig. 9 reuses Fig. 8's measurements); otherwise one reduced model
    per family is trained and profiled here (memoized on disk when
    ``density_cache`` is given).  ``max_workers`` fans the per-workload
    simulations out over worker processes via
    :func:`repro.sim.runner.simulate_many`; the default runs serially with
    identical results.
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    if measured is None:
        measured = measure_family_densities(
            workloads, pruning_rate, scale, cache=density_cache
        )

    jobs = []
    for model_name, dataset_name in workloads:
        spec = get_model_spec(model_name, dataset_name)
        densities = densities_for_workload(model_name, dataset_name, measured)
        jobs.append(
            WorkloadJob(
                spec=spec,
                densities=densities,
                sparse_config=sparse_config,
                baseline_config=baseline_config,
                energy_model=energy_model,
            )
        )
    return Fig8Result(workloads=simulate_many(jobs, max_workers=max_workers))
