"""Experiment E-F8 — reproduce Fig. 8 (training latency per sample and speedup).

The paper's Fig. 8 plots, for every (model, dataset) workload, the average
training latency per sample of the dense baseline and of SparseTrain, and
annotates the speedup: up to ~4.5x for AlexNet on CIFAR-10 and ~2.7x on
average.

The harness executes as a registered :mod:`repro.api` pipeline
(``train -> profile -> compile -> simulate -> report``):

1. ``train`` — train reduced per-family models on synthetic data with pruning
   enabled and profile the per-layer operand densities
   (:mod:`repro.sim.trace`); memoized on disk through the pipeline's
   per-stage cache hook.
2. ``profile`` — assign the measured densities to the paper's exact
   AlexNet/ResNet-18/34 layer geometries by relative depth.
3. ``compile`` — lower each workload into a picklable
   :class:`~repro.sim.runner.WorkloadJob` (program compilation itself runs
   inside the simulate workers so it parallelises with them).
4. ``simulate`` — run SparseTrain and the dense baseline (168 PEs, 386 KB
   buffer each) on every job through the shared worker-pool
   :class:`~repro.api.runner.Runner`.
5. ``report`` — per-sample latency and speedup tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    RunOptions,
    Stage,
    get_experiment,
    register_experiment,
)
from repro.arch.config import ArchConfig
from repro.arch.energy import EnergyModel
from repro.dataflow.counts import LayerDensities
from repro.eval.common import ExperimentScale, build_reduced_model, synthetic_dataset_for
from repro.eval.density_cache import (
    density_cache_key,
    deserialize_measured,
    load_cached_densities,
    serialize_measured,
    store_cached_densities,
)
from repro.explore.cache import ResultCache
from repro.models.zoo import get_model_spec, model_family
from repro.pruning.config import PruningConfig
from repro.sim.report import format_latency_table
from repro.sim.runner import WorkloadJob, WorkloadResult, _run_job
from repro.sim.trace import MeasuredDensities, map_densities_to_spec, profile_training_densities

# The (model, dataset) grid of the paper's Fig. 8 / Fig. 9.
PAPER_FIG8_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("AlexNet", "CIFAR-100"),
    ("AlexNet", "ImageNet"),
    ("ResNet-18", "CIFAR-10"),
    ("ResNet-18", "CIFAR-100"),
    ("ResNet-18", "ImageNet"),
    ("ResNet-34", "CIFAR-10"),
    ("ResNet-34", "CIFAR-100"),
    ("ResNet-34", "ImageNet"),
)

# The paper grid extended with the efficiency-oriented families this
# reproduction adds (VGG's uniform 3x3 stacks and MobileNetV1's
# depthwise-separable pairs — the grouped-convolution stress test).
EXTENDED_FIG8_WORKLOADS: tuple[tuple[str, str], ...] = PAPER_FIG8_WORKLOADS + (
    ("VGG-16", "CIFAR-10"),
    ("VGG-16", "ImageNet"),
    ("MobileNetV1", "CIFAR-10"),
    ("MobileNetV1", "ImageNet"),
)

# Fast subset used by the benchmark suite (covers both model families, both
# dataset geometries).
QUICK_FIG8_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("AlexNet", "CIFAR-10"),
    ("AlexNet", "ImageNet"),
    ("ResNet-18", "CIFAR-10"),
    ("ResNet-18", "ImageNet"),
    ("ResNet-34", "CIFAR-10"),
)

# Reduced model trained to measure the densities of each model family.
FAMILY_REFERENCE_MODELS: dict[str, str] = {
    "AlexNet": "AlexNet",
    "ResNet": "ResNet-18",
    "VGG": "VGG-16",
    "MobileNet": "MobileNetV1",
}


@dataclass
class Fig8Result:
    """Latency/speedup results for a set of workloads."""

    workloads: list[WorkloadResult] = field(default_factory=list)

    @property
    def speedups(self) -> dict[str, float]:
        return {w.workload_name: w.speedup for w in self.workloads}

    @property
    def mean_speedup(self) -> float:
        if not self.workloads:
            return 0.0
        return float(np.mean([w.speedup for w in self.workloads]))

    @property
    def max_speedup(self) -> float:
        if not self.workloads:
            return 0.0
        return float(np.max([w.speedup for w in self.workloads]))

    def workload(self, name: str) -> WorkloadResult:
        for entry in self.workloads:
            if entry.workload_name == name:
                return entry
        raise KeyError(f"no workload named {name!r}")

    def format(self) -> str:
        return format_latency_table(self.workloads)


def _measure_densities_uncached(
    model_name: str, pruning_rate: float, scale: ExperimentScale
) -> MeasuredDensities:
    """The raw density measurement: train a reduced model and profile it."""
    train, _ = synthetic_dataset_for("CIFAR-10", scale)
    model = build_reduced_model(model_name, train.num_classes, scale)
    pruning = (
        PruningConfig(target_sparsity=pruning_rate, fifo_depth=3, seed=scale.seed)
        if pruning_rate > 0.0
        else None
    )
    # Conv-ReLU families (no batch norm) train with the smaller step size.
    lr = 0.01 if model_family(model_name) in ("AlexNet", "VGG") else 0.05
    return profile_training_densities(
        model,
        train,
        pruning=pruning,
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        lr=lr,
        seed=scale.seed,
    )


def measure_model_densities(
    model_name: str,
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    cache: ResultCache | None = None,
) -> MeasuredDensities:
    """Measure per-layer densities of one model family on synthetic data.

    Pass ``cache`` (see :mod:`repro.eval.density_cache`) to memoize the
    measurement on disk: the reduced-model training — the slowest stage of
    the fig8/fig9 pipeline — is skipped whenever an identical (model,
    pruning rate, scale) configuration was measured before.
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    cached = load_cached_densities(cache, model_name, pruning_rate, scale)
    if cached is not None:
        return cached
    measured = _measure_densities_uncached(model_name, pruning_rate, scale)
    store_cached_densities(cache, model_name, pruning_rate, scale, measured)
    return measured


def densities_for_workload(
    model_name: str,
    dataset_name: str,
    measured: dict[str, MeasuredDensities],
) -> dict[str, LayerDensities]:
    """Map the measured densities of a model family onto a full-size spec."""
    family = model_family(model_name)
    if family not in measured:
        raise KeyError(f"no measured densities for model family {family!r}")
    spec = get_model_spec(model_name, dataset_name)
    return map_densities_to_spec(measured[family], spec)


def measure_family_densities(
    workloads: tuple[tuple[str, str], ...],
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    cache: ResultCache | None = None,
) -> dict[str, MeasuredDensities]:
    """Measure densities for every model family appearing in ``workloads``.

    One reduced model is trained per family (not per workload), mirroring the
    paper's setup where each family's sparsity statistics transfer across
    datasets and depths.  ``cache`` memoizes the per-family measurements on
    disk (see :func:`measure_model_densities`).
    """
    families = []
    for model_name, _ in workloads:
        family = model_family(model_name)
        if family not in families:
            families.append(family)
    return {
        family: measure_model_densities(
            FAMILY_REFERENCE_MODELS[family], pruning_rate, scale, cache=cache
        )
        for family in families
    }


# ---------------------------------------------------------------------------
# The fig8 pipeline (shared by fig9 and bench)
# ---------------------------------------------------------------------------

def request_workloads(request: ExperimentRequest) -> tuple[tuple[str, str], ...]:
    """The request's workloads, defaulting to the quick Fig. 8 subset."""
    return request.workloads or QUICK_FIG8_WORKLOADS


def density_store(ctx: PipelineContext):
    """The density cache for a pipeline run.

    Library wrappers pass the cache (or an explicit ``None`` to disable
    caching) through extras; registry/CLI runs derive it from the run
    options (``--cache-dir`` / ``--no-cache``).
    """
    if "density_cache" in ctx.extras:
        return ctx.extras["density_cache"]
    return ctx.options.density_cache()


def train_stage(ctx: PipelineContext) -> dict[str, MeasuredDensities]:
    """``train`` — measure per-family densities, one reduced model per family.

    Each family's measurement goes through the pipeline's per-stage cache
    hook with the :func:`repro.eval.density_cache.density_cache_key` content
    hash, so fig8, fig9 and bench runs share measurements on disk.
    """
    request = ctx.request
    preloaded = ctx.extras.get("measured")
    if preloaded is not None:
        return dict(preloaded)
    store = density_store(ctx)
    measured: dict[str, MeasuredDensities] = {}
    for model_name, _ in request_workloads(request):
        family = model_family(model_name)
        if family in measured:
            continue
        reference = FAMILY_REFERENCE_MODELS[family]
        measured[family] = ctx.cached(
            density_cache_key(reference, request.pruning_rate, request.scale),
            lambda reference=reference: _measure_densities_uncached(
                reference, request.pruning_rate, request.scale
            ),
            store=store,
            serialize=serialize_measured,
            deserialize=deserialize_measured,
        )
    return measured


def profile_stage(ctx: PipelineContext) -> dict[tuple[str, str], dict[str, LayerDensities]]:
    """``profile`` — map measured family densities onto full-size specs."""
    measured = ctx["train"]
    return {
        (model_name, dataset_name): densities_for_workload(
            model_name, dataset_name, measured
        )
        for model_name, dataset_name in request_workloads(ctx.request)
    }


def compile_stage(ctx: PipelineContext) -> list[WorkloadJob]:
    """``compile`` — lower every workload into a picklable simulation job."""
    densities_by_workload = ctx["profile"]
    extras = ctx.extras
    return [
        WorkloadJob(
            spec=get_model_spec(model_name, dataset_name),
            densities=densities_by_workload[(model_name, dataset_name)],
            sparse_config=extras.get("sparse_config"),
            baseline_config=extras.get("baseline_config"),
            energy_model=extras.get("energy_model"),
        )
        for model_name, dataset_name in request_workloads(ctx.request)
    ]


def _simulate_vectorized(ctx: PipelineContext) -> list[WorkloadResult]:
    return ctx.runner.map(_run_job, ctx["compile"])


def _simulate_scalar(ctx: PipelineContext) -> list[WorkloadResult]:
    # The serial trust anchor: the same jobs, strictly in-process.
    return [_run_job(job) for job in ctx["compile"]]


def _simulate_analytic(ctx: PipelineContext) -> list[WorkloadResult]:
    from repro.analytic.model import run_workload_jobs_analytic

    return run_workload_jobs_analytic(ctx["compile"])


def simulate_stage(ctx: PipelineContext) -> list[WorkloadResult]:
    """``simulate`` — both architectures per job, at the requested fidelity.

    Shared by fig8 and fig9: the analytic tier materializes full per-(layer,
    step) results, so the fig9 energy-breakdown report works on it unchanged.
    """
    from repro.api import fidelity_dispatch

    return fidelity_dispatch(
        ctx,
        vectorized=_simulate_vectorized,
        analytic=_simulate_analytic,
        scalar=_simulate_scalar,
    )


def workload_payload(result_workloads: list[WorkloadResult]) -> dict[str, dict[str, float]]:
    """JSON-native per-workload metrics shared by the fig8/fig9 payloads."""
    return {
        w.workload_name: {
            "speedup": float(w.speedup),
            "energy_efficiency": float(w.energy_efficiency),
            "latency_us": float(w.comparison.sparsetrain.latency_us),
            "baseline_latency_us": float(w.comparison.baseline.latency_us),
            "energy_uj": float(w.comparison.sparsetrain.energy_uj),
            "baseline_energy_uj": float(w.comparison.baseline.energy_uj),
        }
        for w in result_workloads
    }


def _fig8_report_stage(ctx: PipelineContext) -> ExperimentReport:
    result = Fig8Result(workloads=list(ctx["simulate"]))
    payload = {
        "workloads": workload_payload(result.workloads),
        "mean_speedup": result.mean_speedup,
        "max_speedup": result.max_speedup,
    }
    return ExperimentReport(payload=payload, summary=result.format(), native=result)


@register_experiment(
    "fig8",
    description="Fig. 8 — per-sample training latency and speedup vs the dense baseline",
    category="paper-figures",
    supports_fidelity=True,
)
def build_fig8_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "fig8",
        [
            Stage("train", train_stage, "measure per-family operand densities"),
            Stage("profile", profile_stage, "map densities onto full-size specs"),
            Stage("compile", compile_stage, "lower workloads into simulation jobs"),
            Stage("simulate", simulate_stage, "SparseTrain vs dense baseline"),
            Stage("report", _fig8_report_stage, "latency/speedup tables"),
        ],
    )


def run_fig8(
    workloads: tuple[tuple[str, str], ...] = QUICK_FIG8_WORKLOADS,
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    sparse_config: ArchConfig | None = None,
    baseline_config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
    measured: dict[str, MeasuredDensities] | None = None,
    density_cache: ResultCache | None = None,
    max_workers: int | None = None,
) -> Fig8Result:
    """Regenerate the Fig. 8 latency/speedup comparison.

    A thin wrapper over the registered ``fig8`` experiment pipeline.
    ``measured`` can be passed to reuse density measurements across calls
    (e.g. Fig. 9 reuses Fig. 8's measurements); otherwise one reduced model
    per family is trained and profiled by the ``train`` stage (memoized on
    disk when ``density_cache`` is given).  ``max_workers`` fans the
    per-workload simulations out over worker processes through the shared
    :class:`~repro.api.runner.Runner`; the default runs serially with
    identical results.
    """
    request = ExperimentRequest(
        experiment="fig8",
        workloads=tuple(workloads),
        pruning_rate=pruning_rate,
        scale=scale,
    )
    result = get_experiment("fig8").run(
        request,
        options=RunOptions(max_workers=max_workers),
        extras={
            "measured": measured,
            "density_cache": density_cache,
            "sparse_config": sparse_config,
            "baseline_config": baseline_config,
            "energy_model": energy_model,
        },
    )
    return result.native
