"""Experiment E-T1 — reproduce Table I (sparsity class of training data types).

The paper's Table I asserts which of the six tensors involved in training a
CONV layer are dense and which are sparse:

=========  ======
W, dW, dI, O   dense
I, dO          sparse
=========  ======

with the caveat (Section IV-A) that for batch-normalised networks ``dO`` is
only sparse *because* the gradient-pruning algorithm makes it so.  This
harness therefore measures the densities during a real (reduced) training run
— with pruning enabled, as the paper assumes — and derives the classification,
verifying the claim rather than restating it:

* ``W``  — convolution weights (read from the model parameters),
* ``dW`` — weight gradients (read after a backward pass),
* ``I``  — input activations of CONV layers (profiler forward hooks),
* ``dI`` — gradients to input activations (profiler gradient-input hooks),
* ``O``  — output activations of CONV layers before the non-linearity,
* ``dO`` — gradients to output activations (profiler gradient-output hooks).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    Stage,
    get_experiment,
    register_experiment,
)
from repro.eval.common import (
    ExperimentScale,
    build_reduced_model,
    synthetic_dataset_for,
    training_rng,
)
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.pruning.config import PruningConfig
from repro.pruning.controller import PruningController
from repro.sparsity.profiler import SparsityProfiler, iter_convs
from repro.sparsity.stats import density
from repro.sparsity.summary import DataTypeSparsity, format_table, summarize_data_types


@dataclass(frozen=True)
class Table1Result:
    """Measured Table I for one model."""

    model: str
    pruning_rate: float
    rows: tuple[DataTypeSparsity, ...]

    def matches_paper(self) -> bool:
        """True when every measured classification agrees with the paper."""
        return all(row.matches_paper for row in self.rows)

    def row(self, symbol: str) -> DataTypeSparsity:
        """Look up one data-type row by its symbol (W, dW, I, dI, O, dO)."""
        for entry in self.rows:
            if entry.symbol == symbol:
                return entry
        raise KeyError(f"no Table I row with symbol {symbol!r}")

    def format(self) -> str:
        return (
            f"Table I — {self.model} (pruning p={self.pruning_rate:.0%})\n"
            + format_table(list(self.rows))
        )


# ---------------------------------------------------------------------------
# The table1 pipeline: train -> profile -> report
# ---------------------------------------------------------------------------

def _model_name(request: ExperimentRequest) -> str:
    if request.workloads:
        return request.workloads[0][0]
    return request.param("model", "ResNet-18")


def _train_stage(ctx: PipelineContext) -> dict:
    """``train`` — train the reduced model with pruning and profiling hooks."""
    request = ctx.request
    model_name = _model_name(request)
    scale = request.scale
    train, _ = synthetic_dataset_for("CIFAR-10", scale)
    model = build_reduced_model(model_name, train.num_classes, scale)

    callbacks = []
    if request.pruning_rate > 0.0:
        controller = PruningController(
            model, PruningConfig(target_sparsity=request.pruning_rate, fifo_depth=3)
        )
        callbacks.append(controller)
    profiler = SparsityProfiler(model)
    callbacks.append(profiler)

    # Record the density of conv outputs (pre-ReLU) via extra forward hooks.
    output_densities: list[float] = []
    for conv in iter_convs(model):
        def output_hook(layer, x, out, _sink=output_densities):
            _sink.append(density(out))

        conv.register_forward_hook(output_hook)

    learning_rate = 0.01 if model_name.lower() == "alexnet" else 0.05
    trainer = Trainer(
        model, SGD(model.parameters(), lr=learning_rate, momentum=0.9), callbacks=callbacks
    )
    trainer.fit(
        train.images,
        train.labels,
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        shuffle_rng=training_rng(scale, "table1", model_name),
    )
    return {
        "model": model,
        "profiler": profiler,
        "output_densities": output_densities,
    }


def _profile_stage(ctx: PipelineContext) -> tuple[DataTypeSparsity, ...]:
    """``profile`` — derive the six data-type densities and classify them."""
    trained = ctx["train"]
    model, profiler = trained["model"], trained["profiler"]
    output_densities = trained["output_densities"]

    convs = list(iter_convs(model))
    weight_density = float(np.mean([density(conv.weight.data) for conv in convs]))
    weight_grad_density = float(
        np.mean([density(conv.weight.grad) for conv in convs if conv.weight.grad is not None])
    )
    means = profiler.mean_densities()
    # Exclude the first conv layer: its input is the raw (dense) image, which
    # Table I does not treat as representative of CONV-layer inputs.
    inner = profiler.layer_names()[1:] or profiler.layer_names()
    input_density = float(np.mean([means[name]["input"] for name in inner]))
    grad_input_density = float(
        np.mean([means[name]["grad_input"] for name in profiler.layer_names()])
    )
    grad_output_density = float(
        np.mean([means[name]["grad_output"] for name in profiler.layer_names()])
    )
    output_density = float(np.mean(output_densities)) if output_densities else 1.0

    return tuple(
        summarize_data_types(
            weight_density=weight_density,
            weight_grad_density=weight_grad_density,
            input_density=input_density,
            grad_input_density=grad_input_density,
            output_density=output_density,
            grad_output_density=grad_output_density,
        )
    )


def _report_stage(ctx: PipelineContext) -> ExperimentReport:
    request = ctx.request
    result = Table1Result(
        model=_model_name(request),
        pruning_rate=request.pruning_rate,
        rows=ctx["profile"],
    )
    payload = {
        "model": result.model,
        "pruning_rate": result.pruning_rate,
        "matches_paper": result.matches_paper(),
        "rows": [asdict(row) for row in result.rows],
    }
    return ExperimentReport(payload=payload, summary=result.format(), native=result)


@register_experiment(
    "table1",
    description="Table I — measured sparsity class of the six training data types",
    category="paper-tables",
)
def build_table1_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "table1",
        [
            Stage("train", _train_stage, "train the reduced model with hooks"),
            Stage("profile", _profile_stage, "summarize data-type densities"),
            Stage("report", _report_stage, "Table I classification"),
        ],
    )


def run_table1(
    model_name: str = "ResNet-18",
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
) -> Table1Result:
    """Measure the Table I sparsity summary for one (reduced) model.

    A thin wrapper over the registered ``table1`` experiment pipeline.  The
    default configuration is a reduced ResNet-18 with pruning at p = 90%,
    the representative Conv-BN-ReLU case; pass ``pruning_rate=0.0`` to observe
    natural sparsity only.
    """
    request = ExperimentRequest(
        experiment="table1",
        pruning_rate=pruning_rate,
        scale=scale,
        params={"model": model_name},
    )
    return get_experiment("table1").run(request).native
