"""Experiment E-F9 — reproduce Fig. 9 (energy per sample and efficiency gain).

The paper's Fig. 9 plots the average energy consumption per training sample,
broken down by component (SRAM, registers, combinational logic, ...), for the
dense baseline and SparseTrain, and reports:

* 1.5x-2.8x (average ~2.2x) energy-efficiency improvement,
* 62%-71% of the baseline energy coming from SRAM accesses,
* 30%-59% reduction of SRAM energy and 53%-88% reduction of combinational
  logic energy for SparseTrain.

The harness shares its simulation pipeline with Fig. 8 (same workloads, same
measured densities, same architecture configurations) and differs only in the
quantities it extracts from the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    RunOptions,
    Stage,
    get_experiment,
    register_experiment,
)
from repro.arch.config import ArchConfig
from repro.arch.energy import EnergyModel
from repro.eval.common import ExperimentScale
from repro.eval.fig8 import (
    QUICK_FIG8_WORKLOADS,
    Fig8Result,
    compile_stage,
    profile_stage,
    simulate_stage,
    train_stage,
    workload_payload,
)
from repro.explore.cache import ResultCache
from repro.sim.report import format_breakdown, format_energy_table
from repro.sim.runner import WorkloadResult
from repro.sim.trace import MeasuredDensities


@dataclass
class Fig9Result:
    """Energy results for a set of workloads."""

    workloads: list[WorkloadResult] = field(default_factory=list)

    @property
    def efficiencies(self) -> dict[str, float]:
        return {w.workload_name: w.energy_efficiency for w in self.workloads}

    @property
    def mean_efficiency(self) -> float:
        if not self.workloads:
            return 0.0
        return float(np.mean([w.energy_efficiency for w in self.workloads]))

    @property
    def baseline_sram_fractions(self) -> dict[str, float]:
        """Share of baseline energy spent in SRAM, per workload."""
        return {
            w.workload_name: w.comparison.baseline.total_energy.fraction("sram")
            for w in self.workloads
        }

    @property
    def sram_reductions(self) -> dict[str, float]:
        """Fractional SRAM energy reduction of SparseTrain, per workload."""
        return {w.workload_name: w.comparison.sram_energy_reduction for w in self.workloads}

    @property
    def combinational_reductions(self) -> dict[str, float]:
        """Fractional combinational-logic energy reduction, per workload."""
        return {
            w.workload_name: w.comparison.combinational_energy_reduction
            for w in self.workloads
        }

    def workload(self, name: str) -> WorkloadResult:
        for entry in self.workloads:
            if entry.workload_name == name:
                return entry
        raise KeyError(f"no workload named {name!r}")

    def format(self) -> str:
        lines = [format_energy_table(self.workloads), ""]
        for workload in self.workloads:
            lines.append(format_breakdown(workload))
        return "\n".join(lines)


def _fig9_report_stage(ctx: PipelineContext) -> ExperimentReport:
    result = Fig9Result(workloads=list(ctx["simulate"]))
    payload = {
        "workloads": workload_payload(result.workloads),
        "mean_efficiency": result.mean_efficiency,
        "baseline_sram_fractions": result.baseline_sram_fractions,
        "sram_reductions": result.sram_reductions,
        "combinational_reductions": result.combinational_reductions,
    }
    return ExperimentReport(payload=payload, summary=result.format(), native=result)


@register_experiment(
    "fig9",
    description="Fig. 9 — per-sample training energy, breakdown and efficiency gain",
    category="paper-figures",
    supports_fidelity=True,
)
def build_fig9_pipeline(request: ExperimentRequest) -> Pipeline:
    """The fig8 stage graph with the energy-oriented report stage."""
    return Pipeline(
        "fig9",
        [
            Stage("train", train_stage, "measure per-family operand densities"),
            Stage("profile", profile_stage, "map densities onto full-size specs"),
            Stage("compile", compile_stage, "lower workloads into simulation jobs"),
            Stage("simulate", simulate_stage, "SparseTrain vs dense baseline"),
            Stage("report", _fig9_report_stage, "energy tables and breakdowns"),
        ],
    )


def run_fig9(
    workloads: tuple[tuple[str, str], ...] = QUICK_FIG8_WORKLOADS,
    pruning_rate: float = 0.9,
    scale: ExperimentScale | None = None,
    sparse_config: ArchConfig | None = None,
    baseline_config: ArchConfig | None = None,
    energy_model: EnergyModel | None = None,
    measured: dict[str, MeasuredDensities] | None = None,
    fig8_result: Fig8Result | None = None,
    density_cache: ResultCache | None = None,
    max_workers: int | None = None,
) -> Fig9Result:
    """Regenerate the Fig. 9 energy comparison.

    Pass ``fig8_result`` to reuse an already-simulated Fig. 8 run (the two
    figures share the same workload simulations in the paper as well);
    otherwise the registered ``fig9`` experiment pipeline runs the shared
    train/profile/compile/simulate stages itself.
    """
    if fig8_result is not None:
        return Fig9Result(workloads=list(fig8_result.workloads))
    request = ExperimentRequest(
        experiment="fig9",
        workloads=tuple(workloads),
        pruning_rate=pruning_rate,
        scale=scale,
    )
    result = get_experiment("fig9").run(
        request,
        options=RunOptions(max_workers=max_workers),
        extras={
            "measured": measured,
            "density_cache": density_cache,
            "sparse_config": sparse_config,
            "baseline_config": baseline_config,
            "energy_model": energy_model,
        },
    )
    return result.native
