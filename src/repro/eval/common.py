"""Shared infrastructure for the experiment harnesses.

Every experiment in the paper's evaluation section (Table I, Table II,
Fig. 8, Fig. 9 and the ablations) is regenerated from two ingredients:

* *reduced training runs* — small AlexNet/ResNet-style models trained on
  synthetic data with the real numpy framework, used to measure accuracies
  and operand densities; and
* *full-size shape specs* — the exact AlexNet/ResNet-18/34/152 layer
  geometries of the paper, fed to the architecture simulator together with
  the measured densities.

``ExperimentScale`` centralises the knobs that trade fidelity for runtime so
the same harness can run as a quick benchmark (CI) or a longer, closer
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import Dataset, make_cifar_like
from repro.models.alexnet import build_alexnet
from repro.models.mobilenet import build_mobilenet
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg
from repro.nn.layers.base import Layer
from repro.utils.rng import new_rng, stable_hash_seed


@dataclass(frozen=True)
class ExperimentScale:
    """Resource knobs shared by the experiment harnesses.

    Attributes
    ----------
    num_samples:
        Synthetic dataset size.
    num_classes:
        Number of classes of the synthetic task.
    image_size:
        Synthetic image side length (16 keeps numpy training fast; 32 gives
        CIFAR-shaped runs).
    epochs:
        Training epochs per configuration.
    batch_size:
        Mini-batch size.
    width_scale:
        Channel-width multiplier of the reduced AlexNet.
    resnet_blocks:
        Blocks per stage of the reduced ResNet.
    seed:
        Base seed; every (model, dataset, pruning) configuration derives its
        own stream from it.
    """

    num_samples: int = 480
    num_classes: int = 4
    image_size: int = 16
    epochs: int = 3
    batch_size: int = 32
    width_scale: float = 0.15
    resnet_blocks: tuple[int, ...] = (1, 1)
    resnet_width: int = 8
    seed: int = 7

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Fast settings used by the benchmark suite."""
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny settings for CI smoke runs (seconds instead of minutes)."""
        return cls(num_samples=96, epochs=1)

    @classmethod
    def preset(cls, name: str) -> "ExperimentScale":
        """Look up a named preset (``quick``, ``thorough``, ``smoke``)."""
        presets = {"quick": cls.quick, "thorough": cls.thorough, "smoke": cls.smoke}
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(
                f"unknown scale preset {name!r}; choose from {sorted(presets)}"
            ) from None

    @classmethod
    def thorough(cls) -> "ExperimentScale":
        """Larger settings for a closer (slower) reproduction."""
        return cls(
            num_samples=2048,
            num_classes=8,
            image_size=32,
            epochs=12,
            width_scale=0.5,
            resnet_blocks=(2, 2, 2),
            resnet_width=16,
        )


def synthetic_dataset_for(dataset_name: str, scale: ExperimentScale) -> tuple[Dataset, Dataset]:
    """Build the synthetic stand-in for a paper dataset and split train/test.

    CIFAR-100 stand-ins get twice the class count of CIFAR-10 stand-ins so
    the relative difficulty ordering of the paper's datasets is preserved.
    """
    key = dataset_name.lower()
    num_classes = scale.num_classes
    if "100" in key:
        num_classes = max(scale.num_classes * 2, 4)
    elif "imagenet" in key:
        num_classes = max(scale.num_classes * 2, 8)
    rng = new_rng(stable_hash_seed("dataset", dataset_name, scale.seed))
    dataset = make_cifar_like(
        num_samples=scale.num_samples,
        num_classes=num_classes,
        image_size=scale.image_size,
        rng=rng,
        name=f"synthetic-{dataset_name}",
    )
    return dataset.split(0.8, rng)


def build_reduced_model(model_name: str, num_classes: int, scale: ExperimentScale) -> Layer:
    """Build the reduced runnable counterpart of a paper model.

    AlexNet maps to the Conv-ReLU model, ResNet-<d> maps to a reduced
    basic-block ResNet whose depth grows with ``d`` so the "deeper networks
    get sparser gradients" trend can be observed.  VGG-<d> maps to a reduced
    uniform Conv-ReLU-MaxPool stack and MobileNetV1 to a reduced
    depthwise-separable model, so density measurements see the right
    structural class (Conv-ReLU vs Conv-BN-ReLU) and the grouped dataflow.
    """
    key = model_name.lower().replace("_", "-")
    rng = new_rng(stable_hash_seed("model", model_name, scale.seed))
    if key == "alexnet":
        return build_alexnet(
            num_classes=num_classes,
            image_size=scale.image_size,
            width_scale=scale.width_scale,
            rng=rng,
        )
    if key.startswith("vgg"):
        return build_vgg(
            num_classes=num_classes,
            image_size=scale.image_size,
            width_scale=scale.width_scale,
            rng=rng,
            name=f"{model_name}-mini",
        )
    if key.startswith("mobilenet"):
        return build_mobilenet(
            num_classes=num_classes,
            image_size=scale.image_size,
            width_multiplier=scale.width_scale,
            rng=rng,
            name=f"{model_name}-mini",
        )
    if key.startswith("resnet"):
        try:
            depth = int(key.split("-", 1)[1])
        except (IndexError, ValueError) as exc:
            raise ValueError(f"cannot parse ResNet depth from {model_name!r}") from exc
        # Scale the number of residual blocks with the nominal depth while
        # keeping the reduced model trainable in seconds.
        if depth <= 18:
            blocks = scale.resnet_blocks
        elif depth <= 34:
            blocks = tuple(b + 1 for b in scale.resnet_blocks)
        else:
            blocks = tuple(b + 2 for b in scale.resnet_blocks)
        return build_resnet(
            num_classes=num_classes,
            image_size=scale.image_size,
            blocks_per_stage=blocks,
            base_width=scale.resnet_width,
            rng=rng,
            name=f"{model_name}-mini",
        )
    raise ValueError(f"unknown model {model_name!r}")


def training_rng(scale: ExperimentScale, *context) -> np.random.Generator:
    """Derive a reproducible generator for one experiment configuration."""
    return new_rng(stable_hash_seed(scale.seed, *context))
