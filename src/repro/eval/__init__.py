"""Experiment harnesses regenerating the paper's tables and figures.

==============  =====================================================
Experiment      Entry point
==============  =====================================================
Table I         :func:`repro.eval.table1.run_table1`
Table II        :func:`repro.eval.table2.run_table2`
Fig. 8          :func:`repro.eval.fig8.run_fig8`
Fig. 9          :func:`repro.eval.fig9.run_fig9`
Ablations       :mod:`repro.eval.ablations`
==============  =====================================================
"""

from repro.eval.ablations import (
    FifoAblationPoint,
    SweepPoint,
    run_energy_sensitivity,
    run_fifo_ablation,
    run_pe_sweep,
    run_pruning_rate_sweep,
)
from repro.eval.common import ExperimentScale, build_reduced_model, synthetic_dataset_for
from repro.eval.fig8 import (
    EXTENDED_FIG8_WORKLOADS,
    PAPER_FIG8_WORKLOADS,
    QUICK_FIG8_WORKLOADS,
    Fig8Result,
    measure_family_densities,
    measure_model_densities,
    run_fig8,
)
from repro.eval.fig9 import Fig9Result, run_fig9
from repro.eval.table1 import Table1Result, run_table1
from repro.eval.table2 import (
    PAPER_PRUNING_RATES,
    Table2Cell,
    Table2Result,
    run_table2,
    train_one_cell,
)

__all__ = [
    "ExperimentScale",
    "build_reduced_model",
    "synthetic_dataset_for",
    "Table1Result",
    "run_table1",
    "Table2Cell",
    "Table2Result",
    "run_table2",
    "train_one_cell",
    "PAPER_PRUNING_RATES",
    "Fig8Result",
    "run_fig8",
    "measure_model_densities",
    "measure_family_densities",
    "PAPER_FIG8_WORKLOADS",
    "QUICK_FIG8_WORKLOADS",
    "EXTENDED_FIG8_WORKLOADS",
    "Fig9Result",
    "run_fig9",
    "FifoAblationPoint",
    "SweepPoint",
    "run_fifo_ablation",
    "run_pruning_rate_sweep",
    "run_pe_sweep",
    "run_energy_sensitivity",
]
