"""Disk cache for measured training densities.

Measuring the per-layer operand densities of a model family means training a
reduced model for several epochs — by far the slowest stage of the fig8/fig9
pipeline and of ``python -m repro bench``.  The measurement is a pure
function of (model name, pruning rate, :class:`ExperimentScale`), so repeated
eval/benchmark runs can skip the retraining entirely.

This module reuses the exploration subsystem's append-only JSONL cache
(:class:`repro.explore.cache.ResultCache`): entries are keyed by a stable
content hash of the full measurement description and store the serialized
:class:`~repro.sim.trace.MeasuredDensities`.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Any, Mapping

from repro.api.request import scale_to_dict
from repro.dataflow.counts import LayerDensities
from repro.eval.common import ExperimentScale
from repro.explore.cache import DEFAULT_CACHE_DIR, ResultCache, stable_key
from repro.obs import metrics
from repro.sim.trace import MeasuredDensities

# Lives alongside the sweep cache in the gitignored cache directory.
DEFAULT_DENSITY_CACHE_FILE = "densities.jsonl"

# Bump when the measurement pipeline changes in a way that invalidates old
# cached densities (training loop, profiler, density post-processing).
_SCHEMA_VERSION = 1


def default_density_cache(cache_dir: str | Path = DEFAULT_CACHE_DIR) -> ResultCache:
    """The density cache at its default location inside ``cache_dir``."""
    return ResultCache(Path(cache_dir) / DEFAULT_DENSITY_CACHE_FILE)


def density_cache_key(
    model_name: str, pruning_rate: float, scale: ExperimentScale
) -> str:
    """Stable content hash identifying one density measurement."""
    scale_payload = scale_to_dict(scale)
    return stable_key(
        {
            "kind": "measured-densities",
            "version": _SCHEMA_VERSION,
            "model": model_name,
            "pruning_rate": pruning_rate,
            "scale": scale_payload,
        }
    )


def serialize_measured(measured: MeasuredDensities) -> dict[str, Any]:
    """JSON-serialisable payload for one :class:`MeasuredDensities`."""
    return {
        "layer_names": list(measured.layer_names),
        "densities": {
            name: asdict(measured.densities[name]) for name in measured.layer_names
        },
    }


def deserialize_measured(payload: Mapping[str, Any]) -> MeasuredDensities:
    """Inverse of :func:`serialize_measured`."""
    layer_names = tuple(payload["layer_names"])
    densities = {
        name: LayerDensities(**payload["densities"][name]) for name in layer_names
    }
    return MeasuredDensities(layer_names=layer_names, densities=densities)


def load_cached_densities(
    cache: ResultCache | None,
    model_name: str,
    pruning_rate: float,
    scale: ExperimentScale,
) -> MeasuredDensities | None:
    """Cached measurement for this configuration, or ``None`` on a miss."""
    if cache is None:
        return None
    record = cache.get(density_cache_key(model_name, pruning_rate, scale))
    if record is None:
        return None
    try:
        return deserialize_measured(record)
    except (KeyError, TypeError, ValueError):
        # A foreign/corrupted record under this key: fall back to measuring.
        metrics().counter("cache.corrupt_records", cache=cache.path.stem).inc()
        warnings.warn(
            f"density cache {cache.path}: corrupt record for "
            f"{model_name} (p={pruning_rate}); re-measuring",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def store_cached_densities(
    cache: ResultCache | None,
    model_name: str,
    pruning_rate: float,
    scale: ExperimentScale,
    measured: MeasuredDensities,
) -> None:
    """Persist one measurement (no-op when caching is disabled)."""
    if cache is None:
        return
    cache.put(
        density_cache_key(model_name, pruning_rate, scale),
        serialize_measured(measured),
    )
