"""Ablation studies (E-A1, E-A2) for the design choices the paper calls out.

The paper motivates several design decisions without dedicating a figure to
each; these harnesses quantify them so the claims can be checked:

* **FIFO threshold prediction** (Section III-B) — the predicted threshold
  should track the exact per-batch threshold closely, otherwise the realised
  sparsity would drift from the target.  :func:`run_fifo_ablation` sweeps the
  FIFO depth and reports the relative prediction error and realised density.
* **Pruning-rate sweep** (Section VI) — how speedup and energy efficiency
  scale with the target pruning rate p, using the closed-form expected
  post-pruning density.  :func:`run_pruning_rate_sweep`.
* **PE-count sweep** — how the speedup over the dense baseline behaves as the
  array grows (it should be roughly constant: both architectures scale with
  PE count until DRAM bandwidth dominates).  :func:`run_pe_sweep`.
* **Energy-model sensitivity** — the Fig. 9 efficiency conclusion should not
  hinge on the exact pJ constants.  :func:`run_energy_sensitivity` scales the
  SRAM and DRAM costs and reports how the efficiency ratio moves.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    Stage,
    get_experiment,
    register_experiment,
)
from repro.arch.energy import EnergyModel
from repro.explore.engine import DesignPoint, ExplorationEngine
from repro.pruning.algorithm import AlgorithmTrace, prune_gradient_batches
from repro.pruning.threshold import expected_density_after_pruning
from repro.utils.rng import new_rng


# ---------------------------------------------------------------------------
# E-A1: FIFO threshold prediction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FifoAblationPoint:
    """Result of running the pruning algorithm with one FIFO depth."""

    fifo_depth: int
    mean_prediction_error: float
    max_prediction_error: float
    mean_density_after: float
    target_density: float


def _fifo_prune_stage(ctx: PipelineContext) -> list[FifoAblationPoint]:
    """``prune`` — run the pruning algorithm over a drifting gradient stream."""
    request = ctx.request
    fifo_depths = request.param("fifo_depths", [1, 2, 5, 10, 20])
    target_sparsity = request.param("target_sparsity", 0.9)
    num_batches = request.param("num_batches", 64)
    batch_elements = request.param("batch_elements", 4096)
    sigma_drift = request.param("sigma_drift", 0.02)
    seed = request.param("seed", 0)

    rng = new_rng(seed)
    sigmas = np.cumprod(1.0 + sigma_drift * rng.standard_normal(num_batches)) * 1e-3
    batches = [rng.normal(0.0, sigma, size=batch_elements) for sigma in sigmas]

    points: list[FifoAblationPoint] = []
    for depth in fifo_depths:
        trace = AlgorithmTrace()
        pruned = prune_gradient_batches(
            batches, target_sparsity, depth, rng=new_rng(seed + 1), trace=trace
        )
        errors = trace.prediction_errors
        densities = [
            float(np.count_nonzero(batch) / batch.size) for batch in pruned[depth:]
        ]
        points.append(
            FifoAblationPoint(
                fifo_depth=depth,
                mean_prediction_error=float(np.mean(errors)) if errors else 0.0,
                max_prediction_error=float(np.max(errors)) if errors else 0.0,
                mean_density_after=float(np.mean(densities)) if densities else 1.0,
                target_density=expected_density_after_pruning(target_sparsity),
            )
        )
    return points


def _fifo_report_stage(ctx: PipelineContext) -> ExperimentReport:
    points = ctx["prune"]
    payload = {"points": [asdict(point) for point in points]}
    lines = [f"{'depth':>6} {'mean err':>10} {'max err':>10} {'density':>9} {'target':>9}"]
    for point in points:
        lines.append(
            f"{point.fifo_depth:>6} {point.mean_prediction_error:>10.4f} "
            f"{point.max_prediction_error:>10.4f} {point.mean_density_after:>9.4f} "
            f"{point.target_density:>9.4f}"
        )
    return ExperimentReport(payload=payload, summary="\n".join(lines), native=points)


@register_experiment(
    "ablate-fifo",
    description="E-A1 — FIFO threshold-prediction error and realised density vs depth",
    category="ablations",
)
def build_fifo_ablation_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "ablate-fifo",
        [
            Stage("prune", _fifo_prune_stage, "prune a synthetic gradient stream"),
            Stage("report", _fifo_report_stage, "prediction-error table"),
        ],
    )


def run_fifo_ablation(
    fifo_depths: tuple[int, ...] = (1, 2, 5, 10, 20),
    target_sparsity: float = 0.9,
    num_batches: int = 64,
    batch_elements: int = 4096,
    sigma_drift: float = 0.02,
    seed: int = 0,
) -> list[FifoAblationPoint]:
    """Sweep the FIFO depth on a synthetic stream of gradient batches.

    The gradient scale drifts slowly from batch to batch (``sigma_drift``
    relative change), mimicking the way gradient magnitudes evolve during
    training; the FIFO has to track that drift.  Runs as the registered
    ``ablate-fifo`` pipeline.
    """
    request = ExperimentRequest(
        experiment="ablate-fifo",
        params={
            "fifo_depths": list(fifo_depths),
            "target_sparsity": target_sparsity,
            "num_batches": num_batches,
            "batch_elements": batch_elements,
            "sigma_drift": sigma_drift,
            "seed": seed,
        },
    )
    return get_experiment("ablate-fifo").run(request).native


# ---------------------------------------------------------------------------
# E-A2: pruning-rate, PE-count and energy-model sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One point of a speedup/efficiency sweep."""

    parameter: float
    speedup: float
    energy_efficiency: float


def _sweep_simulate_stage(ctx: PipelineContext) -> list[SweepPoint]:
    """``simulate`` — evaluate the compiled points through the engine.

    The ablation pipelines share the engine's evaluation path (analytic
    densities, matched-resource configs) with the survey-scale sweeps of
    ``python -m repro sweep``; they stay uncached so calling them is
    side-effect free, and serial unless the run options ask for workers
    (``--workers N`` routes here uniformly, like every other experiment).
    The engine returns one record per *unique* point, so records are matched
    back to the requested points by key — a repeated parameter value yields
    a repeated (correctly labelled) sweep point.
    """
    compiled = ctx["compile"]
    points, parameters = compiled["points"], compiled["parameters"]
    options = ctx.options
    engine = ExplorationEngine(
        cache=None,
        max_workers=options.max_workers,
        parallel=options.parallel and (options.max_workers or 1) > 1,
    )
    by_key = {record.key: record for record in engine.run(points)}
    return [
        SweepPoint(
            parameter=parameter,
            speedup=by_key[point.key].speedup,
            energy_efficiency=by_key[point.key].energy_efficiency,
        )
        for parameter, point in zip(parameters, points)
    ]


def _sweep_report_stage(ctx: PipelineContext) -> ExperimentReport:
    points = ctx["simulate"]
    payload = {"points": [asdict(point) for point in points]}
    lines = [f"{'parameter':>12} {'speedup':>9} {'efficiency':>11}"]
    for point in points:
        lines.append(
            f"{point.parameter:>12.4g} {point.speedup:>9.3f} "
            f"{point.energy_efficiency:>11.3f}"
        )
    return ExperimentReport(payload=payload, summary="\n".join(lines), native=points)


def _sweep_pipeline(name: str, compile_stage) -> Pipeline:
    return Pipeline(
        name,
        [
            Stage("compile", compile_stage, "build the design points"),
            Stage("simulate", _sweep_simulate_stage, "evaluate through the engine"),
            Stage("report", _sweep_report_stage, "speedup/efficiency table"),
        ],
    )


def _rate_compile_stage(ctx: PipelineContext) -> dict:
    request = ctx.request
    model = request.param("model", "AlexNet")
    dataset = request.param("dataset", "CIFAR-10")
    rates = request.param("pruning_rates", [0.0, 0.5, 0.7, 0.8, 0.9, 0.99])
    points = [
        DesignPoint.from_assignment(model, dataset, {"pruning_rate": rate})
        for rate in rates
    ]
    return {"points": points, "parameters": tuple(rates)}


def _pes_compile_stage(ctx: PipelineContext) -> dict:
    request = ctx.request
    model = request.param("model", "AlexNet")
    dataset = request.param("dataset", "CIFAR-10")
    counts = request.param("pe_counts", [42, 84, 168, 336])
    points = [
        DesignPoint.from_assignment(
            model, dataset, {"num_pes": count, "pruning_rate": request.pruning_rate}
        )
        for count in counts
    ]
    return {"points": points, "parameters": tuple(float(count) for count in counts)}


def _energy_compile_stage(ctx: PipelineContext) -> dict:
    request = ctx.request
    model = request.param("model", "AlexNet")
    dataset = request.param("dataset", "CIFAR-10")
    component = request.param("component", "sram_pj")
    factors = request.param("scale_factors", [0.5, 1.0, 2.0, 4.0])
    base = EnergyModel()
    if not hasattr(base, component):
        raise ValueError(f"unknown energy-model component {component!r}")
    points = [
        DesignPoint.from_assignment(
            model,
            dataset,
            {"pruning_rate": request.pruning_rate},
            energy_overrides={component: getattr(base, component) * factor},
        )
        for factor in factors
    ]
    return {"points": points, "parameters": tuple(factors)}


@register_experiment(
    "ablate-rate",
    description="E-A2 — speedup/efficiency vs target pruning rate (analytic densities)",
    category="ablations",
)
def build_rate_ablation_pipeline(request: ExperimentRequest) -> Pipeline:
    return _sweep_pipeline("ablate-rate", _rate_compile_stage)


@register_experiment(
    "ablate-pes",
    description="E-A2 — speedup/efficiency vs PE count, both architectures scaled",
    category="ablations",
)
def build_pe_ablation_pipeline(request: ExperimentRequest) -> Pipeline:
    return _sweep_pipeline("ablate-pes", _pes_compile_stage)


@register_experiment(
    "ablate-energy",
    description="E-A2 — efficiency sensitivity to one energy-model constant",
    category="ablations",
)
def build_energy_ablation_pipeline(request: ExperimentRequest) -> Pipeline:
    return _sweep_pipeline("ablate-energy", _energy_compile_stage)


def run_pruning_rate_sweep(
    pruning_rates: tuple[float, ...] = (0.0, 0.5, 0.7, 0.8, 0.9, 0.99),
    model: str = "AlexNet",
    dataset: str = "CIFAR-10",
) -> list[SweepPoint]:
    """Speedup / efficiency vs target pruning rate, with analytic densities."""
    request = ExperimentRequest(
        experiment="ablate-rate",
        params={
            "model": model,
            "dataset": dataset,
            "pruning_rates": list(pruning_rates),
        },
    )
    return get_experiment("ablate-rate").run(request).native


def run_pe_sweep(
    pe_counts: tuple[int, ...] = (42, 84, 168, 336),
    model: str = "AlexNet",
    dataset: str = "CIFAR-10",
    pruning_rate: float = 0.9,
) -> list[SweepPoint]:
    """Speedup / efficiency vs PE count (both architectures scaled together)."""
    request = ExperimentRequest(
        experiment="ablate-pes",
        pruning_rate=pruning_rate,
        params={"model": model, "dataset": dataset, "pe_counts": list(pe_counts)},
    )
    return get_experiment("ablate-pes").run(request).native


def run_energy_sensitivity(
    scale_factors: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    component: str = "sram_pj",
    model: str = "AlexNet",
    dataset: str = "CIFAR-10",
    pruning_rate: float = 0.9,
) -> list[SweepPoint]:
    """Energy-efficiency sensitivity to one energy-model constant.

    ``component`` is an :class:`~repro.arch.energy.EnergyModel` field name
    (``"sram_pj"``, ``"dram_pj"``, ``"mac_pj"``, ``"reg_pj"``).
    """
    request = ExperimentRequest(
        experiment="ablate-energy",
        pruning_rate=pruning_rate,
        params={
            "model": model,
            "dataset": dataset,
            "component": component,
            "scale_factors": list(scale_factors),
        },
    )
    return get_experiment("ablate-energy").run(request).native
