"""Ablation studies (E-A1, E-A2) for the design choices the paper calls out.

The paper motivates several design decisions without dedicating a figure to
each; these harnesses quantify them so the claims can be checked:

* **FIFO threshold prediction** (Section III-B) — the predicted threshold
  should track the exact per-batch threshold closely, otherwise the realised
  sparsity would drift from the target.  :func:`run_fifo_ablation` sweeps the
  FIFO depth and reports the relative prediction error and realised density.
* **Pruning-rate sweep** (Section VI) — how speedup and energy efficiency
  scale with the target pruning rate p, using the closed-form expected
  post-pruning density.  :func:`run_pruning_rate_sweep`.
* **PE-count sweep** — how the speedup over the dense baseline behaves as the
  array grows (it should be roughly constant: both architectures scale with
  PE count until DRAM bandwidth dominates).  :func:`run_pe_sweep`.
* **Energy-model sensitivity** — the Fig. 9 efficiency conclusion should not
  hinge on the exact pJ constants.  :func:`run_energy_sensitivity` scales the
  SRAM and DRAM costs and reports how the efficiency ratio moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.energy import EnergyModel
from repro.explore.engine import DesignPoint, ExplorationEngine
from repro.pruning.algorithm import AlgorithmTrace, prune_gradient_batches
from repro.pruning.threshold import expected_density_after_pruning
from repro.utils.rng import new_rng


# ---------------------------------------------------------------------------
# E-A1: FIFO threshold prediction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FifoAblationPoint:
    """Result of running the pruning algorithm with one FIFO depth."""

    fifo_depth: int
    mean_prediction_error: float
    max_prediction_error: float
    mean_density_after: float
    target_density: float


def run_fifo_ablation(
    fifo_depths: tuple[int, ...] = (1, 2, 5, 10, 20),
    target_sparsity: float = 0.9,
    num_batches: int = 64,
    batch_elements: int = 4096,
    sigma_drift: float = 0.02,
    seed: int = 0,
) -> list[FifoAblationPoint]:
    """Sweep the FIFO depth on a synthetic stream of gradient batches.

    The gradient scale drifts slowly from batch to batch (``sigma_drift``
    relative change), mimicking the way gradient magnitudes evolve during
    training; the FIFO has to track that drift.
    """
    rng = new_rng(seed)
    sigmas = np.cumprod(1.0 + sigma_drift * rng.standard_normal(num_batches)) * 1e-3
    batches = [rng.normal(0.0, sigma, size=batch_elements) for sigma in sigmas]

    points: list[FifoAblationPoint] = []
    for depth in fifo_depths:
        trace = AlgorithmTrace()
        pruned = prune_gradient_batches(
            batches, target_sparsity, depth, rng=new_rng(seed + 1), trace=trace
        )
        errors = trace.prediction_errors
        densities = [
            float(np.count_nonzero(batch) / batch.size) for batch in pruned[depth:]
        ]
        points.append(
            FifoAblationPoint(
                fifo_depth=depth,
                mean_prediction_error=float(np.mean(errors)) if errors else 0.0,
                max_prediction_error=float(np.max(errors)) if errors else 0.0,
                mean_density_after=float(np.mean(densities)) if densities else 1.0,
                target_density=expected_density_after_pruning(target_sparsity),
            )
        )
    return points


# ---------------------------------------------------------------------------
# E-A2: pruning-rate, PE-count and energy-model sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One point of a speedup/efficiency sweep."""

    parameter: float
    speedup: float
    energy_efficiency: float


def _sweep(points: list[DesignPoint], parameters: tuple[float, ...]) -> list[SweepPoint]:
    """Evaluate design points through the exploration engine, serially.

    The ablation harnesses share the engine's evaluation path (analytic
    densities, matched-resource configs) with the survey-scale sweeps of
    ``python -m repro sweep``; they stay serial and uncached so calling them
    is side-effect free.  The engine returns one record per *unique* point,
    so records are matched back to the requested points by key — a repeated
    parameter value yields a repeated (correctly labelled) sweep point.
    """
    engine = ExplorationEngine(cache=None, parallel=False)
    by_key = {record.key: record for record in engine.run(points)}
    return [
        SweepPoint(
            parameter=parameter,
            speedup=by_key[point.key].speedup,
            energy_efficiency=by_key[point.key].energy_efficiency,
        )
        for parameter, point in zip(parameters, points)
    ]


def run_pruning_rate_sweep(
    pruning_rates: tuple[float, ...] = (0.0, 0.5, 0.7, 0.8, 0.9, 0.99),
    model: str = "AlexNet",
    dataset: str = "CIFAR-10",
) -> list[SweepPoint]:
    """Speedup / efficiency vs target pruning rate, with analytic densities."""
    points = [
        DesignPoint.from_assignment(model, dataset, {"pruning_rate": rate})
        for rate in pruning_rates
    ]
    return _sweep(points, tuple(pruning_rates))


def run_pe_sweep(
    pe_counts: tuple[int, ...] = (42, 84, 168, 336),
    model: str = "AlexNet",
    dataset: str = "CIFAR-10",
    pruning_rate: float = 0.9,
) -> list[SweepPoint]:
    """Speedup / efficiency vs PE count (both architectures scaled together)."""
    points = [
        DesignPoint.from_assignment(
            model, dataset, {"num_pes": count, "pruning_rate": pruning_rate}
        )
        for count in pe_counts
    ]
    return _sweep(points, tuple(float(count) for count in pe_counts))


def run_energy_sensitivity(
    scale_factors: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    component: str = "sram_pj",
    model: str = "AlexNet",
    dataset: str = "CIFAR-10",
    pruning_rate: float = 0.9,
) -> list[SweepPoint]:
    """Energy-efficiency sensitivity to one energy-model constant.

    ``component`` is an :class:`~repro.arch.energy.EnergyModel` field name
    (``"sram_pj"``, ``"dram_pj"``, ``"mac_pj"``, ``"reg_pj"``).
    """
    base = EnergyModel()
    if not hasattr(base, component):
        raise ValueError(f"unknown energy-model component {component!r}")
    points = [
        DesignPoint.from_assignment(
            model,
            dataset,
            {"pruning_rate": pruning_rate},
            energy_overrides={component: getattr(base, component) * factor},
        )
        for factor in scale_factors
    ]
    return _sweep(points, tuple(scale_factors))
