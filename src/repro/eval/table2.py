"""Experiment E-T2 — reproduce Table II (accuracy and gradient density vs p).

The paper trains AlexNet and ResNet-18/34/152 on CIFAR-10/100 and ImageNet at
pruning rates p in {70, 80, 90, 99}% and reports, per configuration, the final
accuracy and the non-zero density of the output activation gradients
(``rho_nnz``).  The claims the table supports:

1. accuracy is essentially unchanged up to p = 90% (and often at 99%),
2. the gradient density drops by roughly 3-10x,
3. deeper networks end up with lower gradient density.

This harness reproduces the table's *shape* on reduced models and synthetic
datasets: every (model, dataset) row is trained once per pruning rate with
identical seeds and hyper-parameters, and accuracy plus measured ``rho_nnz``
are reported.  Absolute accuracies differ from the paper (different task);
what must hold is the relation between the pruned rows and the unpruned
baseline row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import (
    ExperimentReport,
    ExperimentRequest,
    Pipeline,
    PipelineContext,
    Stage,
    get_experiment,
    register_experiment,
)
from repro.eval.common import (
    ExperimentScale,
    build_reduced_model,
    synthetic_dataset_for,
    training_rng,
)
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer, TrainingHistory
from repro.pruning.config import PruningConfig
from repro.pruning.controller import PruningController
from repro.sparsity.profiler import SparsityProfiler

# Pruning rates evaluated in the paper's Table II (None = unpruned baseline).
PAPER_PRUNING_RATES: tuple[float | None, ...] = (None, 0.7, 0.8, 0.9, 0.99)


@dataclass(frozen=True)
class Table2Cell:
    """One (model, dataset, pruning rate) measurement."""

    model: str
    dataset: str
    pruning_rate: float | None
    accuracy: float
    train_accuracy: float
    grad_density: float
    history: TrainingHistory

    @property
    def is_baseline(self) -> bool:
        return self.pruning_rate is None


@dataclass
class Table2Result:
    """All measurements of the Table II reproduction."""

    cells: list[Table2Cell] = field(default_factory=list)

    def rows(self) -> list[tuple[str, str]]:
        """Distinct (model, dataset) pairs in insertion order."""
        seen: list[tuple[str, str]] = []
        for cell in self.cells:
            key = (cell.model, cell.dataset)
            if key not in seen:
                seen.append(key)
        return seen

    def cell(self, model: str, dataset: str, pruning_rate: float | None) -> Table2Cell:
        for entry in self.cells:
            if (
                entry.model == model
                and entry.dataset == dataset
                and entry.pruning_rate == pruning_rate
            ):
                return entry
        raise KeyError(f"no cell for ({model}, {dataset}, p={pruning_rate})")

    def baseline(self, model: str, dataset: str) -> Table2Cell:
        return self.cell(model, dataset, None)

    def max_accuracy_drop(self, max_rate: float = 0.9) -> float:
        """Largest accuracy drop vs the baseline over rates <= ``max_rate``."""
        worst = 0.0
        for model, dataset in self.rows():
            base = self.baseline(model, dataset).accuracy
            for cell in self.cells:
                if (
                    cell.model == model
                    and cell.dataset == dataset
                    and cell.pruning_rate is not None
                    and cell.pruning_rate <= max_rate
                ):
                    worst = max(worst, base - cell.accuracy)
        return worst

    def format(self) -> str:
        """Render the table in the paper's layout (acc% and rho_nnz per p)."""
        rates = [r for r in PAPER_PRUNING_RATES if r is not None]
        header = f"{'Model':<14}{'Dataset':<12}{'Baseline':>16}"
        for rate in rates:
            header += f"{f'p={rate:.0%}':>16}"
        lines = [header, "-" * len(header)]
        for model, dataset in self.rows():
            try:
                base = self.baseline(model, dataset)
                base_text = f"{base.accuracy * 100:>8.2f}/{base.grad_density:>6.3f}"
            except KeyError:
                # Grids swept without an unpruned baseline row still format.
                base_text = f"{'--':>15}"
            line = f"{model:<14}{dataset:<12}{base_text}"
            for rate in rates:
                try:
                    cell = self.cell(model, dataset, rate)
                except KeyError:
                    line += f"{'--':>16}"
                    continue
                line += f"{cell.accuracy * 100:>8.2f}/{cell.grad_density:>6.3f}"
            lines.append(line)
        lines.append("-" * len(header))
        lines.append("Each cell is accuracy% / mean dO density (rho_nnz).")
        return "\n".join(lines)


def _learning_rate_for(model_name: str) -> float:
    """Reduced-model learning rate (AlexNet has no BN and needs a gentler lr)."""
    return 0.01 if model_name.lower() == "alexnet" else 0.05


def train_one_cell(
    model_name: str,
    dataset_name: str,
    pruning_rate: float | None,
    scale: ExperimentScale,
    fifo_depth: int = 5,
) -> Table2Cell:
    """Train one (model, dataset, pruning-rate) configuration and measure it."""
    train, test = synthetic_dataset_for(dataset_name, scale)
    model = build_reduced_model(model_name, train.num_classes, scale)

    callbacks = []
    if pruning_rate is not None:
        controller = PruningController(
            model,
            PruningConfig(target_sparsity=pruning_rate, fifo_depth=fifo_depth, seed=scale.seed),
        )
        callbacks.append(controller)
    profiler = SparsityProfiler(model)
    callbacks.append(profiler)

    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=_learning_rate_for(model_name), momentum=0.9, weight_decay=5e-4),
        callbacks=callbacks,
    )
    history = trainer.fit(
        train.images,
        train.labels,
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        test_images=test.images,
        test_labels=test.labels,
        shuffle_rng=training_rng(scale, "table2", model_name, dataset_name, pruning_rate),
    )

    grad_densities = [
        trace["grad_output"] for trace in profiler.mean_densities().values()
    ]
    accuracy = history.best_test_accuracy
    return Table2Cell(
        model=model_name,
        dataset=dataset_name,
        pruning_rate=pruning_rate,
        accuracy=float(accuracy) if accuracy is not None else history.final_train_accuracy,
        train_accuracy=history.final_train_accuracy,
        grad_density=float(np.mean(grad_densities)) if grad_densities else 1.0,
        history=history,
    )


# ---------------------------------------------------------------------------
# The table2 pipeline: train -> report
# ---------------------------------------------------------------------------

def _train_cell_job(
    job: tuple[str, str, float | None, ExperimentScale],
) -> Table2Cell:
    """Picklable unit of work for the grid fan-out (one cell per worker)."""
    model_name, dataset_name, rate, scale = job
    return train_one_cell(model_name, dataset_name, rate, scale)


def _train_stage(ctx: PipelineContext) -> list[Table2Cell]:
    """``train`` — one training run per (model, dataset, pruning-rate) cell.

    Cells fan out over the pipeline's shared Runner (``--workers N`` routes
    here through :class:`RunOptions`); every cell seeds its own training RNG,
    so serial and parallel grids are bit-identical.
    """
    request = ctx.request
    models = request.param("models", ["AlexNet", "ResNet-18"])
    datasets = request.param("datasets", ["CIFAR-10"])
    rates = request.param("pruning_rates", list(PAPER_PRUNING_RATES))
    jobs = [
        (model_name, dataset_name, rate, request.scale)
        for model_name in models
        for dataset_name in datasets
        for rate in rates
    ]
    return ctx.runner.map(_train_cell_job, jobs)


def _report_stage(ctx: PipelineContext) -> ExperimentReport:
    result = Table2Result(cells=list(ctx["train"]))
    try:
        max_drop = result.max_accuracy_drop(0.9)
    except KeyError:
        # No unpruned baseline cells in this grid: the drop is undefined.
        max_drop = None
    payload = {
        "max_accuracy_drop_p90": max_drop,
        "cells": [
            {
                "model": cell.model,
                "dataset": cell.dataset,
                "pruning_rate": cell.pruning_rate,
                "accuracy": cell.accuracy,
                "train_accuracy": cell.train_accuracy,
                "grad_density": cell.grad_density,
            }
            for cell in result.cells
        ],
    }
    return ExperimentReport(payload=payload, summary=result.format(), native=result)


@register_experiment(
    "table2",
    description="Table II — accuracy and gradient density vs pruning rate p",
    category="paper-tables",
)
def build_table2_pipeline(request: ExperimentRequest) -> Pipeline:
    return Pipeline(
        "table2",
        [
            Stage("train", _train_stage, "train every grid cell"),
            Stage("report", _report_stage, "accuracy / rho_nnz table"),
        ],
    )


def run_table2(
    models: tuple[str, ...] = ("AlexNet", "ResNet-18"),
    datasets: tuple[str, ...] = ("CIFAR-10",),
    pruning_rates: tuple[float | None, ...] = PAPER_PRUNING_RATES,
    scale: ExperimentScale | None = None,
) -> Table2Result:
    """Run the Table II grid.

    A thin wrapper over the registered ``table2`` experiment pipeline.  The
    default grid (two models, one dataset, five pruning rates) is sized so
    the whole experiment runs in a couple of minutes; pass more models,
    datasets and :meth:`ExperimentScale.thorough` for a closer reproduction of
    the paper's 11-row table.
    """
    request = ExperimentRequest(
        experiment="table2",
        scale=scale,
        params={
            "models": list(models),
            "datasets": list(datasets),
            "pruning_rates": list(pruning_rates),
        },
    )
    return get_experiment("table2").run(request).native
