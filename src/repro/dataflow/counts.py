"""Closed-form operation and traffic counts for the sparse training dataflow.

The PE-level simulator in :mod:`repro.arch.pe` counts cycles by executing row
operations one operand at a time; that is exact but far too slow for
full-size AlexNet/ResNet layers.  This module provides the layer-level
expected-value counterparts: given a :class:`~repro.models.spec.ConvLayerSpec`
and the operand densities of the layer, it computes how many row operations,
processed operands, MACs, register accesses and buffer words each of the three
training steps needs.  The architecture simulator turns these into cycles and
energy.

All formulas are per *sample*; batching is a pure multiplier handled by the
caller.  The same formulas with all densities forced to 1.0 and compression
disabled describe the dense baseline, so SparseTrain-vs-baseline comparisons
use one code path and differ only in the inputs — exactly the experimental
control the paper applies.

Grouped/depthwise convolutions are first-class: every per-channel product in
the row-operation counts uses the *group* fan-in/fan-out
(:attr:`~repro.models.spec.ConvLayerSpec.group_in_channels` /
``group_out_channels``) rather than the full channel counts, so MAC, operand
and weight accounting stays exact for MobileNet-style layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.models.spec import ConvLayerSpec
from repro.utils.validation import check_probability


class StepKind(Enum):
    """The three accelerated stages of CNN training."""

    FORWARD = "forward"
    GTA = "gta"
    GTW = "gtw"


@dataclass(frozen=True)
class LayerDensities:
    """Operand densities of one convolution layer during training.

    Attributes
    ----------
    input_density:
        Density of the input activations ``I`` (natural sparsity from the
        preceding ReLU/MaxPool; 1.0 for the first layer).
    grad_output_density:
        Density of the output activation gradients ``dO`` as seen by the
        accelerator — i.e. *after* gradient pruning when pruning is enabled.
    mask_density:
        Density of the forward ReLU mask over the layer's input positions;
        this is the fraction of ``dI`` values the GTA step actually has to
        produce (MSRC output skipping).
    grad_input_density:
        Density of the propagated gradient ``dI`` after masking/pruning, which
        determines how many words the PPU writes back in compressed form.
    output_density:
        Density of the output activations ``O`` after the following
        ReLU/MaxPool, which determines the compressed write-back volume of the
        Forward step.
    """

    input_density: float = 1.0
    grad_output_density: float = 1.0
    mask_density: float = 1.0
    grad_input_density: float = 1.0
    output_density: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "input_density",
            "grad_output_density",
            "mask_density",
            "grad_input_density",
            "output_density",
        ):
            check_probability(getattr(self, field_name), field_name)

    @classmethod
    def dense(cls) -> "LayerDensities":
        """All-dense densities (the baseline's view of every layer)."""
        return cls()


@dataclass(frozen=True)
class StepCounts:
    """Expected event counts of one training step of one layer (per sample).

    ``processed_operands`` is the number of operand values a PE actually
    consumes (one per cycle in the PE model); ``weight_loads`` is the number
    of kernel-row words loaded into Reg-1.
    """

    step: StepKind
    row_ops: int
    processed_operands: float
    macs: float
    weight_loads: float
    reg_accesses: float
    sram_read_words: float
    sram_write_words: float
    dram_read_words: float
    dram_write_words: float

    @property
    def sram_words(self) -> float:
        return self.sram_read_words + self.sram_write_words

    @property
    def dram_words(self) -> float:
        return self.dram_read_words + self.dram_write_words


# Offsets are packed two per word in the compressed format (16-bit datapath).
OFFSET_PACKING = 2.0


def compressed_words(values):
    """Buffer words for ``values`` non-zero values in compressed format.

    Works element-wise on numpy arrays as well as scalars — the analytic
    cost model (:mod:`repro.analytic.model`) evaluates it over whole design
    grids and must agree with the scalar path bit for bit.
    """
    return values * (1.0 + 1.0 / OFFSET_PACKING)


def skip_factor(density, kernel):
    """Probability that at least one of ``kernel`` aligned positions is live.

    Scalar or element-wise over numpy arrays (see :func:`compressed_words`).
    """
    return 1.0 - (1.0 - density) ** kernel


# Backwards-compatible private aliases (pre-analytic-tier call sites).
_OFFSET_PACKING = OFFSET_PACKING
_compressed_words = compressed_words
_skip_factor = skip_factor


def forward_counts(
    layer: ConvLayerSpec, densities: LayerDensities, sparse: bool = True
) -> StepCounts:
    """Event counts of the Forward step (SRC operations).

    Grouped convolutions: each output channel accumulates over only the
    ``in_channels / groups`` input channels of its group, so the row-operation
    count (and with it MACs, weight loads and operand traffic) uses
    ``layer.group_in_channels`` instead of the full channel fan-in.  With
    ``groups == 1`` the formulas reduce to the standard dense accounting.
    """
    kernel = layer.kernel
    # A dense PE streams the whole padded input row; a sparse PE only sees the
    # non-zero values, and the padding columns are always zero, so its operand
    # count scales with the *unpadded* row length.
    padded_width = layer.in_width + 2 * layer.padding
    row_ops = layer.out_channels * layer.out_height * layer.group_in_channels * kernel

    d_in = densities.input_density if sparse else 1.0
    d_out = densities.output_density if sparse else 1.0

    processed_per_op = (layer.in_width * d_in) if sparse else float(padded_width)
    processed = row_ops * processed_per_op
    macs = processed * kernel
    weight_loads = row_ops * kernel

    input_read_words = (
        row_ops * _compressed_words(processed_per_op) if sparse else row_ops * padded_width
    )
    weight_read_words = weight_loads
    psum_write_words = layer.out_channels * layer.out_height * layer.out_width
    output_write_words = (
        _compressed_words(layer.output_size * d_out) if sparse else layer.output_size
    )
    reg_accesses = 2.0 * macs + processed

    # Weight DRAM traffic is carried by the LoadWeights instruction the
    # compiler emits, so only operand traffic is counted here.
    dram_read = _compressed_words(layer.input_size * d_in) if sparse else layer.input_size
    dram_write = output_write_words

    return StepCounts(
        step=StepKind.FORWARD,
        row_ops=row_ops,
        processed_operands=processed,
        macs=macs,
        weight_loads=weight_loads,
        reg_accesses=reg_accesses,
        sram_read_words=input_read_words + weight_read_words,
        sram_write_words=psum_write_words + output_write_words,
        dram_read_words=dram_read,
        dram_write_words=dram_write,
    )


def gta_counts(
    layer: ConvLayerSpec, densities: LayerDensities, sparse: bool = True
) -> StepCounts:
    """Event counts of the GTA step (MSRC operations).

    Grouped convolutions: each input channel receives gradient contributions
    from only the ``out_channels / groups`` output channels of its group
    (``layer.group_out_channels``), mirroring the grouped Forward accounting.
    """
    kernel = layer.kernel
    row_ops = layer.in_channels * layer.in_height * layer.group_out_channels * kernel

    d_grad = densities.grad_output_density if sparse else 1.0
    d_mask = densities.mask_density if (sparse and layer.has_relu_mask) else 1.0
    d_dI = densities.grad_input_density if sparse else 1.0

    grad_row_nnz = layer.out_width * d_grad
    processed_per_op = grad_row_nnz * _skip_factor(d_mask, kernel)
    processed = row_ops * processed_per_op
    macs = row_ops * grad_row_nnz * kernel * d_mask
    weight_loads = row_ops * kernel

    grad_read_words = (
        row_ops * _compressed_words(grad_row_nnz) if sparse else row_ops * layer.out_width
    )
    mask_read_words = (
        row_ops * (layer.in_width * d_mask) / _OFFSET_PACKING if sparse and layer.has_relu_mask else 0.0
    )
    weight_read_words = weight_loads
    psum_write_words = layer.in_channels * layer.in_height * layer.in_width
    grad_input_write_words = (
        _compressed_words(layer.input_size * d_dI) if sparse else layer.input_size
    )
    reg_accesses = 2.0 * macs + processed

    # Weight DRAM traffic is carried by the LoadWeights instruction.
    dram_read = (
        _compressed_words(layer.output_size * d_grad) if sparse else layer.output_size
    )
    dram_write = grad_input_write_words

    return StepCounts(
        step=StepKind.GTA,
        row_ops=row_ops,
        processed_operands=processed,
        macs=macs,
        weight_loads=weight_loads,
        reg_accesses=reg_accesses,
        sram_read_words=grad_read_words + mask_read_words + weight_read_words,
        sram_write_words=psum_write_words + grad_input_write_words,
        dram_read_words=dram_read,
        dram_write_words=dram_write,
    )


def gtw_counts(
    layer: ConvLayerSpec, densities: LayerDensities, sparse: bool = True
) -> StepCounts:
    """Event counts of the GTW step (OSRC operations).

    Grouped convolutions: the weight-gradient tensor only has
    ``in_channels / groups`` channel slices per output channel, so the
    (f, c, kr) enumeration — and the weight write-back volume via
    ``layer.weight_count`` — shrinks by the group factor.
    """
    kernel = layer.kernel
    padded_width = layer.in_width + 2 * layer.padding
    row_ops = layer.out_channels * layer.group_in_channels * kernel * layer.out_height

    d_in = densities.input_density if sparse else 1.0
    d_grad = densities.grad_output_density if sparse else 1.0

    input_row_length = layer.in_width if sparse else padded_width
    processed_per_op = input_row_length * d_in * _skip_factor(d_grad, kernel)
    processed = row_ops * processed_per_op
    macs = row_ops * input_row_length * d_in * kernel * d_grad
    # OSRC caches dO values in Reg-1 instead of a weight row; count those loads
    # as the gradient-row fetch below, so no separate kernel-row load.
    weight_loads = 0.0

    input_read_words = (
        row_ops * _compressed_words(input_row_length * d_in)
        if sparse
        else row_ops * padded_width
    )
    grad_read_words = (
        row_ops * _compressed_words(layer.out_width * d_grad)
        if sparse
        else row_ops * layer.out_width
    )
    weight_grad_write_words = layer.weight_count
    reg_accesses = 2.0 * macs + processed

    dram_read = (
        _compressed_words(layer.input_size * d_in) + _compressed_words(layer.output_size * d_grad)
        if sparse
        else layer.input_size + layer.output_size
    )
    dram_write = layer.weight_count

    return StepCounts(
        step=StepKind.GTW,
        row_ops=row_ops,
        processed_operands=processed,
        macs=macs,
        weight_loads=weight_loads,
        reg_accesses=reg_accesses,
        sram_read_words=input_read_words + grad_read_words,
        sram_write_words=weight_grad_write_words,
        dram_read_words=dram_read,
        dram_write_words=dram_write,
    )


def layer_counts(
    layer: ConvLayerSpec, densities: LayerDensities, sparse: bool = True
) -> dict[StepKind, StepCounts]:
    """All three training steps of one layer."""
    return {
        StepKind.FORWARD: forward_counts(layer, densities, sparse),
        StepKind.GTA: gta_counts(layer, densities, sparse),
        StepKind.GTW: gtw_counts(layer, densities, sparse),
    }


def total_macs(counts: dict[StepKind, StepCounts]) -> float:
    """Total MACs across the three steps."""
    return sum(step.macs for step in counts.values())


def total_processed(counts: dict[StepKind, StepCounts]) -> float:
    """Total processed operands (the cycle-determining quantity)."""
    return sum(step.processed_operands for step in counts.values())
