"""Compiler from model specifications to accelerator instruction streams.

``compile_training_iteration`` lowers a :class:`~repro.models.spec.ModelSpec`
into the instruction order a training iteration executes on the accelerator:

1. Forward pass, first conv layer to last (SRC steps);
2. Backward pass, last conv layer to first — for every layer the GTA step
   (MSRC) followed by the GTW step (OSRC), matching the paper's Fig. 2 where
   ``dO`` of a layer feeds both products.

Per-layer operand densities come from a ``densities`` mapping (measured by the
sparsity profiler or constructed analytically); layers missing from the map
fall back to fully dense operands.  Compiling with ``sparse=False`` produces
the dense-baseline programme: identical structure, densities forced to 1.0
and no compression.
"""

from __future__ import annotations

from typing import Mapping

from repro.dataflow.counts import LayerDensities, StepKind, gta_counts, gtw_counts, forward_counts
from repro.dataflow.instructions import (
    LoadWeightsInstruction,
    Program,
    StepInstruction,
    StoreOutputInstruction,
    SyncInstruction,
)
from repro.models.spec import ConvLayerSpec, ModelSpec

DensityMap = Mapping[str, LayerDensities]


def _densities_for(layer: ConvLayerSpec, densities: DensityMap | None) -> LayerDensities:
    if densities is None:
        return LayerDensities.dense()
    return densities.get(layer.name, LayerDensities.dense())


def compile_forward(
    spec: ModelSpec, densities: DensityMap | None = None, sparse: bool = True
) -> Program:
    """Compile only the forward pass (useful for inference-style studies)."""
    program = Program(model_name=spec.name, dataset=spec.dataset, sparse=sparse)
    for layer in spec.conv_layers:
        layer_densities = _densities_for(layer, densities)
        counts = forward_counts(layer, layer_densities, sparse)
        program.append(LoadWeightsInstruction(layer.name, layer.weight_count))
        program.append(StepInstruction(layer.name, StepKind.FORWARD, layer, counts))
        program.append(StoreOutputInstruction(layer.name, counts.dram_write_words))
        program.append(SyncInstruction(f"{layer.name}/forward"))
    return program


def compile_training_iteration(
    spec: ModelSpec, densities: DensityMap | None = None, sparse: bool = True
) -> Program:
    """Compile a full training iteration (Forward + GTA + GTW) for one sample."""
    program = Program(model_name=spec.name, dataset=spec.dataset, sparse=sparse)

    # Forward pass: input layer to output layer.
    for layer in spec.conv_layers:
        layer_densities = _densities_for(layer, densities)
        counts = forward_counts(layer, layer_densities, sparse)
        program.append(LoadWeightsInstruction(layer.name, layer.weight_count))
        program.append(StepInstruction(layer.name, StepKind.FORWARD, layer, counts))
        program.append(StoreOutputInstruction(layer.name, counts.dram_write_words))
        program.append(SyncInstruction(f"{layer.name}/forward"))

    # Backward pass: output layer back to input layer; GTA then GTW per layer.
    for layer in reversed(spec.conv_layers):
        layer_densities = _densities_for(layer, densities)
        gta = gta_counts(layer, layer_densities, sparse)
        gtw = gtw_counts(layer, layer_densities, sparse)
        program.append(LoadWeightsInstruction(layer.name, layer.weight_count))
        program.append(StepInstruction(layer.name, StepKind.GTA, layer, gta))
        program.append(StoreOutputInstruction(layer.name, gta.dram_write_words))
        program.append(StepInstruction(layer.name, StepKind.GTW, layer, gtw))
        program.append(StoreOutputInstruction(layer.name, gtw.dram_write_words))
        program.append(SyncInstruction(f"{layer.name}/backward"))
    return program


def uniform_densities(
    spec: ModelSpec,
    input_density: float = 1.0,
    grad_output_density: float = 1.0,
    mask_density: float = 1.0,
    grad_input_density: float = 1.0,
    output_density: float = 1.0,
    dense_first_layer_input: bool = True,
) -> dict[str, LayerDensities]:
    """Build a density map applying the same densities to every conv layer.

    The first convolution of a network reads the raw image, which is dense;
    ``dense_first_layer_input`` keeps its input density at 1.0 (the paper's
    AlexNet conv1 behaves the same way).
    """
    densities: dict[str, LayerDensities] = {}
    for index, layer in enumerate(spec.conv_layers):
        layer_input_density = input_density
        if index == 0 and dense_first_layer_input:
            layer_input_density = 1.0
        densities[layer.name] = LayerDensities(
            input_density=layer_input_density,
            grad_output_density=grad_output_density,
            mask_density=mask_density,
            grad_input_density=grad_input_density,
            output_density=output_density,
        )
    return densities
