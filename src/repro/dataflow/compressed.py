"""Compressed sparse row-vector format.

The SparseTrain architecture stores sparse operands (input activations ``I``
and output activation gradients ``dO``) in a compressed format: the non-zero
values plus an offset vector.  The PPU converts dense results into this format
before writing them back to the global buffer, and the PE's Port-3 consumes
offset vectors to know which output positions of an MSRC operation can be
skipped.

``CompressedRow`` is the software model of that format for one row of a
feature map; ``compress_feature_map`` applies it row-wise to a (C, H, W)
tensor and reports the resulting storage footprint, which the energy model
uses to count buffer traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CompressedRow:
    """One sparse row: non-zero values and their positions.

    Attributes
    ----------
    values:
        The non-zero values, in increasing position order.
    offsets:
        The column index of each value.
    length:
        The logical (dense) length of the row.
    """

    values: np.ndarray
    offsets: np.ndarray
    length: int

    def __post_init__(self) -> None:
        if self.values.shape != self.offsets.shape:
            raise ValueError(
                f"values shape {self.values.shape} != offsets shape {self.offsets.shape}"
            )
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if self.offsets.size and (
            self.offsets.min() < 0 or self.offsets.max() >= self.length
        ):
            raise ValueError("offsets out of range for the declared row length")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of non-zero positions."""
        if self.length == 0:
            return 0.0
        return self.nnz / self.length

    @classmethod
    def from_dense(cls, row: np.ndarray) -> "CompressedRow":
        """Compress a dense 1-D row."""
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"expected a 1-D row, got shape {row.shape}")
        offsets = np.flatnonzero(row)
        return cls(values=row[offsets].copy(), offsets=offsets.astype(np.int64), length=row.size)

    def to_dense(self) -> np.ndarray:
        """Decompress back to a dense 1-D row."""
        dense = np.zeros(self.length, dtype=np.float64)
        dense[self.offsets] = self.values
        return dense

    def storage_words(self, offset_packing: int = 2) -> int:
        """Buffer words needed to store this row in compressed form.

        One word per value plus offsets packed ``offset_packing`` per word
        (offsets are short integers; the default packs two per 16-bit-pair
        word, matching a 16-bit datapath).  Dense storage would use
        ``length`` words, so compression wins whenever
        ``nnz * (1 + 1/packing) < length``.
        """
        if offset_packing <= 0:
            raise ValueError(f"offset_packing must be positive, got {offset_packing}")
        offset_words = int(np.ceil(self.nnz / offset_packing))
        return self.nnz + offset_words


@dataclass(frozen=True)
class CompressedFeatureMap:
    """Row-wise compression of a (C, H, W) feature map."""

    rows: tuple[tuple[CompressedRow, ...], ...]  # [channel][row]
    channels: int
    height: int
    width: int

    @property
    def nnz(self) -> int:
        return sum(row.nnz for channel in self.rows for row in channel)

    @property
    def dense_words(self) -> int:
        return self.channels * self.height * self.width

    def storage_words(self, offset_packing: int = 2) -> int:
        """Total compressed storage in buffer words."""
        return sum(
            row.storage_words(offset_packing) for channel in self.rows for row in channel
        )

    @property
    def density(self) -> float:
        if self.dense_words == 0:
            return 0.0
        return self.nnz / self.dense_words

    def row(self, channel: int, row_index: int) -> CompressedRow:
        return self.rows[channel][row_index]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.channels, self.height, self.width), dtype=np.float64)
        for c, channel_rows in enumerate(self.rows):
            for r, row in enumerate(channel_rows):
                dense[c, r] = row.to_dense()
        return dense


def compress_feature_map(feature_map: np.ndarray) -> CompressedFeatureMap:
    """Compress a (C, H, W) feature map row by row."""
    feature_map = np.asarray(feature_map, dtype=np.float64)
    if feature_map.ndim != 3:
        raise ValueError(f"expected a (C, H, W) tensor, got shape {feature_map.shape}")
    channels, height, width = feature_map.shape
    rows = tuple(
        tuple(CompressedRow.from_dense(feature_map[c, r]) for r in range(height))
        for c in range(channels)
    )
    return CompressedFeatureMap(rows=rows, channels=channels, height=height, width=width)


def compression_ratio(feature_map: np.ndarray, offset_packing: int = 2) -> float:
    """Dense-to-compressed storage ratio for a feature map (>1 means smaller)."""
    compressed = compress_feature_map(feature_map)
    words = compressed.storage_words(offset_packing)
    if words == 0:
        return float("inf")
    return compressed.dense_words / words
