"""Compressed sparse row-vector format.

The SparseTrain architecture stores sparse operands (input activations ``I``
and output activation gradients ``dO``) in a compressed format: the non-zero
values plus an offset vector.  The PPU converts dense results into this format
before writing them back to the global buffer, and the PE's Port-3 consumes
offset vectors to know which output positions of an MSRC operation can be
skipped.

``CompressedRow`` is the software model of that format for one row of a
feature map; ``compress_feature_map`` applies it row-wise to a (C, H, W)
tensor and reports the resulting storage footprint, which the energy model
uses to count buffer traffic.

``CompressedRowBatch`` is the structure-of-arrays counterpart used by the
vectorized execution engine: the values/offsets of many rows pooled into two
flat arrays plus per-row extents, so a whole layer-step of row operations can
be consumed by a handful of numpy gather/scatter calls instead of a Python
loop per row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class CompressedRow:
    """One sparse row: non-zero values and their positions.

    Attributes
    ----------
    values:
        The non-zero values, in increasing position order.
    offsets:
        The column index of each value.
    length:
        The logical (dense) length of the row.
    """

    values: np.ndarray
    offsets: np.ndarray
    length: int

    def __post_init__(self) -> None:
        if self.values.shape != self.offsets.shape:
            raise ValueError(
                f"values shape {self.values.shape} != offsets shape {self.offsets.shape}"
            )
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if self.offsets.size and (
            self.offsets.min() < 0 or self.offsets.max() >= self.length
        ):
            raise ValueError("offsets out of range for the declared row length")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of non-zero positions."""
        if self.length == 0:
            return 0.0
        return self.nnz / self.length

    @classmethod
    def from_dense(cls, row: np.ndarray) -> "CompressedRow":
        """Compress a dense 1-D row."""
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"expected a 1-D row, got shape {row.shape}")
        offsets = np.flatnonzero(row)
        return cls(values=row[offsets].copy(), offsets=offsets.astype(np.int64), length=row.size)

    def to_dense(self) -> np.ndarray:
        """Decompress back to a dense 1-D row."""
        dense = np.zeros(self.length, dtype=np.float64)
        dense[self.offsets] = self.values
        return dense

    def storage_words(self, offset_packing: int = 2) -> int:
        """Buffer words needed to store this row in compressed form.

        One word per value plus offsets packed ``offset_packing`` per word
        (offsets are short integers; the default packs two per 16-bit-pair
        word, matching a 16-bit datapath).  Dense storage would use
        ``length`` words, so compression wins whenever
        ``nnz * (1 + 1/packing) < length``.
        """
        if offset_packing <= 0:
            raise ValueError(f"offset_packing must be positive, got {offset_packing}")
        offset_words = int(np.ceil(self.nnz / offset_packing))
        return self.nnz + offset_words


@dataclass(frozen=True)
class CompressedRowBatch:
    """Structure-of-arrays layout for a batch of compressed rows.

    All values and offsets are pooled into two flat arrays; ``row_starts`` is
    the (n_rows + 1)-element extents vector such that row ``i`` owns the slice
    ``[row_starts[i], row_starts[i + 1])`` of both pools.  ``lengths`` keeps
    every row's logical (dense) length, which may differ between rows.

    This is the operand layout the vectorized PE kernels consume: one batch
    per layer-step means the per-operand arithmetic of hundreds of row
    operations happens in single numpy calls.
    """

    values: np.ndarray      # (total_nnz,) pooled non-zero values
    offsets: np.ndarray     # (total_nnz,) pooled column indices
    row_starts: np.ndarray  # (n_rows + 1,) extents into the pools
    lengths: np.ndarray     # (n_rows,) logical row lengths

    def __post_init__(self) -> None:
        if self.values.shape != self.offsets.shape:
            raise ValueError(
                f"values shape {self.values.shape} != offsets shape {self.offsets.shape}"
            )
        if self.row_starts.ndim != 1 or self.row_starts.size == 0:
            raise ValueError("row_starts must be a non-empty 1-D extents vector")
        if self.lengths.shape != (self.row_starts.size - 1,):
            raise ValueError(
                f"lengths shape {self.lengths.shape} inconsistent with "
                f"{self.row_starts.size - 1} rows"
            )
        if int(self.row_starts[0]) != 0 or int(self.row_starts[-1]) != self.values.size:
            raise ValueError("row_starts must span exactly the pooled arrays")

    @property
    def n_rows(self) -> int:
        return int(self.lengths.size)

    def __len__(self) -> int:
        return self.n_rows

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def nnz_per_row(self) -> np.ndarray:
        """Stored-value count of every row, shape (n_rows,)."""
        return np.diff(self.row_starts)

    @classmethod
    def from_rows(cls, rows: Sequence[CompressedRow] | Iterable[CompressedRow]) -> "CompressedRowBatch":
        """Pool a sequence of :class:`CompressedRow` into SoA form."""
        rows = list(rows)
        value_arrays = [row.values for row in rows]
        counts = np.fromiter(map(len, value_arrays), dtype=np.int64, count=len(rows))
        row_starts = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=row_starts[1:])
        if rows:
            values = np.concatenate(value_arrays)
            offsets = np.concatenate([row.offsets for row in rows])
        else:
            values = np.zeros(0, dtype=np.float64)
            offsets = np.zeros(0, dtype=np.int64)
        lengths = np.fromiter((row.length for row in rows), dtype=np.int64, count=len(rows))
        return cls(
            values=np.asarray(values, dtype=np.float64),
            offsets=np.asarray(offsets, dtype=np.int64),
            row_starts=row_starts,
            lengths=lengths,
        )

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "CompressedRowBatch":
        """Compress every row of a dense 2-D array into one batch."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        flat_offsets = np.flatnonzero(matrix)
        row_ids, offsets = np.divmod(flat_offsets, matrix.shape[1])
        counts = np.bincount(row_ids, minlength=matrix.shape[0]).astype(np.int64)
        row_starts = np.zeros(matrix.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=row_starts[1:])
        return cls(
            values=matrix.reshape(-1)[flat_offsets].copy(),
            offsets=offsets.astype(np.int64),
            row_starts=row_starts,
            lengths=np.full(matrix.shape[0], matrix.shape[1], dtype=np.int64),
        )

    def row(self, index: int) -> CompressedRow:
        """Materialise one row back into AoS form."""
        start, stop = int(self.row_starts[index]), int(self.row_starts[index + 1])
        return CompressedRow(
            values=self.values[start:stop],
            offsets=self.offsets[start:stop],
            length=int(self.lengths[index]),
        )

    def __iter__(self) -> Iterator[CompressedRow]:
        for index in range(self.n_rows):
            yield self.row(index)

    def to_dense(self) -> np.ndarray:
        """Decompress into a dense 2-D array (rows must share one length)."""
        if self.n_rows == 0:
            return np.zeros((0, 0), dtype=np.float64)
        width = int(self.lengths[0])
        if np.any(self.lengths != width):
            raise ValueError("to_dense requires all rows to have the same length")
        dense = np.zeros(self.n_rows * width, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.nnz_per_row)
        dense[row_ids * width + self.offsets] = self.values
        return dense.reshape(self.n_rows, width)

    def flat_positions(self) -> np.ndarray:
        """Pool-relative dense position of every stored value.

        Returns ``concat_starts[row] + offset`` where ``concat_starts`` is the
        cumulative sum of ``lengths`` — i.e. the index of each value in the
        concatenation of all dense rows.  This is the scatter target the
        vectorized kernels use to build pooled dense/membership arrays.
        """
        dense_starts = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=dense_starts[1:])
        row_ids = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.nnz_per_row)
        return dense_starts[row_ids] + self.offsets


@dataclass(frozen=True)
class CompressedFeatureMap:
    """Row-wise compression of a (C, H, W) feature map."""

    rows: tuple[tuple[CompressedRow, ...], ...]  # [channel][row]
    channels: int
    height: int
    width: int

    @property
    def nnz(self) -> int:
        return sum(row.nnz for channel in self.rows for row in channel)

    @property
    def dense_words(self) -> int:
        return self.channels * self.height * self.width

    def storage_words(self, offset_packing: int = 2) -> int:
        """Total compressed storage in buffer words."""
        return sum(
            row.storage_words(offset_packing) for channel in self.rows for row in channel
        )

    @property
    def density(self) -> float:
        if self.dense_words == 0:
            return 0.0
        return self.nnz / self.dense_words

    def row(self, channel: int, row_index: int) -> CompressedRow:
        return self.rows[channel][row_index]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.channels, self.height, self.width), dtype=np.float64)
        for c, channel_rows in enumerate(self.rows):
            for r, row in enumerate(channel_rows):
                dense[c, r] = row.to_dense()
        return dense


def compress_feature_map(feature_map: np.ndarray) -> CompressedFeatureMap:
    """Compress a (C, H, W) feature map row by row."""
    feature_map = np.asarray(feature_map, dtype=np.float64)
    if feature_map.ndim != 3:
        raise ValueError(f"expected a (C, H, W) tensor, got shape {feature_map.shape}")
    channels, height, width = feature_map.shape
    rows = tuple(
        tuple(CompressedRow.from_dense(feature_map[c, r]) for r in range(height))
        for c in range(channels)
    )
    return CompressedFeatureMap(rows=rows, channels=channels, height=height, width=width)


def compression_ratio(feature_map: np.ndarray, offset_packing: int = 2) -> float:
    """Dense-to-compressed storage ratio for a feature map (>1 means smaller)."""
    compressed = compress_feature_map(feature_map)
    words = compressed.storage_words(offset_packing)
    if words == 0:
        return float("inf")
    return compressed.dense_words / words
