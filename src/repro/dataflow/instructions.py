"""Instruction stream driving the architecture simulator.

The paper drives its cycle-accurate simulator with "internal instructions"
produced by a small Python compiler from the PyTorch model.  We mirror that
split: :mod:`repro.dataflow.compiler` lowers a :class:`ModelSpec` plus
per-layer densities into the instruction types defined here, and
:class:`repro.arch.accelerator.AcceleratorSimulator` executes them.

Granularity: one :class:`StepInstruction` per (layer, training step), wrapped
by weight-load and output-store instructions that carry the buffer/DRAM
traffic the step implies.  This is the right granularity for the layer-level
performance model; the PE-level model consumes raw row operations instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dataflow.counts import StepCounts, StepKind
from repro.models.spec import ConvLayerSpec


class InstructionKind(Enum):
    """Instruction opcodes understood by the accelerator simulator."""

    LOAD_WEIGHTS = "load_weights"
    PROCESS_STEP = "process_step"
    STORE_OUTPUT = "store_output"
    SYNC = "sync"


@dataclass(frozen=True)
class LoadWeightsInstruction:
    """Bring a layer's weights (or a tile of them) from DRAM into the buffer."""

    layer_name: str
    words: int
    kind: InstructionKind = InstructionKind.LOAD_WEIGHTS


@dataclass(frozen=True)
class StepInstruction:
    """Execute one training step of one layer on the PE array."""

    layer_name: str
    step: StepKind
    layer: ConvLayerSpec
    counts: StepCounts
    kind: InstructionKind = InstructionKind.PROCESS_STEP


@dataclass(frozen=True)
class StoreOutputInstruction:
    """Write a layer's results (activations/gradients) back to DRAM."""

    layer_name: str
    words: float
    kind: InstructionKind = InstructionKind.STORE_OUTPUT


@dataclass(frozen=True)
class SyncInstruction:
    """Barrier between layers (PE array drain / controller bookkeeping)."""

    label: str
    kind: InstructionKind = InstructionKind.SYNC


Instruction = (
    LoadWeightsInstruction | StepInstruction | StoreOutputInstruction | SyncInstruction
)


@dataclass
class Program:
    """An ordered instruction stream for one training iteration of one sample."""

    model_name: str
    dataset: str
    sparse: bool
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def step_instructions(self) -> list[StepInstruction]:
        """Only the PROCESS_STEP instructions, in program order."""
        return [inst for inst in self.instructions if isinstance(inst, StepInstruction)]

    def instructions_for_layer(self, layer_name: str) -> list[Instruction]:
        """All instructions touching the given layer."""
        return [
            inst
            for inst in self.instructions
            if getattr(inst, "layer_name", None) == layer_name
        ]

    def total_macs(self) -> float:
        """Total expected MACs of the programme (all steps, all layers)."""
        return sum(inst.counts.macs for inst in self.step_instructions())

    def describe(self) -> str:
        """Short human-readable summary."""
        steps = self.step_instructions()
        return (
            f"Program({self.model_name}/{self.dataset}, "
            f"{'sparse' if self.sparse else 'dense'}, "
            f"{len(self.instructions)} instructions, {len(steps)} steps, "
            f"{self.total_macs() / 1e9:.3f} GMAC)"
        )
