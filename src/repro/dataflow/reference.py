"""Row-wise reference implementation of the 1-D convolution dataflow.

The paper decomposes every 2-D convolution of the three training steps into
1-D row convolutions (Fig. 6):

* **Forward / SRC** — one output row is the sum of ``K`` 1-D convolutions of
  (kernel row, input row) pairs, accumulated over input channels.
* **GTA / MSRC** — one input-gradient row is the sum of 1-D convolutions of
  (reversed kernel row, output-gradient row) pairs, accumulated over output
  channels; positions masked off by the following ReLU can be skipped.
* **GTW / OSRC** — one kernel row of ``dW`` is the length-``K`` correlation of
  an input row with an output-gradient row, accumulated over output rows.

These functions execute the decomposition numerically with explicit Python
loops over rows.  They are intentionally simple and slow — their job is to
*prove the decomposition is exact* (tests compare them against the im2col
kernels in :mod:`repro.nn.functional`) and to provide the ground truth the
PE-level cycle simulator validates against.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv_output_size
from repro.utils.validation import check_group_split


def _check_grouped_weight(weight: np.ndarray, channels: int, groups: int) -> tuple[int, int]:
    """Validate a grouped weight tensor (F, C/groups, K, K); returns (C/g, F/g)."""
    group_in, group_out = check_group_split(channels, weight.shape[0], groups)
    if weight.shape[1] != group_in:
        raise ValueError(
            f"weight shape {weight.shape} has {weight.shape[1]} channel slices; "
            f"groups={groups} over {channels} input channels expects {group_in}"
        )
    return group_in, group_out


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of a (C, H, W) tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding)), mode="constant")


def row_convolution(
    input_row: np.ndarray, kernel_row: np.ndarray, stride: int, out_len: int
) -> np.ndarray:
    """The basic 1-D (strided, valid) convolution used by SRC operations.

    ``out[ow] = sum_k input_row[ow * stride + k] * kernel_row[k]``
    """
    kernel_size = kernel_row.size
    out = np.zeros(out_len, dtype=np.float64)
    for ow in range(out_len):
        start = ow * stride
        out[ow] = float(np.dot(input_row[start : start + kernel_size], kernel_row))
    return out


def forward_by_rows(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    groups: int = 1,
) -> np.ndarray:
    """Forward convolution of a single sample via SRC row operations.

    Parameters
    ----------
    x:
        Input activations of shape (C, H, W).
    weight:
        Weights of shape (F, C/groups, K, K).
    bias:
        Optional bias of shape (F,).
    groups:
        Channel groups; output channel ``f`` only reads the input channels of
        group ``f // (F / groups)``.
    """
    channels, height, width = x.shape
    out_channels, _, kernel, _ = weight.shape
    group_in, group_out = _check_grouped_weight(weight, channels, groups)
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    x_padded = _pad_input(x, padding)

    out = np.zeros((out_channels, out_h, out_w), dtype=np.float64)
    for f in range(out_channels):
        channel_base = (f // group_out) * group_in
        for oh in range(out_h):
            acc = np.zeros(out_w, dtype=np.float64)
            for c_local in range(group_in):
                for kr in range(kernel):
                    input_row = x_padded[channel_base + c_local, oh * stride + kr]
                    kernel_row = weight[f, c_local, kr]
                    acc += row_convolution(input_row, kernel_row, stride, out_w)
            if bias is not None:
                acc += bias[f]
            out[f, oh] = acc
    return out


def gta_by_rows(
    grad_out: np.ndarray,
    weight: np.ndarray,
    in_shape: tuple[int, int, int],
    stride: int,
    padding: int,
    mask: np.ndarray | None = None,
    groups: int = 1,
) -> np.ndarray:
    """GTA step of a single sample via MSRC row operations.

    Computes ``dI[c] = sum_f dO[f] (*) W+_{f,c}`` where ``W+`` is the kernel
    rotated by 180 degrees; for grouped layers the sum only runs over the
    output channels of ``c``'s group.  When ``mask`` (same shape as the
    input) is given, masked-off positions are skipped entirely — they stay
    exactly zero, which is safe because the following ReLU backward would
    zero them anyway.
    """
    channels, height, width = in_shape
    out_channels, _, kernel, _ = weight.shape
    group_in, group_out = _check_grouped_weight(weight, channels, groups)
    out_h, out_w = grad_out.shape[1], grad_out.shape[2]
    padded_h, padded_w = height + 2 * padding, width + 2 * padding

    grad_padded = np.zeros((channels, padded_h, padded_w), dtype=np.float64)
    for f in range(out_channels):
        channel_base = (f // group_out) * group_in
        for oh in range(out_h):
            for c_local in range(group_in):
                c = channel_base + c_local
                for kr in range(kernel):
                    ih = oh * stride + kr
                    row = grad_out[f, oh]
                    kernel_row = weight[f, c_local, kr]
                    # Scatter: each dO value contributes to K consecutive
                    # positions of the padded dI row.
                    for ow in range(out_w):
                        value = row[ow]
                        if value == 0.0:
                            continue
                        start = ow * stride
                        grad_padded[c, ih, start : start + kernel] += value * kernel_row

    grad_input = grad_padded[:, padding : padding + height, padding : padding + width]
    if mask is not None:
        if mask.shape != grad_input.shape:
            raise ValueError(f"mask shape {mask.shape} != input shape {grad_input.shape}")
        grad_input = grad_input * mask
    return grad_input


def gtw_by_rows(
    grad_out: np.ndarray,
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    groups: int = 1,
) -> np.ndarray:
    """GTW step of a single sample via OSRC row operations.

    Computes ``dW[f, c, kr, kw] = sum_{oh, ow} dO[f, oh, ow] *
    I[c, oh*stride + kr - padding, ow*stride + kw - padding]`` with ``c``
    running over the input channels of ``f``'s group, returning the grouped
    weight-gradient tensor of shape (F, C/groups, K, K).  Each (f, c, kr, oh)
    pair is one OSRC operation whose K results live in the PE's scratchpad
    (Reg-2) for the duration of the row.
    """
    out_channels, out_h, out_w = grad_out.shape
    channels = x.shape[0]
    group_in, group_out = check_group_split(channels, out_channels, groups)
    x_padded = _pad_input(x, padding)

    grad_weight = np.zeros((out_channels, group_in, kernel, kernel), dtype=np.float64)
    for f in range(out_channels):
        channel_base = (f // group_out) * group_in
        for c_local in range(group_in):
            for kr in range(kernel):
                acc = np.zeros(kernel, dtype=np.float64)
                for oh in range(out_h):
                    input_row = x_padded[channel_base + c_local, oh * stride + kr]
                    grad_row = grad_out[f, oh]
                    for kw in range(kernel):
                        # Strided dot product between the gradient row and the
                        # input row shifted by kw.
                        segment = input_row[kw : kw + (out_w - 1) * stride + 1 : stride]
                        acc[kw] += float(np.dot(grad_row, segment))
                grad_weight[f, c_local, kr] = acc
    return grad_weight


def bias_gradient_by_rows(grad_out: np.ndarray) -> np.ndarray:
    """Bias gradients: per-channel sum of the output activation gradients.

    The paper computes these for free by accumulating gradients inside the
    PPU while the GTA step streams them through.
    """
    return grad_out.sum(axis=(1, 2))
