"""Row-wise reference implementation of the 1-D convolution dataflow.

The paper decomposes every 2-D convolution of the three training steps into
1-D row convolutions (Fig. 6):

* **Forward / SRC** — one output row is the sum of ``K`` 1-D convolutions of
  (kernel row, input row) pairs, accumulated over input channels.
* **GTA / MSRC** — one input-gradient row is the sum of 1-D convolutions of
  (reversed kernel row, output-gradient row) pairs, accumulated over output
  channels; positions masked off by the following ReLU can be skipped.
* **GTW / OSRC** — one kernel row of ``dW`` is the length-``K`` correlation of
  an input row with an output-gradient row, accumulated over output rows.

These functions execute the decomposition numerically and provide the ground
truth the PE-level cycle simulator validates against.  They are implemented
with vectorized numpy window/gather arithmetic (``sliding_window_view`` plus
``einsum`` contractions and K x K strided scatter-adds) so the validated path
runs at numpy speed; the original per-element loop semantics live on as the
scalar PE backend (``PE(backend="scalar")``) for differential testing.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.functional import conv_output_size
from repro.utils.validation import check_group_split


def _check_grouped_weight(weight: np.ndarray, channels: int, groups: int) -> tuple[int, int]:
    """Validate a grouped weight tensor (F, C/groups, K, K); returns (C/g, F/g)."""
    group_in, group_out = check_group_split(channels, weight.shape[0], groups)
    if weight.shape[1] != group_in:
        raise ValueError(
            f"weight shape {weight.shape} has {weight.shape[1]} channel slices; "
            f"groups={groups} over {channels} input channels expects {group_in}"
        )
    return group_in, group_out


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of a (C, H, W) tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding)), mode="constant")


def _row_windows(x_padded: np.ndarray, kernel: int, stride: int, out_w: int) -> np.ndarray:
    """Strided windows ``w[c, ih, ow, kw] = x_padded[c, ih, ow * stride + kw]``."""
    windows = sliding_window_view(x_padded, kernel, axis=2)
    return windows[:, :, ::stride, :][:, :, :out_w]


def row_convolution(
    input_row: np.ndarray, kernel_row: np.ndarray, stride: int, out_len: int
) -> np.ndarray:
    """The basic 1-D (strided, valid) convolution used by SRC operations.

    ``out[ow] = sum_k input_row[ow * stride + k] * kernel_row[k]``
    """
    input_row = np.asarray(input_row, dtype=np.float64)
    kernel_row = np.asarray(kernel_row, dtype=np.float64)
    windows = sliding_window_view(input_row, kernel_row.size)[::stride][:out_len]
    if windows.shape[0] != out_len:
        raise ValueError(
            f"out_len {out_len} inconsistent with input length {input_row.size}, "
            f"kernel {kernel_row.size}, stride {stride}"
        )
    return windows @ kernel_row


def forward_by_rows(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    groups: int = 1,
) -> np.ndarray:
    """Forward convolution of a single sample via SRC row operations.

    Parameters
    ----------
    x:
        Input activations of shape (C, H, W).
    weight:
        Weights of shape (F, C/groups, K, K).
    bias:
        Optional bias of shape (F,).
    groups:
        Channel groups; output channel ``f`` only reads the input channels of
        group ``f // (F / groups)``.
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    channels, height, width = x.shape
    out_channels, _, kernel, _ = weight.shape
    group_in, group_out = _check_grouped_weight(weight, channels, groups)
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    x_padded = _pad_input(x, padding)

    # windows[c, ih, ow, kw] = x_padded[c, ih, ow*stride + kw]
    windows = _row_windows(x_padded, kernel, stride, out_w)
    # row_index[oh, kr] = the padded input row feeding output row oh via
    # kernel row kr — gathering it turns the SRC accumulation over
    # (c_local, kr, kw) into one einsum contraction per group.
    row_index = stride * np.arange(out_h)[:, None] + np.arange(kernel)[None, :]

    out = np.zeros((out_channels, out_h, out_w), dtype=np.float64)
    for g in range(groups):
        win_g = windows[g * group_in : (g + 1) * group_in][:, row_index]
        w_g = weight[g * group_out : (g + 1) * group_out]
        # win_g: (C/g, OH, KR, OW, KW); w_g: (F/g, C/g, KR, KW)
        out[g * group_out : (g + 1) * group_out] = np.einsum(
            "chkwj,fckj->fhw", win_g, w_g, optimize=True
        )
    if bias is not None:
        out += bias[:, None, None]
    return out


def gta_by_rows(
    grad_out: np.ndarray,
    weight: np.ndarray,
    in_shape: tuple[int, int, int],
    stride: int,
    padding: int,
    mask: np.ndarray | None = None,
    groups: int = 1,
) -> np.ndarray:
    """GTA step of a single sample via MSRC row operations.

    Computes ``dI[c] = sum_f dO[f] (*) W+_{f,c}`` where ``W+`` is the kernel
    rotated by 180 degrees; for grouped layers the sum only runs over the
    output channels of ``c``'s group.  When ``mask`` (same shape as the
    input) is given, masked-off positions are skipped entirely — they stay
    exactly zero, which is safe because the following ReLU backward would
    zero them anyway.
    """
    grad_out = np.asarray(grad_out, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    channels, height, width = in_shape
    out_channels, _, kernel, _ = weight.shape
    group_in, group_out = _check_grouped_weight(weight, channels, groups)
    out_h, out_w = grad_out.shape[1], grad_out.shape[2]
    padded_h, padded_w = height + 2 * padding, width + 2 * padding

    grad_padded = np.zeros((channels, padded_h, padded_w), dtype=np.float64)
    h_span = (out_h - 1) * stride + 1
    w_span = (out_w - 1) * stride + 1
    for g in range(groups):
        grad_g = grad_out[g * group_out : (g + 1) * group_out]
        w_g = weight[g * group_out : (g + 1) * group_out]
        # contrib[c, oh, kr, ow, kw] = sum_f dO[f, oh, ow] * W[f, c, kr, kw]:
        # the value each MSRC scatter adds at dI[c, oh*stride+kr, ow*stride+kw].
        contrib = np.einsum("fhw,fckj->chkwj", grad_g, w_g, optimize=True)
        target = grad_padded[g * group_in : (g + 1) * group_in]
        # K x K strided slice-adds replace the per-value Python scatter; the
        # (kr, kw) shifts overlap for stride < K, so each shift is a separate
        # accumulate over disjoint strided positions.
        for kr in range(kernel):
            for kw in range(kernel):
                target[:, kr : kr + h_span : stride, kw : kw + w_span : stride] += (
                    contrib[:, :, kr, :, kw]
                )

    grad_input = grad_padded[:, padding : padding + height, padding : padding + width]
    if mask is not None:
        if mask.shape != grad_input.shape:
            raise ValueError(f"mask shape {mask.shape} != input shape {grad_input.shape}")
        grad_input = grad_input * mask
    return grad_input


def gtw_by_rows(
    grad_out: np.ndarray,
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    groups: int = 1,
) -> np.ndarray:
    """GTW step of a single sample via OSRC row operations.

    Computes ``dW[f, c, kr, kw] = sum_{oh, ow} dO[f, oh, ow] *
    I[c, oh*stride + kr - padding, ow*stride + kw - padding]`` with ``c``
    running over the input channels of ``f``'s group, returning the grouped
    weight-gradient tensor of shape (F, C/groups, K, K).  Each (f, c, kr, oh)
    pair is one OSRC operation whose K results live in the PE's scratchpad
    (Reg-2) for the duration of the row.
    """
    grad_out = np.asarray(grad_out, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    out_channels, out_h, out_w = grad_out.shape
    channels = x.shape[0]
    group_in, group_out = check_group_split(channels, out_channels, groups)
    x_padded = _pad_input(x, padding)

    windows = _row_windows(x_padded, kernel, stride, out_w)
    row_index = stride * np.arange(out_h)[:, None] + np.arange(kernel)[None, :]

    grad_weight = np.zeros((out_channels, group_in, kernel, kernel), dtype=np.float64)
    for g in range(groups):
        win_g = windows[g * group_in : (g + 1) * group_in][:, row_index]
        grad_g = grad_out[g * group_out : (g + 1) * group_out]
        # win_g: (C/g, OH, KR, OW, KW); grad_g: (F/g, OH, OW)
        grad_weight[g * group_out : (g + 1) * group_out] = np.einsum(
            "fhw,chkwj->fckj", grad_g, win_g, optimize=True
        )
    return grad_weight


def bias_gradient_by_rows(grad_out: np.ndarray) -> np.ndarray:
    """Bias gradients: per-channel sum of the output activation gradients.

    The paper computes these for free by accumulating gradients inside the
    PPU while the GTA step streams them through.
    """
    return grad_out.sum(axis=(1, 2))
