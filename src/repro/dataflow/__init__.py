"""The 1-D convolution sparse training dataflow (the paper's Section IV)."""

from repro.dataflow.compiler import (
    compile_forward,
    compile_training_iteration,
    uniform_densities,
)
from repro.dataflow.compressed import (
    CompressedFeatureMap,
    CompressedRow,
    CompressedRowBatch,
    compress_feature_map,
    compression_ratio,
)
from repro.dataflow.counts import (
    LayerDensities,
    StepCounts,
    StepKind,
    forward_counts,
    gta_counts,
    gtw_counts,
    layer_counts,
    total_macs,
    total_processed,
)
from repro.dataflow.decompose import (
    accumulate_forward,
    accumulate_gta,
    accumulate_gtw,
    decompose_forward,
    decompose_gta,
    decompose_gtw,
)
from repro.dataflow.instructions import (
    Instruction,
    InstructionKind,
    LoadWeightsInstruction,
    Program,
    StepInstruction,
    StoreOutputInstruction,
    SyncInstruction,
)
from repro.dataflow.ops import MSRCOp, OpType, OSRCOp, RowOp, SRCOp
from repro.dataflow.reference import (
    bias_gradient_by_rows,
    forward_by_rows,
    gta_by_rows,
    gtw_by_rows,
    row_convolution,
)

__all__ = [
    "CompressedRow",
    "CompressedRowBatch",
    "CompressedFeatureMap",
    "compress_feature_map",
    "compression_ratio",
    "OpType",
    "SRCOp",
    "MSRCOp",
    "OSRCOp",
    "RowOp",
    "decompose_forward",
    "decompose_gta",
    "decompose_gtw",
    "accumulate_forward",
    "accumulate_gta",
    "accumulate_gtw",
    "forward_by_rows",
    "gta_by_rows",
    "gtw_by_rows",
    "bias_gradient_by_rows",
    "row_convolution",
    "LayerDensities",
    "StepCounts",
    "StepKind",
    "forward_counts",
    "gta_counts",
    "gtw_counts",
    "layer_counts",
    "total_macs",
    "total_processed",
    "Program",
    "Instruction",
    "InstructionKind",
    "StepInstruction",
    "LoadWeightsInstruction",
    "StoreOutputInstruction",
    "SyncInstruction",
    "compile_forward",
    "compile_training_iteration",
    "uniform_densities",
]
