"""Decomposition of 2-D convolutions into row operations.

Given the actual tensors of one convolution layer for one sample, these
functions enumerate the SRC/MSRC/OSRC operations the accelerator would
schedule.  They are used by the PE-level simulator and by the tests that
prove the decomposition computes exactly the same numbers as the dense
reference convolution.

The enumeration is O(F * C * K * rows) Python objects, so it is only intended
for the reduced layers used in tests/examples; the full-size Fig. 8 / Fig. 9
evaluation uses the closed-form operation counts in
:mod:`repro.dataflow.counts` instead.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.compressed import CompressedRow
from repro.dataflow.ops import MSRCOp, OSRCOp, SRCOp
from repro.models.spec import ConvLayerSpec
from repro.nn.functional import conv_output_size


def _pad_sample(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding)), mode="constant")


def _check_sample(x: np.ndarray, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise ValueError(f"{name} must be a (C, H, W) single-sample tensor, got {x.shape}")
    return x


def _check_weight(layer: ConvLayerSpec, weight: np.ndarray) -> np.ndarray:
    """Validate the grouped weight tensor shape (F, C/groups, K, K)."""
    weight = np.asarray(weight, dtype=np.float64)
    expected = (layer.out_channels, layer.group_in_channels, layer.kernel, layer.kernel)
    if weight.shape != expected:
        raise ValueError(
            f"weight shape {weight.shape} does not match layer spec {expected}"
        )
    return weight


def decompose_forward(
    layer: ConvLayerSpec, x: np.ndarray, weight: np.ndarray
) -> list[SRCOp]:
    """Enumerate the SRC operations of the Forward step for one sample.

    Grouped layers enumerate only the (f, c) pairs inside each group: output
    channel ``f`` pairs with the ``group_in_channels`` input channels of group
    ``f // group_out_channels``.
    """
    x = _check_sample(x, "x")
    weight = _check_weight(layer, weight)
    x_padded = _pad_sample(x, layer.padding)
    out_h = layer.out_height
    out_w = layer.out_width

    ops: list[SRCOp] = []
    for f in range(layer.out_channels):
        group = f // layer.group_out_channels
        channel_base = group * layer.group_in_channels
        for oh in range(out_h):
            for c_local in range(layer.group_in_channels):
                for kr in range(layer.kernel):
                    c = channel_base + c_local
                    input_row = x_padded[c, oh * layer.stride + kr]
                    ops.append(
                        SRCOp(
                            kernel_row=weight[f, c_local, kr],
                            input_row=CompressedRow.from_dense(input_row),
                            stride=layer.stride,
                            out_len=out_w,
                            tag=f"{layer.name}/fwd/f{f}/oh{oh}/c{c}/kr{kr}",
                        )
                    )
    return ops


def decompose_gta(
    layer: ConvLayerSpec,
    grad_out: np.ndarray,
    weight: np.ndarray,
    mask: np.ndarray | None = None,
) -> list[MSRCOp]:
    """Enumerate the MSRC operations of the GTA step for one sample.

    ``mask`` is the forward ReLU/MaxPool non-zero mask over the layer's
    *input* activations; when omitted, every output position is computed
    (all-ones mask).  The enumeration works on the padded input-gradient rows
    so a single scatter covers padding cleanly; masked positions inside the
    padding margin are always skipped.
    """
    grad_out = _check_sample(grad_out, "grad_out")
    weight = _check_weight(layer, weight)
    padded_w = layer.in_width + 2 * layer.padding
    padded_h = layer.in_height + 2 * layer.padding

    if mask is None:
        mask_arr = np.ones((layer.in_channels, layer.in_height, layer.in_width), dtype=bool)
    else:
        mask_arr = np.asarray(mask, dtype=bool)
        if mask_arr.shape != (layer.in_channels, layer.in_height, layer.in_width):
            raise ValueError(
                f"mask shape {mask_arr.shape} does not match input shape "
                f"({layer.in_channels}, {layer.in_height}, {layer.in_width})"
            )
    padded_mask = np.zeros((layer.in_channels, padded_h, padded_w), dtype=bool)
    padded_mask[
        :,
        layer.padding : layer.padding + layer.in_height,
        layer.padding : layer.padding + layer.in_width,
    ] = mask_arr

    out_h = layer.out_height
    ops: list[MSRCOp] = []
    for c in range(layer.in_channels):
        group = c // layer.group_in_channels
        c_local = c - group * layer.group_in_channels
        filter_base = group * layer.group_out_channels
        for f_local in range(layer.group_out_channels):
            f = filter_base + f_local
            for oh in range(out_h):
                for kr in range(layer.kernel):
                    ih = oh * layer.stride + kr
                    ops.append(
                        MSRCOp(
                            kernel_row=weight[f, c_local, kr],
                            grad_row=CompressedRow.from_dense(grad_out[f, oh]),
                            output_mask=padded_mask[c, ih],
                            stride=layer.stride,
                            out_len=padded_w,
                            tag=f"{layer.name}/gta/c{c}/f{f}/oh{oh}/kr{kr}",
                        )
                    )
    return ops


def decompose_gtw(
    layer: ConvLayerSpec, grad_out: np.ndarray, x: np.ndarray
) -> list[OSRCOp]:
    """Enumerate the OSRC operations of the GTW step for one sample."""
    grad_out = _check_sample(grad_out, "grad_out")
    x = _check_sample(x, "x")
    x_padded = _pad_sample(x, layer.padding)
    out_h = layer.out_height

    ops: list[OSRCOp] = []
    for f in range(layer.out_channels):
        channel_base = (f // layer.group_out_channels) * layer.group_in_channels
        for c_local in range(layer.group_in_channels):
            c = channel_base + c_local
            for kr in range(layer.kernel):
                for oh in range(out_h):
                    input_row = x_padded[c, oh * layer.stride + kr]
                    ops.append(
                        OSRCOp(
                            input_row=CompressedRow.from_dense(input_row),
                            grad_row=CompressedRow.from_dense(grad_out[f, oh]),
                            kernel_size=layer.kernel,
                            stride=layer.stride,
                            tag=f"{layer.name}/gtw/f{f}/c{c}/kr{kr}/oh{oh}",
                        )
                    )
    return ops


def accumulate_forward(layer: ConvLayerSpec, ops: list[SRCOp], results: list[np.ndarray],
                       bias: np.ndarray | None = None) -> np.ndarray:
    """Assemble per-op SRC results back into the (F, OH, OW) output tensor.

    ``results[i]`` must be the partial-sum row produced for ``ops[i]`` (same
    order as :func:`decompose_forward`).
    """
    if len(ops) != len(results):
        raise ValueError("ops and results length mismatch")
    out = np.zeros((layer.out_channels, layer.out_height, layer.out_width), dtype=np.float64)
    index = 0
    for f in range(layer.out_channels):
        for oh in range(layer.out_height):
            for _c in range(layer.group_in_channels):
                for _kr in range(layer.kernel):
                    out[f, oh] += results[index]
                    index += 1
    if bias is not None:
        out += bias[:, None, None]
    return out


def accumulate_gta(layer: ConvLayerSpec, ops: list[MSRCOp], results: list[np.ndarray]) -> np.ndarray:
    """Assemble per-op MSRC results into the (C, H, W) input-gradient tensor."""
    if len(ops) != len(results):
        raise ValueError("ops and results length mismatch")
    padded_w = layer.in_width + 2 * layer.padding
    padded_h = layer.in_height + 2 * layer.padding
    grad_padded = np.zeros((layer.in_channels, padded_h, padded_w), dtype=np.float64)
    index = 0
    for c in range(layer.in_channels):
        for _f in range(layer.group_out_channels):
            for oh in range(layer.out_height):
                for kr in range(layer.kernel):
                    ih = oh * layer.stride + kr
                    grad_padded[c, ih] += results[index]
                    index += 1
    pad = layer.padding
    if pad == 0:
        return grad_padded
    return grad_padded[:, pad : pad + layer.in_height, pad : pad + layer.in_width]


def accumulate_gtw(layer: ConvLayerSpec, ops: list[OSRCOp], results: list[np.ndarray]) -> np.ndarray:
    """Assemble per-op OSRC results into the (F, C/groups, K, K) weight-gradient tensor."""
    if len(ops) != len(results):
        raise ValueError("ops and results length mismatch")
    grad_weight = np.zeros(
        (layer.out_channels, layer.group_in_channels, layer.kernel, layer.kernel),
        dtype=np.float64,
    )
    index = 0
    for f in range(layer.out_channels):
        for c_local in range(layer.group_in_channels):
            for kr in range(layer.kernel):
                for _oh in range(layer.out_height):
                    grad_weight[f, c_local, kr] += results[index]
                    index += 1
    return grad_weight
