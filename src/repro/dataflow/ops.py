"""Row-operation descriptors: SRC, MSRC and OSRC.

These dataclasses are the unit of work the accelerator schedules onto PEs.
Each carries the actual operand data (dense kernel rows, compressed sparse
rows, output masks) so the PE model in :mod:`repro.arch.pe` can both compute
the numerical result and count cycles/energy events exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.dataflow.compressed import CompressedRow


class OpType(Enum):
    """The three basic operations of the sparse training dataflow."""

    SRC = "src"    # Sparse Row Convolution          (Forward step)
    MSRC = "msrc"  # Masked Sparse Row Convolution   (GTA step)
    OSRC = "osrc"  # Output Store Row Convolution    (GTW step)


@dataclass(frozen=True)
class SRCOp:
    """Forward-step row convolution.

    ``output[ow] += sum_k input_row[ow * stride + k] * kernel_row[k]``

    Attributes
    ----------
    kernel_row:
        Dense kernel row (length K), loaded into the PE's Reg-1 via Port-2.
    input_row:
        Compressed input-activation row, streamed through Port-1.
    stride:
        Convolution stride along the row.
    out_len:
        Length of the produced partial-sum row (accumulated into Reg-2).
    tag:
        Free-form identification (layer, output channel, row, ...).
    """

    kernel_row: np.ndarray
    input_row: CompressedRow
    stride: int
    out_len: int
    tag: str = ""

    op_type: OpType = OpType.SRC

    @property
    def kernel_size(self) -> int:
        return int(self.kernel_row.size)


@dataclass(frozen=True)
class MSRCOp:
    """GTA-step row convolution with output masking.

    Scatter form: every non-zero gradient value ``dO[ow]`` contributes to the
    K consecutive positions ``ow * stride + k`` of the input-gradient row.
    ``output_mask`` marks the positions that the following ReLU keeps; results
    at masked-off positions are never needed and the corresponding work is
    skipped.
    """

    kernel_row: np.ndarray
    grad_row: CompressedRow
    output_mask: np.ndarray  # boolean, length out_len
    stride: int
    out_len: int
    tag: str = ""

    op_type: OpType = OpType.MSRC

    def __post_init__(self) -> None:
        if self.output_mask.shape != (self.out_len,):
            raise ValueError(
                f"output_mask length {self.output_mask.shape} != out_len {self.out_len}"
            )

    @property
    def kernel_size(self) -> int:
        return int(self.kernel_row.size)


@dataclass(frozen=True)
class OSRCOp:
    """GTW-step row correlation with a K-element output scratchpad.

    ``dw[kw] += sum_ow grad_row[ow] * input_row[ow * stride + kw]``

    Both operands are sparse; the K results stay in the PE's Reg-2 until the
    whole row (and, across ops, the whole output-row loop) is finished.
    """

    input_row: CompressedRow
    grad_row: CompressedRow
    kernel_size: int
    stride: int
    tag: str = ""

    op_type: OpType = OpType.OSRC


RowOp = SRCOp | MSRCOp | OSRCOp
