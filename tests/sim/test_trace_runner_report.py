"""Tests for density measurement/mapping, workload comparison and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_cifar_like
from repro.dataflow.compiler import uniform_densities
from repro.models.alexnet import alexnet_cifar_spec, build_alexnet
from repro.models.resnet import resnet_spec
from repro.models.zoo import get_model_spec
from repro.pruning import PruningConfig
from repro.sim.report import format_breakdown, format_energy_table, format_latency_table
from repro.sim.runner import WorkloadResult, compare_workload, simulate_baseline, simulate_sparsetrain
from repro.sim.trace import MeasuredDensities, map_densities_to_spec, profile_training_densities
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def measured_alexnet_densities():
    dataset = make_cifar_like(num_samples=128, num_classes=4, image_size=8, rng=np.random.default_rng(0))
    model = build_alexnet(num_classes=4, image_size=8, width_scale=0.1, rng=new_rng(0))
    return profile_training_densities(
        model,
        dataset,
        pruning=PruningConfig(target_sparsity=0.9, fifo_depth=1),
        epochs=1,
        batch_size=32,
        lr=0.01,
    )


class TestProfileTrainingDensities:
    def test_layers_and_ranges(self, measured_alexnet_densities):
        measured = measured_alexnet_densities
        assert len(measured) == 5
        for name in measured.layer_names:
            densities = measured.densities[name]
            for field in (
                "input_density",
                "grad_output_density",
                "mask_density",
                "grad_input_density",
                "output_density",
            ):
                value = getattr(densities, field)
                assert 0.0 <= value <= 1.0

    def test_first_layer_has_dense_mask(self, measured_alexnet_densities):
        first = measured_alexnet_densities.densities[measured_alexnet_densities.layer_names[0]]
        assert first.mask_density == 1.0

    def test_pruning_produces_sparse_grad_output(self, measured_alexnet_densities):
        measured = measured_alexnet_densities
        grad_densities = [
            measured.densities[name].grad_output_density for name in measured.layer_names
        ]
        assert min(grad_densities) < 0.6

    def test_at_fraction_endpoints(self, measured_alexnet_densities):
        measured = measured_alexnet_densities
        assert measured.at_fraction(0.0) == measured.densities[measured.layer_names[0]]
        assert measured.at_fraction(1.0) == measured.densities[measured.layer_names[-1]]
        assert measured.at_fraction(-0.5) == measured.at_fraction(0.0)

    def test_empty_measurement_rejected(self):
        empty = MeasuredDensities(layer_names=tuple(), densities={})
        with pytest.raises(ValueError):
            empty.at_fraction(0.5)


class TestMapDensitiesToSpec:
    def test_covers_every_spec_layer(self, measured_alexnet_densities):
        spec = resnet_spec(18, "CIFAR-10")
        mapped = map_densities_to_spec(measured_alexnet_densities, spec)
        assert set(mapped) == {layer.name for layer in spec.conv_layers}

    def test_first_layer_input_forced_dense(self, measured_alexnet_densities):
        spec = alexnet_cifar_spec()
        mapped = map_densities_to_spec(measured_alexnet_densities, spec)
        assert mapped[spec.conv_layers[0].name].input_density == 1.0

    def test_shortcut_convs_have_dense_mask(self, measured_alexnet_densities):
        spec = resnet_spec(18, "CIFAR-10")
        mapped = map_densities_to_spec(measured_alexnet_densities, spec)
        for layer in spec.conv_layers:
            if "downsample" in layer.name:
                assert mapped[layer.name].mask_density == 1.0


class TestRunnerAndReports:
    @pytest.fixture(scope="class")
    def workload_result(self) -> WorkloadResult:
        spec = alexnet_cifar_spec()
        densities = uniform_densities(
            spec, input_density=0.4, grad_output_density=0.1, mask_density=0.4,
            grad_input_density=0.3, output_density=0.4,
        )
        return compare_workload(spec, densities)

    def test_comparison_speedup_and_efficiency(self, workload_result):
        assert workload_result.speedup > 1.5
        assert workload_result.energy_efficiency > 1.2
        assert workload_result.workload_name == "AlexNet/CIFAR-10"

    def test_simulate_helpers_agree_with_compare(self, workload_result):
        spec = workload_result.spec
        densities = workload_result.densities
        sparse = simulate_sparsetrain(spec, densities)
        baseline = simulate_baseline(spec)
        assert sparse.total_cycles == pytest.approx(
            workload_result.comparison.sparsetrain.total_cycles
        )
        assert baseline.total_cycles == pytest.approx(
            workload_result.comparison.baseline.total_cycles
        )

    def test_latency_table_formatting(self, workload_result):
        text = format_latency_table([workload_result])
        assert "AlexNet/CIFAR-10" in text
        assert "Average speedup" in text
        assert "x" in text

    def test_energy_table_formatting(self, workload_result):
        text = format_energy_table([workload_result])
        assert "SRAM" in text
        assert "AlexNet/CIFAR-10" in text

    def test_breakdown_formatting(self, workload_result):
        text = format_breakdown(workload_result)
        assert "Dense baseline" in text
        assert "SparseTrain" in text
        assert "sram" in text

    def test_empty_tables(self):
        assert "Workload" in format_latency_table([])
        assert "Workload" in format_energy_table([])

    def test_imagenet_workload_latency_larger_than_cifar(self):
        densities_kwargs = dict(
            input_density=0.45, grad_output_density=0.3, mask_density=0.45,
            grad_input_density=0.45, output_density=0.45,
        )
        cifar_spec = get_model_spec("ResNet-18", "CIFAR-10")
        imagenet_spec = get_model_spec("ResNet-18", "ImageNet")
        cifar = compare_workload(cifar_spec, uniform_densities(cifar_spec, **densities_kwargs))
        imagenet = compare_workload(imagenet_spec, uniform_densities(imagenet_spec, **densities_kwargs))
        assert imagenet.comparison.sparsetrain.latency_us > cifar.comparison.sparsetrain.latency_us
