"""Tests for the batch simulation API (``simulate_many``)."""

from __future__ import annotations

from repro.dataflow.compiler import uniform_densities
from repro.models.zoo import get_model_spec
from repro.sim.runner import WorkloadJob, compare_workload, simulate_many


def make_jobs():
    jobs = []
    for model, grad_density in (("AlexNet", 0.2), ("AlexNet", 0.5), ("ResNet-18", 0.2)):
        spec = get_model_spec(model, "CIFAR-10")
        densities = uniform_densities(
            spec, input_density=0.45, grad_output_density=grad_density
        )
        jobs.append(WorkloadJob(spec=spec, densities=densities))
    return jobs


class TestSimulateMany:
    def test_serial_matches_direct_calls(self):
        jobs = make_jobs()
        results = simulate_many(jobs)
        assert len(results) == len(jobs)
        for job, result in zip(jobs, results):
            direct = compare_workload(job.spec, job.densities)
            assert result.workload_name == direct.workload_name
            assert result.speedup == direct.speedup
            assert result.energy_efficiency == direct.energy_efficiency

    def test_parallel_matches_serial_in_job_order(self):
        jobs = make_jobs()
        serial = simulate_many(jobs)
        parallel = simulate_many(jobs, max_workers=2)
        assert [r.workload_name for r in parallel] == [r.workload_name for r in serial]
        assert [r.speedup for r in parallel] == [r.speedup for r in serial]

    def test_empty_batch(self):
        assert simulate_many([]) == []
