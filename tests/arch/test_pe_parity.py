"""Scalar-vs-vectorized PE backend parity: the equivalence suite.

The vectorized execution engine (``PE(backend="vector")``, the default) must
be **bit-exact** against the scalar per-operand loops
(``PE(backend="scalar")``), in values and in every :class:`PEOpStats` field.
These seeded property tests sweep randomized rows (including explicit stored
zeros and empty rows), strides > 1, random masks, grouped/depthwise layers
and both ``zero_skipping`` modes, through the single-op, ``run_batch``,
``PEGroup`` and ``Controller`` entry points.

CI treats a skip of this file as a failure: the equivalence guarantee is the
contract that lets every other test run on the fast backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import ArchConfig
from repro.arch.controller import Controller
from repro.arch.pe import PE, PEOpStats, execute_ops, execute_ops_arrays, stats_from_arrays
from repro.arch.pe_group import PEGroup
from repro.dataflow.compressed import CompressedRow
from repro.dataflow.decompose import decompose_forward, decompose_gta, decompose_gtw
from repro.dataflow.ops import MSRCOp, OSRCOp, SRCOp
from repro.models.spec import ConvLayerSpec, ConvStructure


def _random_compressed_row(rng: np.random.Generator, length: int) -> CompressedRow:
    """Random sparse row; sometimes with explicit stored zeros or empty."""
    density = rng.random()
    row = rng.normal(size=length) * (rng.random(length) < density)
    compressed = CompressedRow.from_dense(row)
    if compressed.nnz and rng.random() < 0.25:
        # Inject an explicitly stored zero: the scalar backend counts it as
        # processed but adds nothing; the vector backend must match.
        values = compressed.values.copy()
        values[int(rng.integers(0, compressed.nnz))] = 0.0
        compressed = CompressedRow(
            values=values, offsets=compressed.offsets, length=length
        )
    return compressed


def _random_op(rng: np.random.Generator, kind: str):
    stride = int(rng.integers(1, 4))
    kernel_size = int(rng.integers(1, 8))
    length = int(rng.integers(kernel_size, 40))
    row = _random_compressed_row(rng, length)
    kernel = rng.normal(size=kernel_size)
    if kind == "src":
        out_len = (length - kernel_size) // stride + 1
        return SRCOp(kernel_row=kernel, input_row=row, stride=stride, out_len=out_len)
    if kind == "msrc":
        out_len = int(rng.integers(1, 40))
        mask = rng.random(out_len) < rng.random()
        return MSRCOp(
            kernel_row=kernel,
            grad_row=row,
            output_mask=mask,
            stride=stride,
            out_len=out_len,
        )
    grad = _random_compressed_row(rng, int(rng.integers(1, 30)))
    return OSRCOp(
        input_row=row, grad_row=grad, kernel_size=kernel_size, stride=stride
    )


def _random_ops(seed: int, count: int = 40) -> list:
    rng = np.random.default_rng(seed)
    kinds = ["src", "msrc", "osrc"]
    return [_random_op(rng, kinds[i % 3]) for i in range(count)]


def _assert_identical(scalar, vector, context: str) -> None:
    scalar_result, scalar_stats = scalar
    vector_result, vector_stats = vector
    np.testing.assert_array_equal(
        scalar_result, vector_result, err_msg=f"values differ: {context}"
    )
    assert scalar_stats == vector_stats, (
        f"stats differ: {context}\n scalar={scalar_stats}\n vector={vector_stats}"
    )


class TestSingleOpParity:
    """Every op type, bit-exact values and every stats field."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("zero_skipping", [True, False])
    @pytest.mark.parametrize("amortize", [True, False])
    def test_randomized_ops(self, seed, zero_skipping, amortize):
        scalar_pe = PE(zero_skipping, amortize, backend="scalar")
        vector_pe = PE(zero_skipping, amortize, backend="vector")
        for op in _random_ops(seed):
            _assert_identical(
                scalar_pe.run(op), vector_pe.run(op), f"{type(op).__name__} seed={seed}"
            )
        assert scalar_pe.total_stats == vector_pe.total_stats

    def test_empty_rows(self):
        empty = CompressedRow.from_dense(np.zeros(6))
        ops = [
            SRCOp(kernel_row=np.ones(3), input_row=empty, stride=1, out_len=4),
            MSRCOp(
                kernel_row=np.ones(3),
                grad_row=empty,
                output_mask=np.ones(8, dtype=bool),
                stride=1,
                out_len=8,
            ),
            OSRCOp(input_row=empty, grad_row=empty, kernel_size=3, stride=1),
        ]
        for zero_skipping in (True, False):
            for op in ops:
                _assert_identical(
                    PE(zero_skipping, backend="scalar").run(op),
                    PE(zero_skipping, backend="vector").run(op),
                    f"empty {type(op).__name__}",
                )

    def test_per_type_entry_points(self, rng):
        src = _random_op(rng, "src")
        msrc = _random_op(rng, "msrc")
        osrc = _random_op(rng, "osrc")
        scalar_pe = PE(backend="scalar")
        vector_pe = PE(backend="vector")
        _assert_identical(scalar_pe.run_src(src), vector_pe.run_src(src), "run_src")
        _assert_identical(scalar_pe.run_msrc(msrc), vector_pe.run_msrc(msrc), "run_msrc")
        _assert_identical(scalar_pe.run_osrc(osrc), vector_pe.run_osrc(osrc), "run_osrc")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PE(backend="simd")
        with pytest.raises(ValueError):
            execute_ops([], backend="simd")
        with pytest.raises(ValueError):
            execute_ops_arrays([], backend="simd")


class TestBatchParity:
    """run_batch / execute_ops pool heterogeneous batches without drift."""

    @pytest.mark.parametrize("seed", [10, 11])
    @pytest.mark.parametrize("zero_skipping", [True, False])
    def test_execute_ops_matches_sequential(self, seed, zero_skipping):
        ops = _random_ops(seed, count=60)
        scalar_results, scalar_stats = execute_ops(
            ops, zero_skipping=zero_skipping, backend="scalar"
        )
        vector_results, vector_stats = execute_ops(
            ops, zero_skipping=zero_skipping, backend="vector"
        )
        assert len(vector_results) == len(ops)
        for index, (s, v) in enumerate(zip(scalar_results, vector_results)):
            np.testing.assert_array_equal(s, v, err_msg=f"op {index}")
        assert scalar_stats == vector_stats

    def test_stat_arrays_match_stats_list(self):
        ops = _random_ops(12, count=30)
        _, stats_list = execute_ops(ops, backend="vector")
        _, arrays = execute_ops_arrays(ops, backend="vector")
        assert stats_from_arrays(arrays) == stats_list

    def test_pe_run_batch_accumulates_totals(self):
        ops = _random_ops(13, count=24)
        loop_pe = PE(backend="vector")
        batch_pe = PE(backend="vector")
        loop_outputs = [loop_pe.run(op) for op in ops]
        batch_results, batch_stats = batch_pe.run_batch(ops)
        for (loop_result, loop_stats), batch_result, batch_stat in zip(
            loop_outputs, batch_results, batch_stats
        ):
            np.testing.assert_array_equal(loop_result, batch_result)
            assert loop_stats == batch_stat
        assert loop_pe.total_stats == batch_pe.total_stats

    def test_empty_batch(self):
        results, stats = PE().run_batch([])
        assert results == [] and stats == []


class TestGroupAndControllerParity:
    """The scheduled layers produce identical GroupResult/ScheduleResult."""

    @pytest.mark.parametrize("zero_skipping", [True, False])
    def test_pe_group_run_batch_equals_run_ops(self, zero_skipping):
        ops = _random_ops(20, count=50)
        group_loop = PEGroup(num_pes=3, zero_skipping=zero_skipping)
        group_batch = PEGroup(num_pes=3, zero_skipping=zero_skipping)
        loop_result = group_loop.run_ops(ops, apply_relu=True)
        batch_result = group_batch.run_batch(ops, apply_relu=True)
        assert loop_result.stats == batch_result.stats
        assert loop_result.cycles == batch_result.cycles
        assert loop_result.ppu_cycles == batch_result.ppu_cycles
        for s, v in zip(loop_result.results, batch_result.results):
            np.testing.assert_array_equal(s, v)
        for pe_loop, pe_batch in zip(group_loop.pes, group_batch.pes):
            assert pe_loop.total_stats == pe_batch.total_stats
        assert group_loop.ppu.stats == group_batch.ppu.stats

    def test_controller_run_batch_equals_run_ops(self):
        config = ArchConfig(num_pes=9, pes_per_group=3)
        ops = _random_ops(21, count=40)
        loop_result = Controller(config).run_ops(ops)
        batch_result = Controller(config).run_batch(ops)
        assert loop_result.stats == batch_result.stats
        assert loop_result.cycles == batch_result.cycles
        assert loop_result.per_group_cycles == batch_result.per_group_cycles
        for s, v in zip(loop_result.results, batch_result.results):
            np.testing.assert_array_equal(s, v)

    def test_controller_scalar_backend_matches_vector(self):
        config = ArchConfig(num_pes=6, pes_per_group=3)
        ops = _random_ops(22, count=30)
        scalar_result = Controller(config, backend="scalar").run_ops(ops)
        vector_result = Controller(config, backend="vector").run_batch(ops)
        assert scalar_result.stats == vector_result.stats
        assert scalar_result.cycles == vector_result.cycles
        for s, v in zip(scalar_result.results, vector_result.results):
            np.testing.assert_array_equal(s, v)

    def test_empty_ops(self):
        group = PEGroup()
        result = group.run_batch([])
        assert result.results == [] and result.cycles == 0
        assert result.stats == PEOpStats.zero()


class TestDecomposedLayerParity:
    """Full decomposed layers — including strides > 1 and channel groups."""

    @pytest.mark.parametrize(
        "groups,stride",
        [(1, 1), (1, 2), (2, 1), (2, 2), (4, 1)],
    )
    def test_grouped_strided_layers(self, groups, stride):
        layer = ConvLayerSpec(
            name=f"parity_g{groups}_s{stride}",
            in_channels=4,
            out_channels=8,
            kernel=3,
            stride=stride,
            padding=1,
            in_height=9,
            in_width=9,
            structure=ConvStructure.CONV_RELU,
            groups=groups,
        )
        rng = np.random.default_rng(100 * groups + stride)
        x = rng.normal(size=(4, 9, 9)) * (rng.random((4, 9, 9)) < 0.5)
        weight = rng.normal(size=(8, 4 // groups, 3, 3))
        grad_out = rng.normal(size=(8, layer.out_height, layer.out_width))
        grad_out *= rng.random(grad_out.shape) < 0.4
        mask = rng.random((4, 9, 9)) < 0.5

        ops = (
            decompose_forward(layer, x, weight)
            + decompose_gta(layer, grad_out, weight, mask)
            + decompose_gtw(layer, grad_out, x)
        )
        for zero_skipping in (True, False):
            scalar_results, scalar_stats = execute_ops(
                ops, zero_skipping=zero_skipping, backend="scalar"
            )
            vector_results, vector_stats = execute_ops(
                ops, zero_skipping=zero_skipping, backend="vector"
            )
            for index, (s, v) in enumerate(zip(scalar_results, vector_results)):
                np.testing.assert_array_equal(
                    s, v, err_msg=f"op {index} ({ops[index].tag})"
                )
            assert scalar_stats == vector_stats

    def test_depthwise_layer(self):
        layer = ConvLayerSpec(
            name="parity_depthwise",
            in_channels=6,
            out_channels=6,
            kernel=3,
            stride=1,
            padding=1,
            in_height=8,
            in_width=8,
            structure=ConvStructure.CONV_BN_RELU,
            groups=6,
        )
        rng = np.random.default_rng(42)
        x = rng.normal(size=(6, 8, 8)) * (rng.random((6, 8, 8)) < 0.6)
        weight = rng.normal(size=(6, 1, 3, 3))
        ops = decompose_forward(layer, x, weight)
        scalar_results, scalar_stats = execute_ops(ops, backend="scalar")
        vector_results, vector_stats = execute_ops(ops, backend="vector")
        for s, v in zip(scalar_results, vector_results):
            np.testing.assert_array_equal(s, v)
        assert scalar_stats == vector_stats
