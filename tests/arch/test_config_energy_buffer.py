"""Tests for architecture configuration, energy model, buffer and DRAM."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.arch.buffer import GlobalBuffer
from repro.arch.config import (
    BYTES_PER_WORD,
    ArchConfig,
    dense_baseline_config,
    sparsetrain_config,
)
from repro.arch.dram import DRAM
from repro.arch.energy import (
    EnergyBreakdown,
    EnergyModel,
    EventCounts,
    default_energy_model,
    energy_from_events,
)
from repro.dataflow.counts import LayerDensities
from repro.models.resnet import resnet_spec
from repro.models.spec import ConvLayerSpec


class TestArchConfig:
    def test_paper_defaults(self):
        config = sparsetrain_config()
        assert config.num_pes == 168
        assert config.pes_per_group == 3
        assert config.num_groups == 56
        assert config.buffer_kib == 386
        assert config.buffer_words == 386 * 1024 // BYTES_PER_WORD
        assert config.sparse_dataflow

    def test_dense_baseline_differs_only_in_sparsity_handling(self):
        sparse = sparsetrain_config()
        dense = dense_baseline_config()
        assert not dense.sparse_dataflow
        assert dense.num_pes == sparse.num_pes
        assert dense.buffer_kib == sparse.buffer_kib
        assert dense.kernel_size == sparse.kernel_size

    def test_peak_macs_per_cycle(self):
        config = sparsetrain_config(num_pes=12, kernel_size=3)
        assert config.peak_macs_per_cycle == 36

    def test_evolve_overrides_fields(self):
        config = sparsetrain_config().evolve(num_pes=84, buffer_kib=128)
        assert config.num_pes == 84
        assert config.buffer_kib == 128
        assert config.sparse_dataflow  # untouched fields survive

    def test_evolve_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown ArchConfig field"):
            sparsetrain_config().evolve(num_pe=84)

    def test_evolve_revalidates(self):
        with pytest.raises(ValueError):
            sparsetrain_config().evolve(num_pes=10, pes_per_group=3)

    def test_dict_round_trip(self):
        config = sparsetrain_config(num_pes=84, clock_ghz=1.2)
        data = config.to_dict()
        assert data["num_pes"] == 84
        restored = ArchConfig.from_dict(json.loads(json.dumps(data)))
        assert restored == config

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown ArchConfig field"):
            ArchConfig.from_dict({"num_pe": 84})

    def test_with_pes_and_with_buffer_deprecated(self):
        # The deprecation cycle promises a removal note in the message.
        with pytest.warns(DeprecationWarning, match="will be removed"):
            config = sparsetrain_config().with_pes(84)
        with pytest.warns(DeprecationWarning, match="will be removed"):
            config = config.with_buffer(128)
        assert config.num_pes == 84
        assert config.buffer_kib == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_pes": 0},
            {"num_pes": 10, "pes_per_group": 3},  # not divisible
            {"pe_utilization": 1.5},
            {"clock_ghz": 0.0},
            {"batch_size": 0},
            {"weight_reload_overhead": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            ArchConfig(**kwargs)

    def test_dense_baseline_rejects_sparse_flag_override(self):
        config = dense_baseline_config(num_pes=42)
        assert config.num_pes == 42 and not config.sparse_dataflow


class TestEnergyModel:
    def test_relative_ordering_of_costs(self):
        model = default_energy_model()
        assert model.dram_pj > model.sram_pj > model.mac_pj
        assert model.sram_pj > model.reg_pj

    def test_scaled(self):
        model = EnergyModel().scaled(0.5)
        assert model.mac_pj == pytest.approx(EnergyModel().mac_pj * 0.5)
        with pytest.raises(ValueError):
            EnergyModel().scaled(0.0)

    def test_with_overrides(self):
        model = EnergyModel().with_overrides(sram_pj=99.0)
        assert model.sram_pj == 99.0
        assert model.mac_pj == EnergyModel().mac_pj

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            EnergyModel(mac_pj=-1.0)

    def test_energy_from_events(self):
        model = EnergyModel(mac_pj=1.0, reg_pj=2.0, sram_pj=3.0, dram_pj=4.0, leakage_pj_per_cycle=5.0)
        events = EventCounts(macs=1, reg_accesses=1, sram_words=1, dram_words=1, cycles=1)
        breakdown = energy_from_events(events, model)
        assert breakdown.total_pj == pytest.approx(15.0)
        assert breakdown.combinational_pj == 1.0
        assert breakdown.dram_pj == 4.0

    def test_event_counts_addition(self):
        total = EventCounts(macs=1, cycles=2) + EventCounts(macs=3, cycles=4)
        assert total.macs == 4 and total.cycles == 6


class TestEnergyBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = EnergyBreakdown(
            combinational_pj=1.0, register_pj=2.0, sram_pj=3.0, dram_pj=4.0, leakage_pj=0.0
        )
        fractions = [breakdown.fraction(c) for c in ("combinational", "register", "sram", "dram", "leakage")]
        assert sum(fractions) == pytest.approx(1.0)

    def test_add_and_scale(self):
        a = EnergyBreakdown(combinational_pj=1.0, sram_pj=1.0)
        a.add(EnergyBreakdown(combinational_pj=2.0, dram_pj=3.0))
        assert a.combinational_pj == 3.0 and a.dram_pj == 3.0
        scaled = a.scaled(2.0)
        assert scaled.combinational_pj == 6.0

    def test_as_dict_keys(self):
        assert list(EnergyBreakdown().as_dict()) == [
            "combinational", "register", "sram", "dram", "leakage",
        ]

    def test_empty_breakdown_fraction_is_zero(self):
        assert EnergyBreakdown().fraction("sram") == 0.0

    def test_total_uj(self):
        assert EnergyBreakdown(sram_pj=2e6).total_uj == pytest.approx(2.0)


class TestGlobalBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            GlobalBuffer(0)

    def test_access_recording(self):
        buffer = GlobalBuffer(1000)
        buffer.record_reads(10)
        buffer.record_writes(5)
        assert buffer.stats.read_words == 10
        assert buffer.stats.total_words == 15
        buffer.reset()
        assert buffer.stats.total_words == 0

    def test_negative_accesses_rejected(self):
        buffer = GlobalBuffer(10)
        with pytest.raises(ValueError):
            buffer.record_reads(-1)

    def test_cifar_layers_fit_386kb(self, small_conv_layer):
        buffer = GlobalBuffer(sparsetrain_config().buffer_words)
        assert buffer.fits(small_conv_layer, LayerDensities.dense(), sparse=False)
        assert buffer.weight_tiling_factor(small_conv_layer, LayerDensities.dense()) == 1.0

    def test_cifar_workload_activations_fit_the_buffer(self):
        """The paper states 386 KB is sufficient for its (CIFAR-scale) iterations."""
        buffer = GlobalBuffer(sparsetrain_config().buffer_words)
        for layer in resnet_spec(18, "CIFAR-10").conv_layers:
            assert buffer.weight_tiling_factor(layer, LayerDensities.dense(), sparse=False) == 1.0

    def test_imagenet_early_layers_need_bounded_tiling(self):
        """ImageNet feature maps exceed the buffer but only by a small factor."""
        buffer = GlobalBuffer(sparsetrain_config().buffer_words)
        factors = [
            buffer.weight_tiling_factor(layer, LayerDensities.dense(), sparse=False)
            for layer in resnet_spec(18, "ImageNet").conv_layers
        ]
        assert max(factors) <= 8.0
        assert min(factors) == 1.0

    def test_tiny_buffer_forces_tiling(self):
        layer = ConvLayerSpec("big", 64, 64, 3, 1, 1, 128, 128)
        buffer = GlobalBuffer(10_000)
        assert buffer.weight_tiling_factor(layer, LayerDensities.dense(), sparse=False) > 1.0

    def test_sparse_working_set_smaller_than_dense(self, small_conv_layer):
        buffer = GlobalBuffer(100_000)
        sparse_words = buffer.activation_words(
            small_conv_layer, LayerDensities(input_density=0.3, output_density=0.3), sparse=True
        )
        dense_words = buffer.activation_words(small_conv_layer, LayerDensities.dense(), sparse=False)
        assert sparse_words < dense_words


class TestDRAM:
    def test_transfer_cycles(self):
        dram = DRAM(words_per_cycle=8.0)
        assert dram.transfer_cycles(80) == pytest.approx(10.0)

    def test_traffic_recording(self):
        dram = DRAM(4.0)
        dram.record_reads(100)
        dram.record_writes(50)
        assert dram.stats.total_words == 150
        dram.reset()
        assert dram.stats.total_words == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAM(0.0)
        with pytest.raises(ValueError):
            DRAM(1.0).transfer_cycles(-1)
