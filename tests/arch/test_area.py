"""Tests for the first-order area model."""

from __future__ import annotations

import pytest

from repro.arch.area import AreaBreakdown, AreaModel, estimate_area, iso_area_pe_count
from repro.arch.config import dense_baseline_config, sparsetrain_config


class TestAreaModel:
    def test_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            AreaModel(mac_mm2=-1.0)


class TestEstimateArea:
    def test_total_is_sum_of_components(self):
        breakdown = estimate_area(sparsetrain_config())
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.pe_array_mm2
            + breakdown.register_mm2
            + breakdown.ppu_mm2
            + breakdown.controller_mm2
            + breakdown.sram_mm2
        )

    def test_fractions_sum_to_one(self):
        breakdown = estimate_area(sparsetrain_config())
        total = sum(
            breakdown.fraction(c)
            for c in ("pe_array", "register", "ppu", "controller", "sram")
        )
        assert total == pytest.approx(1.0)

    def test_sram_is_a_large_share_at_386kb(self):
        """With a 386 KB buffer the SRAM macro dominates the footprint."""
        breakdown = estimate_area(sparsetrain_config())
        assert breakdown.fraction("sram") > 0.5

    def test_area_grows_with_pe_count_and_buffer(self):
        base = estimate_area(sparsetrain_config())
        more_pes = estimate_area(sparsetrain_config(num_pes=336))
        bigger_buffer = estimate_area(sparsetrain_config(buffer_kib=772))
        assert more_pes.total_mm2 > base.total_mm2
        assert bigger_buffer.total_mm2 > base.total_mm2

    def test_matched_configs_are_iso_area(self):
        """SparseTrain and the dense baseline (same PEs, same buffer) occupy
        the same estimated area — the comparison in Fig. 8/9 is iso-area."""
        sparse = estimate_area(sparsetrain_config())
        dense = estimate_area(dense_baseline_config())
        assert sparse.total_mm2 == pytest.approx(dense.total_mm2, rel=1e-9)

    def test_empty_breakdown_fraction(self):
        empty = AreaBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
        assert empty.fraction("sram") == 0.0


class TestIsoAreaPeCount:
    def test_same_config_recovers_same_pe_count(self):
        reference = sparsetrain_config()
        count = iso_area_pe_count(reference, sparsetrain_config())
        assert abs(count - reference.num_pes) <= reference.pes_per_group

    def test_smaller_buffer_affords_more_pes(self):
        reference = sparsetrain_config()
        count = iso_area_pe_count(reference, sparsetrain_config(buffer_kib=128))
        assert count > reference.num_pes

    def test_bigger_buffer_affords_fewer_pes(self):
        reference = sparsetrain_config()
        count = iso_area_pe_count(reference, sparsetrain_config(buffer_kib=772))
        assert count < reference.num_pes
        assert count >= reference.pes_per_group
        assert count % reference.pes_per_group == 0

    def test_oversized_fixed_area_floors_at_one_group(self):
        reference = sparsetrain_config(buffer_kib=1)
        count = iso_area_pe_count(reference, sparsetrain_config(buffer_kib=4096))
        assert count == sparsetrain_config().pes_per_group
