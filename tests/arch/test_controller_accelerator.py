"""Tests for the controller (row-op scheduler), the accelerator simulator and baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.accelerator import AcceleratorSimulator
from repro.arch.config import dense_baseline_config, sparsetrain_config
from repro.arch.controller import Controller
from repro.arch.energy import EnergyModel
from repro.arch.pe import PE
from repro.arch.results import ComparisonResult
from repro.baselines.eyeriss import DenseBaselineSimulator, dense_training_cycles_roofline
from repro.dataflow.compiler import compile_training_iteration, uniform_densities
from repro.dataflow.counts import StepKind
from repro.dataflow.decompose import accumulate_forward, decompose_forward
from repro.models.alexnet import alexnet_cifar_spec
from repro.models.resnet import resnet_spec
from repro.nn import functional as F


@pytest.fixture
def sparse_alexnet_workload():
    spec = alexnet_cifar_spec()
    densities = uniform_densities(
        spec,
        input_density=0.4,
        grad_output_density=0.1,
        mask_density=0.4,
        grad_input_density=0.3,
        output_density=0.4,
    )
    return spec, densities


class TestController:
    def test_results_identical_to_single_pe(self, small_conv_layer, rng):
        layer = small_conv_layer
        x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
        x *= rng.random(x.shape) < 0.5
        w = rng.normal(size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel))
        ops = decompose_forward(layer, x, w)

        controller = Controller(sparsetrain_config(num_pes=9, pes_per_group=3))
        schedule = controller.run_ops(ops)
        out = accumulate_forward(layer, ops, schedule.results)
        expected, _ = F.conv2d_forward(x[None], w, None, layer.stride, layer.padding)
        np.testing.assert_allclose(out, expected[0], atol=1e-12)

    def test_critical_path_shorter_with_more_groups(self, small_conv_layer, rng):
        layer = small_conv_layer
        x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
        w = rng.normal(size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel))
        ops = decompose_forward(layer, x, w)
        small = Controller(sparsetrain_config(num_pes=3, pes_per_group=3)).run_ops(ops)
        large = Controller(sparsetrain_config(num_pes=24, pes_per_group=3)).run_ops(ops)
        assert large.cycles < small.cycles
        # Total work is identical regardless of the array size.
        assert large.stats.macs == small.stats.macs

    def test_utilization_bounded(self, small_conv_layer, rng):
        layer = small_conv_layer
        x = rng.normal(size=(layer.in_channels, layer.in_height, layer.in_width))
        w = rng.normal(size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel))
        ops = decompose_forward(layer, x, w)
        schedule = Controller(sparsetrain_config(num_pes=12, pes_per_group=3)).run_ops(ops)
        assert 0.0 < schedule.utilization <= 1.0

    def test_empty_op_list(self):
        schedule = Controller(sparsetrain_config(num_pes=6, pes_per_group=3)).run_ops([])
        assert schedule.cycles == 0
        assert schedule.results == []


class TestAcceleratorSimulator:
    def test_dense_baseline_not_faster_than_roofline(self):
        spec = alexnet_cifar_spec()
        config = dense_baseline_config()
        result = DenseBaselineSimulator(config).run(spec)
        roofline = dense_training_cycles_roofline(spec, config)
        assert result.total_cycles >= roofline

    def test_sparse_faster_than_dense_for_sparse_workload(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        sparse_program = compile_training_iteration(spec, densities, sparse=True)
        dense_program = compile_training_iteration(spec, None, sparse=False)
        sparse_result = AcceleratorSimulator(sparsetrain_config()).run_program(sparse_program, densities)
        dense_result = AcceleratorSimulator(dense_baseline_config()).run_program(dense_program)
        assert sparse_result.total_cycles < dense_result.total_cycles
        assert sparse_result.energy_uj < dense_result.energy_uj

    def test_speedup_increases_with_sparsity(self):
        spec = alexnet_cifar_spec()
        dense_result = DenseBaselineSimulator().run(spec)
        cycles = []
        for grad_density in (0.8, 0.4, 0.1):
            densities = uniform_densities(
                spec, input_density=0.5, grad_output_density=grad_density,
                mask_density=0.5, grad_input_density=0.5, output_density=0.5,
            )
            program = compile_training_iteration(spec, densities, sparse=True)
            result = AcceleratorSimulator(sparsetrain_config()).run_program(program, densities)
            cycles.append(result.total_cycles)
            assert result.total_cycles < dense_result.total_cycles
        assert cycles[0] > cycles[1] > cycles[2]

    def test_step_results_cover_all_layers_and_steps(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        program = compile_training_iteration(spec, densities, sparse=True)
        result = AcceleratorSimulator(sparsetrain_config()).run_program(program, densities)
        assert len(result.steps) == 3 * spec.num_conv_layers
        by_step = result.cycles_by_step()
        assert all(by_step[kind] > 0 for kind in StepKind)
        by_layer = result.cycles_by_layer()
        assert set(by_layer) == {layer.name for layer in spec.conv_layers}

    def test_latency_and_energy_units(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        program = compile_training_iteration(spec, densities, sparse=True)
        config = sparsetrain_config()
        result = AcceleratorSimulator(config).run_program(program, densities)
        assert result.latency_us == pytest.approx(result.total_cycles / (config.clock_ghz * 1e3))
        assert result.energy_uj > 0
        fractions = result.energy_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_larger_batch_amortises_weight_dram_traffic(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        program = compile_training_iteration(spec, densities, sparse=True)
        small_batch = AcceleratorSimulator(sparsetrain_config(batch_size=1)).run_program(program, densities)
        large_batch = AcceleratorSimulator(sparsetrain_config(batch_size=64)).run_program(program, densities)
        assert large_batch.total_dram_words < small_batch.total_dram_words

    def test_more_pes_reduce_latency(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        program = compile_training_iteration(spec, densities, sparse=True)
        few = AcceleratorSimulator(sparsetrain_config(num_pes=42)).run_program(program, densities)
        many = AcceleratorSimulator(sparsetrain_config(num_pes=336)).run_program(program, densities)
        assert many.total_cycles < few.total_cycles

    def test_energy_model_override(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        program = compile_training_iteration(spec, densities, sparse=True)
        expensive_sram = EnergyModel(sram_pj=50.0)
        base = AcceleratorSimulator(sparsetrain_config()).run_program(program, densities)
        expensive = AcceleratorSimulator(sparsetrain_config(), expensive_sram).run_program(program, densities)
        assert expensive.energy_uj > base.energy_uj
        assert expensive.total_energy.fraction("sram") > base.total_energy.fraction("sram")

    def test_describe_mentions_workload(self, sparse_alexnet_workload):
        spec, densities = sparse_alexnet_workload
        program = compile_training_iteration(spec, densities, sparse=True)
        result = AcceleratorSimulator(sparsetrain_config()).run_program(program, densities)
        assert "AlexNet" in result.describe()


class TestComparisonResult:
    def _comparison(self):
        spec = alexnet_cifar_spec()
        densities = uniform_densities(
            spec, input_density=0.4, grad_output_density=0.1, mask_density=0.4,
            grad_input_density=0.3, output_density=0.4,
        )
        sparse_program = compile_training_iteration(spec, densities, sparse=True)
        dense_program = compile_training_iteration(spec, None, sparse=False)
        sparse = AcceleratorSimulator(sparsetrain_config()).run_program(sparse_program, densities)
        dense = AcceleratorSimulator(dense_baseline_config()).run_program(dense_program)
        return ComparisonResult("AlexNet/CIFAR-10", sparse, dense)

    def test_speedup_and_efficiency_above_one(self):
        comparison = self._comparison()
        assert comparison.speedup > 1.0
        assert comparison.energy_efficiency > 1.0

    def test_energy_reductions_in_unit_range(self):
        comparison = self._comparison()
        assert 0.0 < comparison.sram_energy_reduction < 1.0
        assert 0.0 < comparison.combinational_energy_reduction < 1.0


class TestDenseBaseline:
    def test_rejects_sparse_config(self):
        with pytest.raises(ValueError):
            DenseBaselineSimulator(sparsetrain_config())

    def test_resnet_slower_than_alexnet_on_cifar(self):
        baseline = DenseBaselineSimulator()
        alexnet = baseline.run(alexnet_cifar_spec())
        resnet = DenseBaselineSimulator().run(resnet_spec(18, "CIFAR-10"))
        assert resnet.total_cycles > alexnet.total_cycles

    def test_imagenet_slower_than_cifar(self):
        cifar = DenseBaselineSimulator().run(resnet_spec(18, "CIFAR-10"))
        imagenet = DenseBaselineSimulator().run(resnet_spec(18, "ImageNet"))
        assert imagenet.total_cycles > cifar.total_cycles
